#!/usr/bin/env python3
"""Coverage-guided search strategies vs. the blind random baseline.

Runs every registered :mod:`repro.search` strategy through the
mutation-adequate generator on the same circuits, with the same seed
and the same candidate budget, and compares kills, selected vectors and
kills-per-candidate.  The ``random`` strategy is the paper's blind
pseudo-random draw; ``bitflip``/``genetic``/``anneal`` evolve new
candidates from a corpus of vectors that already killed mutants.

Run:  python examples/search_strategies.py [budget] [circuit ...]
"""

import sys

from repro.experiments.search_compare import (
    DEFAULT_SEARCH_CIRCUITS,
    run_search_compare,
)
from repro.util import render_table


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    circuits = tuple(sys.argv[2:]) or DEFAULT_SEARCH_CIRCUITS

    rows = run_search_compare(circuits=circuits, budget=budget)

    table = [
        [row.circuit, row.strategy, row.candidates, row.vectors,
         f"{row.killed}/{row.targets}", round(row.kill_pct, 1),
         round(row.kills_per_1k, 1)]
        for row in rows
    ]
    print(
        render_table(
            ["Circuit", "Strategy", "Tried", "Vectors", "Killed",
             "Kill%", "Kills/1k"],
            table,
            title=f"Search strategies at a {budget}-candidate budget",
        )
    )
    baseline = {
        row.circuit: row.killed for row in rows if row.strategy == "random"
    }
    for row in rows:
        if row.strategy == "random" or row.circuit not in baseline:
            continue
        delta = row.killed - baseline[row.circuit]
        sign = "+" if delta >= 0 else ""
        print(f"{row.circuit} {row.strategy}: {sign}{delta} kills vs random")


if __name__ == "__main__":
    main()
