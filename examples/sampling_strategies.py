#!/usr/bin/env python3
"""Random vs. test-oriented mutant sampling (a miniature of Table 2).

Samples 10% of a circuit's mutants twice — uniformly, and with the
paper's operator-weighted strategy — generates validation data from
each sample, and compares the mutation score on the *full* population
and the NLFCE of the resulting vectors.

Run:  python examples/sampling_strategies.py [circuit] [fraction]
"""

import sys

from repro.experiments.context import LabConfig, get_lab
from repro.metrics.nlfce import nlfce_from_results
from repro.mutation.score import MutationScore
from repro.sampling import RandomSampling, TestOrientedSampling
from repro.testgen import MutationTestGenerator
from repro.util import render_table


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "b01"
    fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.10
    config = LabConfig(
        random_budget_comb=1024, random_budget_seq=512,
        equivalence_budget=96,
    )
    lab = get_lab(circuit, config)
    population = lab.all_mutants
    equivalence = lab.equivalence
    print(
        f"{circuit}: {len(population)} mutants, "
        f"{equivalence.count} classified equivalent "
        f"(budget {equivalence.budget}, "
        f"{'exhaustive' if equivalence.exhaustive else 'random'})"
    )
    rows = []
    for strategy in (
        RandomSampling(fraction),
        TestOrientedSampling(fraction=fraction),  # paper-rank weights
    ):
        sample = strategy.sample(population, seed=13, )
        data = MutationTestGenerator(
            lab.design, seed=7, engine=lab.engine, max_vectors=128
        ).generate(sample)
        targets = [
            m for m in population
            if m.mid not in equivalence.equivalent_mids
        ]
        killed = lab.engine.killed_mids(targets, data.vectors)
        score = MutationScore(
            len(population), len(killed), equivalence.count
        )
        nlfce = nlfce_from_results(
            lab.fault_sim(data.vectors), lab.random_baseline
        ).nlfce
        rows.append(
            [strategy.name, len(sample), len(data.vectors),
             round(score.percent, 2), round(nlfce, 1)]
        )
    print(
        render_table(
            ["Strategy", "Selected", "Vectors", "MS%", "NLFCE"],
            rows,
            title=f"Sampling strategies at {100 * fraction:.0f}% "
                  f"on {circuit}",
        )
    )


if __name__ == "__main__":
    main()
