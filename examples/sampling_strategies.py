#!/usr/bin/env python3
"""Random vs. test-oriented mutant sampling (a miniature of Table 2).

One campaign samples the circuit's mutants twice — uniformly, and with
the paper's operator-weighted strategy (rank weights; pass a third
argument to calibrate instead) — generates validation data from each
sample, and compares the mutation score on the *full* population and
the NLFCE of the resulting vectors.

Run:  python examples/sampling_strategies.py [circuit] [fraction] [calibrate]
"""

import sys

from repro import Campaign, CampaignConfig
from repro.util import render_table


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "b01"
    fraction = float(sys.argv[2]) if len(sys.argv) > 2 else 0.10
    calibrate = len(sys.argv) > 3

    config = CampaignConfig(
        random_budget_comb=1024,
        random_budget_seq=512,
        equivalence_budget=96,
        max_vectors=128,
        fraction=fraction,
        weight_scheme="calibrated" if calibrate else "paper-ranks",
        operators=() if not calibrate else CampaignConfig().operators,
    )
    result = Campaign(config).run([circuit])

    summary = result.circuit(circuit)
    print(
        f"{circuit}: {summary.mutants} mutants, "
        f"{summary.equivalents} classified equivalent; "
        f"weights: { {op: round(w, 2) for op, w in (summary.weights or {}).items()} }"
    )
    rows = [
        [row.strategy, row.selected, len(row.vectors),
         round(row.ms_pct, 2), round(row.nlfce, 1)]
        for row in summary.strategies
    ]
    print(
        render_table(
            ["Strategy", "Selected", "Vectors", "MS%", "NLFCE"],
            rows,
            title=f"Sampling strategies at {100 * fraction:.0f}% "
                  f"on {circuit}",
        )
    )


if __name__ == "__main__":
    main()
