#!/usr/bin/env python3
"""Bring your own design: the pipeline on a user-written VHDL subset.

Shows the library as a downstream user would adopt it: write a small
clocked design inline, elaborate it, inspect its mutants, generate
validation data, synthesize to gates, and dump a `.bench` netlist that
standard academic tooling can read.

Run:  python examples/custom_circuit.py
"""

from repro import (
    MutationTestGenerator,
    collapse_faults,
    generate_mutants,
    load_design,
    mutants_by_operator,
    simulate_stuck_at,
    synthesize,
)
from repro.netlist.bench import write_bench

GRAY_COUNTER = """
-- A 3-bit Gray-code counter with an enable and a match detector.
entity gray3 is
  port (
    enable : in bit;
    reset  : in bit;
    clock  : in bit;
    code   : out bit_vector(2 downto 0);
    at_top : out bit
  );
end entity gray3;

architecture rtl of gray3 is
  constant top : integer := 4;   -- gray(4) = "110"
  signal idx : integer range 0 to 7;
begin
  step : process (clock, reset)
  begin
    if reset = '1' then
      idx    <= 0;
      code   <= "000";
      at_top <= '0';
    elsif rising_edge(clock) then
      if enable = '1' then
        idx <= (idx + 1) mod 8;
      end if;
      case idx is
        when 0 => code <= "000";
        when 1 => code <= "001";
        when 2 => code <= "011";
        when 3 => code <= "010";
        when 4 => code <= "110";
        when 5 => code <= "111";
        when 6 => code <= "101";
        when 7 => code <= "100";
      end case;
      if idx = top then
        at_top <= '1';
      else
        at_top <= '0';
      end if;
    end if;
  end process step;
end architecture rtl;
"""


def main() -> None:
    design = load_design(GRAY_COUNTER, "gray3")
    print(f"elaborated {design.name}: {len(design.processes)} process(es), "
          f"ports {[p.name for p in design.ports]}")

    mutants = generate_mutants(design)
    groups = mutants_by_operator(mutants)
    print(f"mutants: {len(mutants)} — " + ", ".join(
        f"{op}:{len(ms)}" for op, ms in sorted(groups.items())
    ))
    print("three sample mutants:")
    for mutant in mutants[:3]:
        print(f"  {mutant}")

    data = MutationTestGenerator(design, seed=3, max_vectors=96).generate(
        mutants
    )
    print(f"validation data: {len(data.vectors)} vectors, "
          f"{100 * data.kill_fraction:.1f}% of mutants killed")

    netlist = synthesize(design)
    faults = collapse_faults(netlist)
    coverage = simulate_stuck_at(netlist, data.vectors, faults).coverage()
    print(f"synthesized: {netlist.stats()['gates']} gates, "
          f"{netlist.stats()['dffs']} DFFs; reuse covers "
          f"{100 * coverage:.2f}% of {len(faults)} stuck-at faults")

    bench = write_bench(netlist)
    print("\nfirst lines of the .bench dump:")
    for line in bench.splitlines()[:10]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
