#!/usr/bin/env python3
"""The paper's full flow: validation data as a free structural pre-test.

1. high-level mutation testing produces validation data;
2. the data are fault-simulated on the synthesized netlist (the "free"
   structural coverage of the paper's introduction);
3. PODEM targets only the faults the validation data leave undetected;
4. the deterministic effort is compared with an ATPG-only run.

Run:  python examples/validation_reuse_flow.py [comb-circuit]
"""

import sys

from repro import generate_mutants, load_circuit
from repro.experiments.context import LabConfig, get_lab
from repro.testgen import MutationTestGenerator, Podem, reverse_order_compaction


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "c432"
    design = load_circuit(circuit)
    if design.is_sequential:
        raise SystemExit("pick a combinational circuit (c17/c432/c499)")
    lab = get_lab(circuit, LabConfig(random_budget_comb=512))

    print(f"== {circuit}: {lab.netlist.stats()['gates']} gates, "
          f"{len(lab.faults)} collapsed faults ==")

    # Step 1: validation data from the whole mutant population.
    mutants = generate_mutants(design)
    data = MutationTestGenerator(
        design, seed=7, engine=lab.engine, max_vectors=160
    ).generate(mutants)
    print(f"validation data: {len(data.vectors)} vectors "
          f"(kill {100 * data.kill_fraction:.1f}% of {len(mutants)} mutants)")

    # Step 2: free structural coverage.
    preload = lab.fault_sim(data.vectors)
    print(f"free stuck-at coverage: {100 * preload.coverage():.2f}%")

    # Step 3: deterministic top-up on the remainder (a tight backtrack
    # limit bounds the per-fault effort; aborted faults are reported).
    podem = Podem(lab.netlist, backtrack_limit=24)
    remaining = preload.undetected_faults()
    topup = podem.run(remaining)
    print(
        f"ATPG top-up: {len(remaining)} target faults, "
        f"{topup.total_decisions} decisions, "
        f"{topup.total_backtracks} backtracks, "
        f"{len(topup.vectors)} extra vectors "
        f"({topup.redundant} redundant, {topup.aborted} aborted)"
    )

    # Baseline: ATPG from scratch.
    scratch = podem.run(lab.faults)
    print(
        f"ATPG-only baseline: {scratch.total_decisions} decisions, "
        f"{scratch.total_backtracks} backtracks, "
        f"{len(scratch.vectors)} vectors"
    )
    saved = scratch.total_decisions - topup.total_decisions
    print(f"=> validation reuse saves {saved} PODEM decisions "
          f"({100 * saved / max(scratch.total_decisions, 1):.0f}%)")

    # Bonus: compaction of the combined set.
    combined = data.vectors + topup.vectors
    compacted = reverse_order_compaction(lab.netlist, combined, lab.faults)
    final = lab.fault_sim(compacted)
    print(
        f"final test set: {len(combined)} -> {len(compacted)} vectors "
        f"after compaction at {100 * final.coverage():.2f}% coverage"
    )


if __name__ == "__main__":
    main()
