#!/usr/bin/env python3
"""Quickstart: mutation-based validation data for one benchmark.

Loads the b01 serial-flow FSM, generates its full mutant population,
derives mutation-adequate validation data, and reports the mutation
score plus the stuck-at fault coverage those "free" vectors reach on the
synthesized gate-level netlist — the paper's core flow in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import (
    MutationTestGenerator,
    collapse_faults,
    generate_mutants,
    load_circuit,
    simulate_stuck_at,
    synthesize,
)


def main() -> None:
    design = load_circuit("b01")
    print(f"circuit: {design.name} "
          f"({'sequential' if design.is_sequential else 'combinational'})")

    mutants = generate_mutants(design)
    print(f"mutants: {len(mutants)} across the ten operators")

    generator = MutationTestGenerator(design, seed=1, max_vectors=128)
    data = generator.generate(mutants)
    print(
        f"validation data: {len(data.vectors)} vectors kill "
        f"{len(data.killed_mids)}/{data.total_targets} mutants "
        f"({100 * data.kill_fraction:.1f}% raw kill rate)"
    )

    netlist = synthesize(design)
    faults = collapse_faults(netlist)
    result = simulate_stuck_at(netlist, data.vectors, faults)
    print(
        f"gate level: {netlist.stats()['gates']} gates, "
        f"{len(faults)} collapsed stuck-at faults"
    )
    print(
        f"re-used as structural test: {100 * result.coverage():.2f}% "
        "fault coverage for free"
    )


if __name__ == "__main__":
    main()
