#!/usr/bin/env python3
"""Quickstart: the paper's whole flow as one campaign.

A single ``Campaign(config).run([...])`` call drives mutant generation,
sampling, mutation-adequate test generation, stuck-at fault validation
and the NLFCE metric, and returns plain-data results that render the
paper's tables or serialize to JSON.

Run:  python examples/quickstart.py
"""

from repro import Campaign, CampaignConfig


def main() -> None:
    config = CampaignConfig(
        random_budget_comb=512,
        random_budget_seq=512,
        equivalence_budget=96,
        max_vectors=128,
        fraction=0.10,
    )
    result = Campaign(config).run(["b01"])

    circuit = result.circuit("b01")
    print(f"circuit: {circuit.circuit} "
          f"({'sequential' if circuit.sequential else 'combinational'}), "
          f"{circuit.gates} gates, {circuit.faults} collapsed faults")
    print(f"mutants: {circuit.mutants} across the ten operators "
          f"({circuit.equivalents} classified equivalent)")

    print("\nper-operator calibration (the Table-1 measurements):")
    for row in circuit.operators:
        print(f"  {row.operator:4s} {row.mutants:4d} mutants  "
              f"Lm={row.test_length:<3d} NLFCE={row.nlfce:8.1f}")

    print("\nsampling strategies at 10% (the Table-2 measurements):")
    for row in circuit.strategies:
        print(f"  {row.strategy:13s} {row.selected:3d} selected  "
              f"MS={row.ms_pct:6.2f}%  NLFCE={row.nlfce:8.1f}  "
              f"{len(row.vectors)} validation vectors")

    print("\nthe same numbers render as the paper's tables:")
    from repro.experiments.report import table2_text

    print(table2_text(result.table2()))


if __name__ == "__main__":
    main()
