#!/usr/bin/env python3
"""Per-operator efficiency study (a miniature of the paper's Table 1).

For each mutation operator that applies to the chosen circuit, generate
that operator's mutants, derive validation data from them alone, and
compare the gate-level stuck-at coverage of those vectors against a
pseudo-random baseline using the paper's ΔFC% / ΔL% / NLFCE metric.

Run:  python examples/operator_efficiency.py [circuit]
"""

import sys

from repro.experiments.context import LabConfig, get_lab
from repro.metrics.nlfce import nlfce_from_results
from repro.mutation import generate_mutants
from repro.mutation.operators import OPERATOR_NAMES
from repro.testgen import MutationTestGenerator
from repro.util import render_table


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "b01"
    config = LabConfig(
        random_budget_comb=1024, random_budget_seq=512,
        equivalence_budget=64,
    )
    lab = get_lab(circuit, config)
    rows = []
    for operator in OPERATOR_NAMES:
        mutants = generate_mutants(lab.design, [operator])
        if not mutants:
            continue
        data = MutationTestGenerator(
            lab.design, seed=7, engine=lab.engine, max_vectors=128
        ).generate(mutants)
        if not data.vectors:
            continue
        report = nlfce_from_results(
            lab.fault_sim(data.vectors), lab.random_baseline
        )
        rows.append(
            [operator, len(mutants), len(data.vectors),
             round(100 * report.mfc, 2), round(report.delta_fc_pct, 2),
             round(report.delta_l_pct, 2), round(report.nlfce, 1)]
        )
    rows.sort(key=lambda r: r[-1])
    print(
        render_table(
            ["Operator", "Mutants", "Lm", "MFC%", "dFC%", "dL%", "NLFCE"],
            rows,
            title=f"Operator efficiency on {circuit} "
                  "(ordered, least efficient first)",
        )
    )
    print("\nThe paper's finding: LOR ranks last; CR (where constants "
          "exist) and CVR rank first.")


if __name__ == "__main__":
    main()
