#!/usr/bin/env python3
"""Per-operator efficiency study (a miniature of the paper's Table 1).

A calibration-only campaign: every operator that applies to the chosen
circuit gets its own mutation-adequate test set, which is
fault-simulated against a pseudo-random baseline and scored with the
paper's ΔFC% / ΔL% / NLFCE metric.  The campaign pipeline does all of
it — this example only configures and renders.

Run:  python examples/operator_efficiency.py [circuit]
"""

import sys

from repro import Campaign, CampaignConfig
from repro.mutation.operators import OPERATOR_NAMES
from repro.util import render_table


def main() -> None:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "b01"
    config = CampaignConfig(
        random_budget_comb=1024,
        random_budget_seq=512,
        equivalence_budget=64,
        max_vectors=128,
        operators=tuple(OPERATOR_NAMES),   # all ten, not just Table 1's
        strategies=(),                     # calibration only, no sampling
    )
    result = Campaign(config).run([circuit])
    rows = [
        [row.operator, row.mutants, row.test_length,
         round(row.mfc_pct, 2), round(row.dfc_pct, 2),
         round(row.dl_pct, 2), round(row.nlfce, 1)]
        for row in result.circuit(circuit).operators
    ]
    rows.sort(key=lambda r: r[-1])
    print(
        render_table(
            ["Operator", "Mutants", "Lm", "MFC%", "dFC%", "dL%", "NLFCE"],
            rows,
            title=f"Operator efficiency on {circuit} "
                  "(ordered, least efficient first)",
        )
    )
    print("\nThe paper's finding: LOR ranks last; CR (where constants "
          "exist) and CVR rank first.")


if __name__ == "__main__":
    main()
