"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.hdl.lexer import tokenize
from repro.hdl.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


def test_identifiers_are_lowercased():
    assert texts("Entity FOO Is") == ["entity", "foo", "is"]


def test_keywords_recognised():
    toks = tokenize("entity architecture process")
    assert all(t.kind is TokenKind.KEYWORD for t in toks[:-1])


def test_non_keyword_is_ident():
    token = tokenize("myname")[0]
    assert token.kind is TokenKind.IDENT


def test_integer_literal():
    token = tokenize("1234")[0]
    assert token.kind is TokenKind.INT
    assert token.text == "1234"


def test_integer_with_underscores():
    assert tokenize("1_000")[0].text == "1000"


def test_bit_char_literal():
    token = tokenize("'1'")[0]
    assert token.kind is TokenKind.CHAR
    assert token.text == "1"


def test_tick_for_attribute():
    toks = tokenize("clock'event")
    assert [t.kind for t in toks[:-1]] == [
        TokenKind.IDENT, TokenKind.TICK, TokenKind.IDENT
    ]


def test_bit_string_literal():
    token = tokenize('"0101"')[0]
    assert token.kind is TokenKind.STRING
    assert token.text == "0101"


def test_bad_bit_string_rejected():
    with pytest.raises(LexError):
        tokenize('"01a1"')


def test_unterminated_string_rejected():
    with pytest.raises(LexError):
        tokenize('"0101')


def test_comment_skipped_to_end_of_line():
    assert texts("a -- everything here ignored ; b\nc") == ["a", "c"]


def test_two_char_operators():
    expected = [
        TokenKind.LE, TokenKind.GE, TokenKind.NEQ, TokenKind.ARROW,
        TokenKind.VARASSIGN,
    ]
    assert kinds("<= >= /= => :=") == expected


def test_single_char_operators():
    expected = [
        TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.SEMICOLON,
        TokenKind.COLON, TokenKind.COMMA, TokenKind.PLUS, TokenKind.MINUS,
        TokenKind.STAR, TokenKind.AMP, TokenKind.BAR,
    ]
    assert kinds("( ) ; : , + - * & |") == expected


def test_relational_singletons():
    assert kinds("< > =") == [TokenKind.LT, TokenKind.GT, TokenKind.EQ]


def test_line_and_column_tracking():
    toks = tokenize("a\n  b")
    assert (toks[0].line, toks[0].column) == (1, 1)
    assert (toks[1].line, toks[1].column) == (2, 3)


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexError) as err:
        tokenize("a\n@")
    assert err.value.line == 2


def test_eof_token_present():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind is TokenKind.EOF


def test_keyword_helper():
    token = tokenize("begin")[0]
    assert token.is_keyword("begin")
    assert not token.is_keyword("end")
