"""The repro.search subsystem: registry, corpus, budget, strategies,
generator integration and the campaign search block."""

import pytest

from repro.campaign import Campaign, CampaignConfig
from repro.circuits import load_circuit
from repro.errors import ConfigError, SearchError
from repro.experiments.search_compare import run_search_compare
from repro.mutation import MutationEngine, generate_mutants
from repro.search import (
    Corpus,
    SearchBudget,
    build_search_strategy,
    get_search_strategy,
    search_strategy_names,
)
from repro.testgen import MutationTestGenerator, RandomVectorGenerator
from tests.test_testgen import verify_kills

ALL_STRATEGIES = ("anneal", "bitflip", "genetic", "random")


# -- registry ----------------------------------------------------------------


def test_registry_has_builtins():
    assert set(search_strategy_names()) >= set(ALL_STRATEGIES)
    assert get_search_strategy("bitflip").name == "bitflip"
    with pytest.raises(SearchError):
        get_search_strategy("not-a-strategy")


def test_build_rejects_unknown_knobs():
    with pytest.raises(SearchError, match="temperature"):
        build_search_strategy(
            "bitflip", width=8, seed=1, knobs={"temperature": 2.0}
        )


def test_build_rejects_reserved_knobs():
    # Builder-owned parameters must fail like unknown names, not leak
    # through to a TypeError at construction.
    with pytest.raises(SearchError, match="width"):
        build_search_strategy(
            "bitflip", width=8, seed=1, knobs={"width": 4}
        )


def test_instance_strategy_geometry_is_checked():
    # A pre-built instance must match the design's chunk geometry.
    design = load_circuit("b01")
    wrong = build_search_strategy("bitflip", width=4, seed=1)  # cycles=1
    generator = MutationTestGenerator(design, seed=5, strategy=wrong)
    with pytest.raises(SearchError, match="cycles"):
        generator.generate(generate_mutants(design, ["LOR"]))


def test_build_forwards_knobs():
    strategy = build_search_strategy(
        "genetic", width=8, seed=1, knobs={"population_size": 4}
    )
    assert strategy.corpus.capacity == 4


def test_strategy_rejects_bad_geometry():
    with pytest.raises(SearchError):
        build_search_strategy("random", width=0, seed=1)
    with pytest.raises(SearchError):
        build_search_strategy(
            "random", width=8, seed=1, field_widths=(3, 3)
        )
    with pytest.raises(SearchError):
        build_search_strategy("random", width=8, seed=1, cycles=0)


# -- budget ------------------------------------------------------------------


def test_budget_validation():
    with pytest.raises(SearchError):
        SearchBudget(max_candidates=0)
    with pytest.raises(SearchError):
        SearchBudget(max_stale_rounds=0)


def test_budget_exhaustion_and_clamp():
    budget = SearchBudget(max_candidates=100, max_stale_rounds=3)
    assert not budget.exhausted(99, 2)
    assert budget.exhausted(100, 0)
    assert budget.exhausted(0, 3)
    assert budget.clamp(64, 80) == 20
    assert SearchBudget().clamp(64, 10**9) == 64
    assert not SearchBudget().exhausted(10**9, 10**9)


# -- corpus ------------------------------------------------------------------


def test_corpus_add_and_dedupe():
    corpus = Corpus(capacity=4)
    assert not corpus.add(1, 0)          # unscored vectors are rejected
    assert corpus.add(1, 3)
    assert corpus.add(1, 5)              # re-add keeps the higher score
    assert len(corpus) == 1
    assert corpus.best().score == 5


def test_corpus_eviction_keeps_strong_entries():
    corpus = Corpus(capacity=2)
    corpus.add(1, 5)
    corpus.add(2, 1)
    assert corpus.add(3, 4)              # evicts the score-1 entry
    vectors = {entry.vector for entry in corpus.entries}
    assert vectors == {1, 3}
    assert not corpus.add(4, 1)          # weaker than everything kept


def test_corpus_empty_raises_domain_errors():
    """Regression: best() on an empty corpus leaked max()'s bare
    ValueError; both accessors now raise the same domain error."""
    corpus = Corpus()
    with pytest.raises(IndexError, match="empty corpus"):
        corpus.best()
    with pytest.raises(IndexError, match="empty corpus"):
        corpus.pick(object())


def test_corpus_pick_deterministic():
    from repro.util.rng import rng_stream

    def picks():
        corpus = Corpus()
        for vector, score in [(10, 3), (20, 1), (30, 7)]:
            corpus.add(vector, score)
        rng = rng_stream(5, "corpus-test")
        return [corpus.pick(rng) for _ in range(20)]

    first, second = picks(), picks()
    assert first == second
    assert set(first) <= {10, 20, 30}
    assert len(set(first)) > 1           # the schedule rotates seeds


# -- strategies --------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_STRATEGIES)
def test_propose_in_range_and_deterministic(name):
    def run():
        strategy = build_search_strategy(
            name, width=12, seed=9, labels=("t", "search"),
            field_widths=(4, 8),
        )
        out = []
        for _ in range(4):
            batch = strategy.propose(16)
            assert len(batch) == 16
            assert all(0 <= v < 2**12 for v in batch)
            # Score a deterministic subset to drive the guided paths.
            strategy.feedback(batch, [i % 3 for i in range(len(batch))])
            out.extend(batch)
        return out

    assert run() == run()


def test_random_strategy_matches_pinned_generator():
    strategy = build_search_strategy(
        "random", width=16, seed=42, labels=("c17", "mutation-testgen"),
    )
    reference = RandomVectorGenerator(16, 42, "c17", "mutation-testgen")
    assert strategy.propose(32) == reference.vectors(32)


def test_random_strategy_chunked_matches_pinned_generator():
    # cycles=3 packs three per-cycle draws per proposal, in draw order.
    strategy = build_search_strategy(
        "random", width=4, seed=42, labels=("b01", "mutation-testgen"),
        cycles=3,
    )
    reference = RandomVectorGenerator(4, 42, "b01", "mutation-testgen")
    for packed in strategy.propose(5):
        expected = reference.vectors(3)
        assert [
            (packed >> (4 * (2 - i))) & 0xF for i in range(3)
        ] == expected


@pytest.mark.parametrize("name", ("anneal", "bitflip", "genetic"))
def test_guided_strategies_learn_from_corpus(name):
    strategy = build_search_strategy(
        name, width=16, seed=3, labels=("t",), knobs={"explore": 0.0}
    )
    seeds = strategy.propose(8)
    strategy.feedback(seeds, [5] * len(seeds))
    assert strategy.corpus
    follow_up = strategy.propose(8)
    assert all(0 <= v < 2**16 for v in follow_up)


# -- generator integration ---------------------------------------------------


@pytest.mark.parametrize("name", ("bitflip", "genetic"))
def test_comb_generation_kills_what_it_claims(name):
    design = load_circuit("c17")
    mutants = generate_mutants(design)
    generator = MutationTestGenerator(
        design, seed=5, max_vectors=64, strategy=name
    )
    result = generator.generate(mutants)
    assert result.vectors
    assert result.kill_fraction > 0.8
    verify_kills(design, mutants, result)


def test_seq_generation_kills_what_it_claims():
    design = load_circuit("b01")
    mutants = generate_mutants(design, ["LOR", "CR"])
    generator = MutationTestGenerator(
        design, seed=5, max_vectors=96, strategy="bitflip"
    )
    result = generator.generate(mutants)
    assert result.vectors
    assert result.kill_fraction > 0.5
    verify_kills(design, mutants, result)


@pytest.mark.parametrize("name", ALL_STRATEGIES)
def test_generation_respects_candidate_budget(name):
    design = load_circuit("c17")
    mutants = generate_mutants(design)
    generator = MutationTestGenerator(
        design, seed=5, max_vectors=64, strategy=name,
        search_budget=SearchBudget(max_candidates=100),
    )
    result = generator.generate(mutants)
    assert 0 < result.candidates_tried <= 100


def test_sequential_feedback_receives_the_proposals():
    # Regression: the generator must feed back the packed chunk it was
    # handed, not a per-cycle fragment of it.
    from repro.search import SearchStrategy, build_search_strategy

    class Spy(SearchStrategy):
        name = "spy"

        def __init__(self, inner):
            self._inner = inner
            self.proposed = []
            self.fed_back = []

        def propose(self, count):
            batch = self._inner.propose(count)
            self.proposed.extend(batch)
            return batch

        def feedback(self, vectors, scores):
            self.fed_back.extend(vectors)

    design = load_circuit("b01")
    width = MutationEngine(design).encoder.width
    spy = Spy(build_search_strategy(
        "random", width=width, seed=5,
        labels=(design.name, "mutation-testgen"), cycles=4,
    ))
    MutationTestGenerator(
        design, seed=5, strategy=spy,
        search_budget=SearchBudget(max_candidates=96),
    ).generate(generate_mutants(design, ["LOR"]))
    assert spy.fed_back
    assert set(spy.fed_back) <= set(spy.proposed)


def test_genetic_honors_shared_corpus():
    shared = Corpus(capacity=8)
    strategy = build_search_strategy(
        "genetic", width=8, seed=1, knobs={"population_size": 4}
    )
    assert strategy.corpus.capacity == 4
    from repro.search import GeneticSearch

    adopted = GeneticSearch(8, 1, corpus=shared)
    assert adopted.corpus is shared


def test_generation_deterministic_with_search():
    design = load_circuit("b01")
    mutants = generate_mutants(design, ["LOR"])
    runs = [
        MutationTestGenerator(
            design, seed=9, strategy="genetic",
            search_budget=SearchBudget(max_candidates=200),
        ).generate(mutants)
        for _ in range(2)
    ]
    assert runs[0].vectors == runs[1].vectors
    assert runs[0].killed_mids == runs[1].killed_mids


# -- the acceptance comparison ----------------------------------------------


@pytest.fixture(scope="module")
def equal_budget_rows():
    """c432 + b01 at an equal 512-candidate budget, shipped seed."""
    return run_search_compare(
        circuits=("c432", "b01"),
        strategies=("random", "bitflip", "genetic"),
        budget=512,
        max_vectors=128,
    )


def test_guided_strategies_match_or_beat_random(equal_budget_rows):
    killed = {
        (row.circuit, row.strategy): row.killed for row in equal_budget_rows
    }
    for circuit in ("c432", "b01"):
        for name in ("bitflip", "genetic"):
            assert killed[(circuit, name)] >= killed[(circuit, "random")], (
                f"{name} on {circuit}: {killed[(circuit, name)]} < "
                f"random's {killed[(circuit, 'random')]}"
            )


def test_search_compare_reproducible(equal_budget_rows):
    again = run_search_compare(
        circuits=("c432", "b01"),
        strategies=("random", "bitflip", "genetic"),
        budget=512,
        max_vectors=128,
    )
    assert [
        (r.circuit, r.strategy, r.candidates, r.vectors, r.killed)
        for r in again
    ] == [
        (r.circuit, r.strategy, r.candidates, r.vectors, r.killed)
        for r in equal_budget_rows
    ]


# -- campaign integration ----------------------------------------------------

FAST = dict(
    seed=77,
    random_budget_comb=96,
    random_budget_seq=96,
    equivalence_budget=32,
    max_vectors=24,
)


def test_config_search_block_roundtrip_and_fingerprint():
    config = CampaignConfig(
        **FAST, search="bitflip", search_budget=256,
        search_knobs={"explore": 0.5},
    )
    assert CampaignConfig.from_json(config.to_json()) == config
    base = CampaignConfig(**FAST)
    assert config.fingerprint() != base.fingerprint()
    assert base.fingerprint() != CampaignConfig(
        **FAST, search_budget=512
    ).fingerprint()


def test_config_rejects_bad_search_block():
    with pytest.raises(ConfigError):
        CampaignConfig(search="not-a-strategy")
    with pytest.raises(ConfigError):
        CampaignConfig(search_budget=0)
    with pytest.raises(ConfigError):
        CampaignConfig(search_stale_rounds=0)


def test_config_rejects_zero_random_budgets():
    # Fail at config time, not minutes later inside the lab's baseline
    # generation (whose vectors() now rejects non-positive counts).
    with pytest.raises(ConfigError):
        CampaignConfig(random_budget_comb=0)
    with pytest.raises(ConfigError):
        CampaignConfig(random_budget_seq=0)


def test_default_pipeline_uses_search_stage():
    assert "search" in CampaignConfig().stages
    assert "testgen" not in CampaignConfig().stages


def test_testgen_stage_is_search_alias():
    config = CampaignConfig(**FAST)
    legacy = config.replace(
        stages=tuple(
            "testgen" if stage == "search" else stage
            for stage in config.stages
        )
    )
    new = Campaign(config).run(("c17",))
    old = Campaign(legacy).run(("c17",))
    assert [c.to_dict() for c in new.circuits] == [
        c.to_dict() for c in old.circuits
    ]


def test_campaign_search_parallel_matches_serial():
    config = dict(
        **FAST, search="bitflip", search_budget=192,
        strategies=("random",), operators=("LOR",),
    )
    serial = Campaign(CampaignConfig(**config, jobs=1)).run(("c17", "b01"))
    parallel = Campaign(CampaignConfig(**config, jobs=4)).run(("c17", "b01"))
    assert [c.to_dict() for c in parallel.circuits] == [
        c.to_dict() for c in serial.circuits
    ]


def test_cli_search_flags(capsys):
    from repro.cli import main

    assert main(["strategies"]) == 0
    out = capsys.readouterr().out
    for name in ALL_STRATEGIES:
        assert name in out

    assert main([
        "testgen", "c17", "--seed", "5", "--max-vectors", "16",
        "--search", "bitflip", "--search-budget", "128",
    ]) == 0
    assert "vectors kill" in capsys.readouterr().out


def test_cli_search_compare(tmp_path, capsys):
    import json

    from repro.cli import main

    out_path = tmp_path / "rows.json"
    assert main([
        "search-compare", "--circuits", "c17",
        "--strategies", "random", "bitflip", "--budget", "96",
        "--max-vectors", "16", "--random-budget", "96",
        "--equivalence-budget", "32", "--json", str(out_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "equal candidate budget" in out
    rows = json.loads(out_path.read_text())
    assert {row["strategy"] for row in rows} == {"random", "bitflip"}
