"""Tests for repro.obs: metrics registry, trace spans, live surfaces.

The load-bearing properties:

* Telemetry never changes results: a c432+b01 campaign with metrics
  and tracing enabled is bit-identical to one with them disabled, on
  the serial and the process grid schedulers, and ``telemetry`` stays
  out of the config fingerprint.
* ``Metrics.merge`` is associative and order-insensitive for counters
  and histograms, so at-least-once envelope delivery cannot skew
  totals.
* The disabled path is a true no-op: ``active()`` defaults to
  :data:`NULL_METRICS` / :data:`NULL_TRACER` and records nothing.
* ``Tracer`` output is schema-valid Chrome trace-event JSON (``ph``,
  ``ts``, ``pid``, ``tid``, ``name``; ``ts`` monotone within a tid).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign import (
    Campaign,
    CampaignConfig,
    CampaignEvents,
    GuardedEvents,
    TeeEvents,
    TracingEvents,
)
from repro.net import CoordinatorClient
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Metrics,
    estimate_quantiles,
)
from repro.obs.trace import NULL_TRACER, Tracer, summarize, validate_trace
from tests.test_grid import REDUCED, fresh_labs, payload
from tests.test_net import quiet_server


@pytest.fixture(autouse=True)
def _clean_registries():
    """No test leaks an active registry/tracer into the next."""
    obs_metrics.disable()
    obs_trace.disable()
    yield
    obs_metrics.disable()
    obs_trace.disable()


def assert_valid_trace(trace: dict) -> list[dict]:
    """Schema check through the shared validator; returns the events."""
    assert validate_trace(trace) > 0
    return trace["traceEvents"]


# -- metrics registry --------------------------------------------------------


def test_counters_gauges_and_snapshot_roundtrip():
    m = Metrics()
    m.counter("a")
    m.counter("a", 4)
    m.gauge("g", 2)
    m.gauge("g", 7.5)
    snap = m.snapshot()
    assert snap["counters"] == {"a": 5}
    assert snap["gauges"] == {"g": 7.5}
    assert snap["histograms"] == {}
    # The snapshot is JSON-native and survives a round trip intact.
    assert json.loads(json.dumps(snap)) == snap
    assert not m.is_empty()
    assert Metrics().is_empty()


def test_histogram_bucket_edges():
    m = Metrics()
    # A value exactly on an upper edge lands in that edge's bucket;
    # anything beyond the last edge lands in the overflow.
    m.observe("h", 0.001)
    m.observe("h", 0.02)
    m.observe("h", 0.021)
    m.observe("h", 2.0)
    m.observe("h", 1000.0)
    hist = m.snapshot()["histograms"]["h"]
    assert hist["count"] == 5
    assert hist["sum"] == pytest.approx(1002.042)
    assert hist["buckets"] == {
        "0.001": 1, "0.02": 1, "0.1": 1, "2": 1, "inf": 1,
    }
    assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))


def test_time_contextmanager_observes():
    m = Metrics()
    with m.time("block.seconds"):
        pass
    hist = m.snapshot()["histograms"]["block.seconds"]
    assert hist["count"] == 1
    assert hist["sum"] >= 0.0


def test_merge_sums_counters_and_buckets():
    m = Metrics()
    part = {"counters": {"a": 3},
            "histograms": {"h": {"count": 2, "sum": 0.5,
                                 "buckets": {"0.5": 2}}}}
    m.merge(part)
    m.merge(part)
    snap = m.snapshot()
    assert snap["counters"] == {"a": 6}
    hist = snap["histograms"]["h"]
    assert hist["count"] == 4
    assert hist["sum"] == pytest.approx(1.0)
    assert hist["buckets"] == {"0.5": 4}
    # Partial/garbage snapshots are tolerated, not fatal.
    m.merge({})
    m.merge({"counters": {}})
    m.merge(None)
    assert m.snapshot()["counters"] == {"a": 6}


def test_merge_skips_corrupt_entries_and_counts_them():
    m = Metrics()
    m.merge({
        "counters": {"good": 2, "bad": "nope"},
        "gauges": {"g": "not-a-number"},
        "histograms": {
            "broken": {"count": "x", "sum": 0.1, "buckets": {"0.5": 1}},
            "ok": {"count": 1, "sum": 0.5, "buckets": {"0.5": 1}},
            "junk": 7,
        },
    })
    snap = m.snapshot()
    assert snap["counters"]["good"] == 2
    assert "bad" not in snap["counters"]
    assert snap["gauges"] == {}
    assert "broken" not in snap["histograms"]
    assert snap["histograms"]["ok"]["count"] == 1
    # bad counter + bad gauge + broken histogram + non-dict histogram.
    assert snap["counters"]["metrics.merge_skipped"] == 4
    # Non-dict sections are ignored wholesale, without erroring.
    m.merge({"counters": [1, 2], "histograms": "garbage"})
    assert m.snapshot()["counters"]["good"] == 2


def test_histogram_snapshot_includes_quantiles():
    m = Metrics()
    for _ in range(4):
        m.observe("h", 0.4)        # all land in the "0.5" bucket
    q = m.snapshot()["histograms"]["h"]["quantiles"]
    # Linear interpolation between the previous edge (0.0) and 0.5.
    assert q["p50"] == pytest.approx(0.25)
    assert q["p95"] == pytest.approx(0.475)
    assert q["p99"] == pytest.approx(0.495)


def test_estimate_quantiles_interpolation_and_overflow():
    q = estimate_quantiles({"1": 1, "2": 1, "inf": 2})
    assert q["p50"] == pytest.approx(2.0)
    # Ranks in the overflow bucket report the largest finite edge —
    # a lower bound, since the overflow has no upper edge.
    assert q["p95"] == pytest.approx(2.0)
    assert q["p99"] == pytest.approx(2.0)
    assert estimate_quantiles({"10": 10})["p50"] == pytest.approx(5.0)
    assert estimate_quantiles({}) == {}
    assert estimate_quantiles({"1": 0}) == {}
    assert estimate_quantiles({"junk": 1}) == {}


def test_merge_ignores_quantiles_and_recomputes():
    m = Metrics()
    m.merge({"histograms": {"h": {
        "count": 2, "sum": 1.0, "buckets": {"0.5": 2},
        "quantiles": {"p50": 999.0},
    }}})
    hist = m.snapshot()["histograms"]["h"]
    assert hist["quantiles"]["p50"] == pytest.approx(0.25)


def test_merge_is_order_insensitive():
    a = {"counters": {"x": 1, "y": 2},
         "gauges": {},
         "histograms": {"h": {"count": 1, "sum": 0.1,
                              "buckets": {"0.1": 1}}}}
    b = {"counters": {"y": 5, "z": 1},
         "gauges": {},
         "histograms": {"h": {"count": 3, "sum": 9.0,
                              "buckets": {"inf": 3}}}}
    ab, ba = Metrics(), Metrics()
    ab.merge(a)
    ab.merge(b)
    ba.merge(b)
    ba.merge(a)
    assert ab.snapshot() == ba.snapshot()
    # Associativity: (a+b)+b == a+(b+b), checked through a third bag.
    twice_b = Metrics()
    twice_b.merge(b)
    twice_b.merge(b)
    left = Metrics()
    left.merge(ab.snapshot())
    left.merge(b)
    right = Metrics()
    right.merge(a)
    right.merge(twice_b.snapshot())
    assert left.snapshot() == right.snapshot()


def test_null_metrics_records_nothing():
    assert obs_metrics.active() is NULL_METRICS
    assert not obs_metrics.enabled()
    NULL_METRICS.counter("a")
    NULL_METRICS.gauge("g", 1.0)
    NULL_METRICS.observe("h", 0.5)
    with NULL_METRICS.time("t"):
        pass
    NULL_METRICS.merge({"counters": {"a": 9}})
    assert NULL_METRICS.is_empty()
    assert NULL_METRICS.enabled is False


def test_collecting_scopes_and_restores():
    assert obs_metrics.active() is NULL_METRICS
    with obs_metrics.collecting() as registry:
        assert obs_metrics.active() is registry
        assert registry.enabled
        obs_metrics.active().counter("scoped")
        # Nested scopes restore to the outer registry, not the null.
        with obs_metrics.collecting() as inner:
            assert obs_metrics.active() is inner
        assert obs_metrics.active() is registry
    assert obs_metrics.active() is NULL_METRICS
    assert registry.snapshot()["counters"] == {"scoped": 1}


def test_enable_disable_roundtrip():
    registry = obs_metrics.enable()
    assert obs_metrics.active() is registry
    assert obs_metrics.disable() is registry
    assert obs_metrics.active() is NULL_METRICS


# -- guarded events ----------------------------------------------------------


def test_guarded_events_count_errors_and_suppressions():
    class Boom(CampaignEvents):
        def on_circuit_start(self, circuit):
            raise RuntimeError("boom")

    guarded = GuardedEvents(Boom(), stream=io.StringIO())
    with obs_metrics.collecting() as registry:
        guarded.on_circuit_start("c17")  # breaks the hook
        guarded.on_circuit_start("c17")  # suppressed firing
        guarded.on_circuit_start("c17")  # suppressed firing
    counters = registry.snapshot()["counters"]
    assert counters["events.hook_errors"] == 1
    assert counters["events.hook_errors.on_circuit_start"] == 1
    assert counters["events.suppressed_firings"] == 2


# -- tracer ------------------------------------------------------------------


def test_tracer_schema_and_nesting():
    tracer = Tracer()
    with tracer.span("outer", tid="t"):
        with tracer.span("inner", tid="t"):
            pass
    tracer.async_begin("unit:x", "u1")
    tracer.async_end("unit:x", "u1")
    tracer.instant("mark", tid="t")
    events = assert_valid_trace(tracer.export())
    assert [e["ph"] for e in events] == ["B", "B", "E", "E", "b", "e", "i"]
    assert len(tracer) == 7
    container = tracer.export()
    assert container["displayTimeUnit"] == "ms"


def test_tracer_write_is_loadable(tmp_path):
    tracer = Tracer()
    with tracer.span("s", tid="t"):
        pass
    path = tmp_path / "trace.json"
    tracer.write(str(path))
    assert_valid_trace(json.loads(path.read_text(encoding="utf-8")))
    assert not path.with_suffix(".json.tmp").exists()


def test_null_tracer_records_nothing():
    assert obs_trace.active() is NULL_TRACER
    NULL_TRACER.begin("a", tid="t")
    with NULL_TRACER.span("b", tid="t"):
        pass
    NULL_TRACER.instant("c", tid="t")
    assert len(NULL_TRACER) == 0
    assert NULL_TRACER.export()["traceEvents"] == []


def test_summarize_self_time_arithmetic():
    # Hand-stamped trace: parent 0..100us with a 10..30us child, plus
    # one async unit span and one instant.
    trace = {"traceEvents": [
        {"ph": "B", "ts": 0, "pid": "p", "tid": "t", "name": "parent"},
        {"ph": "B", "ts": 10, "pid": "p", "tid": "t", "name": "child"},
        {"ph": "E", "ts": 30, "pid": "p", "tid": "t", "name": "child"},
        {"ph": "E", "ts": 100, "pid": "p", "tid": "t", "name": "parent"},
        {"ph": "b", "ts": 5, "pid": "p", "tid": "unit", "cat": "unit",
         "id": "u1", "name": "unit:fault"},
        {"ph": "e", "ts": 45, "pid": "p", "tid": "unit", "cat": "unit",
         "id": "u1", "name": "unit:fault"},
        {"ph": "i", "ts": 50, "pid": "p", "tid": "t", "name": "mark",
         "s": "t"},
    ]}
    rows = {row["name"]: row for row in summarize(trace)}
    assert rows["parent"]["total_us"] == 100
    assert rows["parent"]["self_us"] == 80
    assert rows["child"]["total_us"] == rows["child"]["self_us"] == 20
    assert rows["unit:fault"]["self_us"] == 40
    assert rows["mark"]["count"] == 1
    # top-k really truncates, ranked by self time.
    assert [r["name"] for r in summarize(trace, top=1)] == ["parent"]


def test_trace_buffer_absorb_rebases_and_keeps_worker_lane():
    parent = Tracer()
    worker = Tracer(pid="worker-123")
    with worker.span("unit:fault-chunk", tid="unit"):
        pass
    buffer = worker.export_buffer()
    assert buffer["version"] == 1
    assert buffer["pid"] == "worker-123"
    # Round-trip through JSON, as a real completion envelope would.
    absorbed = parent.absorb(json.loads(json.dumps(buffer)))
    assert absorbed == 2
    with parent.span("parent", tid="t"):
        pass
    events = assert_valid_trace(parent.export())
    assert {e["pid"] for e in events} == {"worker-123", "repro"}


def test_trace_absorb_epoch_rebase_math():
    parent = Tracer()
    mark = {"ph": "i", "ts": 5.0, "pid": "w", "tid": "t",
            "name": "m", "s": "t"}
    late = {"version": 1, "pid": "w", "epoch": parent._epoch + 1.0,
            "events": [dict(mark)]}
    assert parent.absorb(late) == 1
    assert parent.export()["traceEvents"][-1]["ts"] == (
        pytest.approx(1e6 + 5.0)
    )
    # An epoch before the parent's clamps at zero, never negative —
    # and the ts-sorted export puts that clamped event first.
    early = {"version": 1, "pid": "w2", "epoch": parent._epoch - 1.0,
             "events": [dict(mark)]}
    assert parent.absorb(early) == 1
    assert parent.export()["traceEvents"][0]["ts"] == 0.0


def test_trace_absorb_rejects_bad_buffers():
    parent = Tracer()
    event = {"ph": "i", "ts": 1.0, "pid": "w", "tid": "t",
             "name": "m", "s": "t"}
    assert parent.absorb({}) == 0
    assert parent.absorb(None) == 0
    assert parent.absorb(
        {"version": 99, "epoch": 0.0, "events": [event]}
    ) == 0
    assert parent.absorb({"version": 1, "epoch": 0.0, "events": []}) == 0
    assert parent.absorb({"version": 1, "events": [event]}) == 0  # no epoch
    assert len(parent) == 0
    # The null tracer neither exports nor absorbs.
    assert NULL_TRACER.export_buffer() == {}
    assert NULL_TRACER.absorb(
        {"version": 1, "epoch": 0.0, "events": [event]}
    ) == 0


def test_validate_trace_rejects_schema_violations():
    def event(**overrides) -> dict:
        base = {"ph": "i", "ts": 0, "pid": "p", "tid": "t",
                "name": "x", "s": "t"}
        base.update(overrides)
        return base

    assert validate_trace({"traceEvents": [event()]}) == 1
    cases = [
        ({}, "traceEvents"),
        ({"traceEvents": []}, "empty"),
        ({"traceEvents": [["not", "an", "object"]]}, "not an object"),
        ({"traceEvents": [{"ph": "B"}]}, "missing"),
        ({"traceEvents": [event(ph="Q")]}, "phase"),
        ({"traceEvents": [event(ts="soon")]}, "non-numeric"),
        ({"traceEvents": [event(ts=-1.0)]}, "negative"),
        ({"traceEvents": [event(ts=5.0), event(ts=1.0)]},
         "back in time"),
        ({"traceEvents": [event(ph="b")]}, "id/cat"),
        ({"traceEvents": [event(s="bogus")]}, "scope"),
    ]
    for trace, needle in cases:
        with pytest.raises(ValueError, match=needle):
            validate_trace(trace)


def test_tracing_events_produce_valid_trace():
    fresh_labs()
    tracer = Tracer()
    config = CampaignConfig(**REDUCED)
    Campaign(config, TracingEvents(tracer)).run(("c17",))
    events = assert_valid_trace(tracer.export())
    names = {e["name"] for e in events}
    assert "campaign" in names
    assert "circuit:c17" in names
    assert any(name.startswith("stage:") for name in names)
    # Duration spans are balanced: every B has its E.
    for ph in "BE":
        assert sum(e["ph"] == ph for e in events) > 0
    assert sum(e["ph"] == "B" for e in events) == (
        sum(e["ph"] == "E" for e in events)
    )


# -- determinism: telemetry never changes results ----------------------------


def test_campaign_bit_identical_with_telemetry():
    fresh_labs()
    baseline = Campaign(CampaignConfig(**REDUCED)).run(("c432", "b01"))

    # telemetry stays out of the fingerprint, so caches and job stores
    # are shared across enabled/disabled runs.
    plain = CampaignConfig(**REDUCED)
    enabled = plain.replace(telemetry=True)
    assert enabled.fingerprint() == plain.fingerprint()

    for grid in (None, "process"):
        fresh_labs()
        config = dict(REDUCED, telemetry=True)
        if grid is not None:
            config.update(grid=grid, grid_workers=2)
        tracer = Tracer()
        campaign = Campaign(
            CampaignConfig(**config),
            TeeEvents(TracingEvents(tracer)),
        )
        result = campaign.run(("c432", "b01"))
        assert payload(result) == payload(baseline), grid
        assert_valid_trace(tracer.export())
        # The run collected real telemetry without touching results.
        registry = campaign.last_metrics
        assert registry is not None and not registry.is_empty()
        counters = registry.snapshot()["counters"]
        assert counters["campaign.circuits_run"] == 2
        # Engine metrics flow: recorded in-process for the serial run,
        # merged back from worker envelopes for the process grid.
        assert any(name.startswith("engine.") for name in counters), grid
    assert obs_metrics.active() is NULL_METRICS


def test_process_grid_trace_stitches_worker_lanes():
    """A --grid process run with --trace yields ONE Chrome trace whose
    events span every worker process (own pid lanes), and tracing
    changes neither the payload nor the config fingerprint."""
    plain = CampaignConfig(**REDUCED)
    assert plain.replace(trace=True).fingerprint() == plain.fingerprint()

    fresh_labs()
    baseline = Campaign(plain).run(("c17",))
    fresh_labs()
    config = CampaignConfig(**dict(
        REDUCED, trace=True, grid="process", grid_workers=2,
    ))
    tracer = Tracer()
    with obs_trace.tracing(tracer):
        result = Campaign(config, TracingEvents(tracer)).run(("c17",))
    assert payload(result) == payload(baseline)
    events = assert_valid_trace(tracer.export())
    pids = {str(e["pid"]) for e in events}
    worker_lanes = {p for p in pids if p.startswith("worker-")}
    assert worker_lanes, pids            # spans came home from workers
    assert "repro" in pids               # next to the parent's own
    worker_names = {
        e["name"] for e in events if str(e["pid"]).startswith("worker-")
    }
    assert any(name.startswith("unit:") for name in worker_names)


def test_campaign_without_telemetry_collects_nothing():
    fresh_labs()
    campaign = Campaign(CampaignConfig(**REDUCED))
    campaign.run(("c17",))
    assert campaign.last_metrics is None
    assert obs_metrics.active() is NULL_METRICS


# -- live surfaces -----------------------------------------------------------


def test_coordinator_metrics_endpoint():
    server = quiet_server(service=False)
    try:
        client = CoordinatorClient(server.url)
        wid = client.register_worker("obs-test")["worker"]
        assert client.lease(wid).get("idle")
        snap = client.metrics()
        for key in ("protocol", "queue_depth", "leased_units", "waves",
                    "workers", "campaigns", "metrics"):
            assert key in snap, key
        assert snap["queue_depth"] == 0
        assert snap["leased_units"] == 0
        workers = {w["name"]: w for w in snap["workers"]}
        assert workers["obs-test"]["completed_total"] == 0
        counters = snap["metrics"]["counters"]
        assert counters["coordinator.leases.idle"] == 1
        # The coordinator's registry is private to the core: nothing
        # leaked into this process's active registry.
        assert obs_metrics.active() is NULL_METRICS
    finally:
        server.close()


def test_top_renders_rates_from_deltas():
    from repro.cli import _render_top

    snapshot = {
        "queue_depth": 3, "leased_units": 2, "waves": 1,
        "workers": [{"worker": "w1", "name": "alpha", "leased": 2,
                     "completed_total": 30}],
        "campaigns": [{"campaign": "c1", "status": "running",
                       "events": 7}],
        "metrics": {"counters": {"coordinator.completions.ok": 30}},
    }
    previous = {"w1": (0.0, 10)}
    frame = _render_top(snapshot, previous, now=10.0)
    assert "3 pending, 2 leased" in frame
    assert "alpha" in frame and "2.00" in frame  # (30-10)/10 units/s
    assert "campaign c1: running (7 event(s))" in frame
    assert "coordinator.completions.ok" in frame
    assert previous["w1"] == (10.0, 30)


def test_cli_trace_summarizes(tmp_path, capsys):
    from repro.cli import main

    tracer = Tracer()
    with tracer.span("outer", tid="t"):
        with tracer.span("inner", tid="t"):
            pass
    path = tmp_path / "trace.json"
    tracer.write(str(path))
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "outer" in out and "inner" in out and "self" in out
    empty = tmp_path / "empty.json"
    empty.write_text('{"traceEvents": []}', encoding="utf-8")
    assert main(["trace", str(empty)]) == 1
    assert main(["trace", str(tmp_path / "missing.json")]) == 2


def test_cli_trace_validate(tmp_path, capsys):
    from repro.cli import main

    tracer = Tracer()
    with tracer.span("s", tid="t"):
        pass
    good = tmp_path / "good.json"
    tracer.write(str(good))
    assert main(["trace", str(good), "--validate"]) == 0
    assert "trace OK: 2 event(s)" in capsys.readouterr().out
    bad = tmp_path / "bad.json"
    bad.write_text(
        json.dumps({"traceEvents": [{"ph": "Z"}]}), encoding="utf-8"
    )
    assert main(["trace", str(bad), "--validate"]) == 1
    assert "invalid" in capsys.readouterr().err


def test_cli_top_once_prints_one_frame(capsys):
    from repro.cli import main

    server = quiet_server(service=False)
    try:
        assert main(["top", server.url, "--once"]) == 0
    finally:
        server.close()
    out = capsys.readouterr().out
    assert "queue: 0 pending" in out
    assert "\x1b[2J" not in out          # --once never clears the screen
