"""Behavioural simulator tests: delta cycles, processes, testbench."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import circuit_names, load_circuit
from repro.errors import OscillationError
from repro.hdl import load_design
from repro.hdl.values import BV
from repro.sim import StimulusEncoder, Testbench
from repro.sim.scheduler import Simulator
from repro.sim.testbench import encode_outputs
from repro.util import rng_stream


def test_mux_selects(mux_design):
    bench = Testbench(mux_design)
    assert bench.step({"a": 1, "b": 0, "sel": 0}) == (1,)
    assert bench.step({"a": 1, "b": 0, "sel": 1}) == (0,)
    assert bench.step({"a": 0, "b": 1, "sel": 1}) == (1,)


def test_counter_counts_and_wraps(counter_design):
    bench = Testbench(counter_design)
    bench.reset()
    seen = []
    for _ in range(10):
        value, wrap = bench.step({"enable": 1})
        seen.append((value.value, wrap))
    # After the first edge count=1 is registered; value shows the
    # pre-increment count per the Mealy decode in the process.
    values = [v for v, _ in seen]
    assert values[:8] == [0, 1, 2, 3, 4, 5, 6, 7]
    assert seen[8][0] == 0  # wrapped
    assert any(w == 1 for _, w in seen)


def test_counter_holds_when_disabled(counter_design):
    bench = Testbench(counter_design)
    bench.reset()
    bench.step({"enable": 1})
    first = bench.step({"enable": 0})
    second = bench.step({"enable": 0})
    assert first == second


def test_parity_process_with_loop(parity_design):
    bench = Testbench(parity_design)
    for value in range(16):
        (p,) = bench.step({"d": BV(value, 4)})
        assert p == bin(value).count("1") % 2


def test_variables_persist_between_activations():
    design = load_design(
        """
        entity t is port ( clock : in bit; y : out bit ); end t;
        architecture rtl of t is
        begin
          process (clock)
            variable flip : bit;
          begin
            if rising_edge(clock) then
              flip := flip xor '1';
              y <= flip;
            end if;
          end process;
        end rtl;
        """
    )
    bench = Testbench(design)
    outs = [bench.step({})[0] for _ in range(4)]
    assert outs == [1, 0, 1, 0]


def test_oscillating_combinational_loop_detected():
    design = load_design(
        """
        entity t is port ( a : in bit; y : out bit ); end t;
        architecture rtl of t is
          signal s : bit;
        begin
          s <= not s;
          y <= s;
        end rtl;
        """
    )
    sim = Simulator(design, max_delta=32)
    with pytest.raises(OscillationError):
        sim.initialize()


def test_reset_returns_to_initial_state(b01):
    bench = Testbench(b01)
    rng = rng_stream(5, "reset-test")
    enc = StimulusEncoder(b01)
    first = bench.run_sequence(
        [enc.decode(rng.getrandbits(enc.width)) for _ in range(10)]
    )
    rng = rng_stream(5, "reset-test")
    second = bench.run_sequence(
        [enc.decode(rng.getrandbits(enc.width)) for _ in range(10)]
    )
    assert first == second


def test_save_restore_state(b01):
    bench = Testbench(b01)
    bench.reset()
    enc = StimulusEncoder(b01)
    bench.step(enc.decode(3))
    snapshot = bench.save_state()
    after_a = [bench.step(enc.decode(1)) for _ in range(5)]
    bench.restore_state(snapshot)
    after_b = [bench.step(enc.decode(1)) for _ in range(5)]
    assert after_a == after_b


@pytest.mark.parametrize("name", circuit_names())
def test_compiled_backend_matches_interpreter(name):
    design = load_circuit(name)
    enc = StimulusEncoder(design)
    rng = rng_stream(99, name, "backend-compare")
    stimuli = [enc.decode(rng.getrandbits(enc.width)) for _ in range(30)]
    interp = Testbench(design, backend="interp").run_sequence(stimuli)
    compiled = Testbench(design, backend="compiled").run_sequence(stimuli)
    assert interp == compiled


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**41 - 1))
def test_encoder_roundtrip_c499(packed):
    design = load_circuit("c499")
    enc = StimulusEncoder(design)
    assert enc.encode(enc.decode(packed)) == packed


def test_encode_outputs_packs_in_port_order(b01):
    packed = encode_outputs(b01, (1, 0))
    assert packed == 0b10


def test_unknown_stimulus_port_rejected(b01):
    bench = Testbench(b01)
    bench.reset()
    with pytest.raises(Exception):
        bench.step({"nonexistent": 1})
