"""The engine registry and backend equivalence.

The differential property test mirrors the ``sim/compiler.py`` vs
``sim/interp.py`` pinning pattern: randomized combinational and
sequential netlists (good machine and injected faults) run through
every registered backend, which must agree with the ``interp``
reference bit for bit — net words, detection words and first-detecting
patterns alike.
"""

from __future__ import annotations

import pytest

from repro.engine import (
    DEFAULT_ENGINE,
    CompiledEngine,
    EngineBase,
    InterpEngine,
    VectorEngine,
    build_engine,
    engine_names,
    get_engine,
    register_engine,
)
from repro.engine.base import ENGINES
from repro.errors import ConfigError, EngineError
from repro.fault import (
    CombFaultSimulator,
    SeqFaultSimulator,
    collapse_faults,
    simulate_stuck_at,
)
from repro.netlist import CombSimulator, SeqSimulator
from repro.netlist.cells import GateType
from repro.netlist.netlist import DFF, Gate, Net, Netlist
from repro.util import rng_stream
from tests.conftest import netlist_of

ALTERNATES = [name for name in engine_names() if name != "interp"]


# -- registry ----------------------------------------------------------------


def test_registry_lists_shipped_backends():
    assert "interp" in engine_names()
    assert "compiled" in engine_names()
    assert "vector" in engine_names()
    assert DEFAULT_ENGINE in engine_names()
    assert get_engine("interp") is InterpEngine
    assert get_engine("compiled") is CompiledEngine
    assert get_engine("vector") is VectorEngine


def test_unknown_engine_raises():
    with pytest.raises(EngineError, match="unknown simulation engine"):
        get_engine("laser")


def test_register_requires_name():
    with pytest.raises(EngineError):
        register_engine(type("Anon", (), {}))


def test_register_rejects_duplicate_names():
    """Regression: a plug-in used to silently hijack a built-in name."""

    class Impostor(EngineBase):
        name = "interp"

    with pytest.raises(EngineError, match="already registered"):
        register_engine(Impostor)
    assert get_engine("interp") is InterpEngine


def test_register_replace_escape_hatch():
    class Override(EngineBase):
        name = "interp"

    try:
        assert register_engine(Override, replace=True) is Override
        assert get_engine("interp") is Override
    finally:
        register_engine(InterpEngine, replace=True)
    assert get_engine("interp") is InterpEngine
    # Re-registering the same class stays idempotent (module re-import):
    # the shared instance and its program caches survive.
    shared = build_engine("interp")
    assert register_engine(InterpEngine) is InterpEngine
    assert build_engine("interp") is shared
    # The decorator form accepts the flag too.
    decorated = register_engine(replace=True)(InterpEngine)
    assert decorated is InterpEngine


def test_build_engine_shares_instances_by_name():
    assert build_engine("interp") is build_engine("interp")
    assert build_engine() is build_engine(DEFAULT_ENGINE)


def test_build_engine_passes_instances_through():
    private = CompiledEngine()
    assert build_engine(private) is private
    assert build_engine("compiled") is not private


def test_third_party_registration(monkeypatch):
    monkeypatch.setitem(ENGINES, "custom", InterpEngine)
    assert "custom" in engine_names()
    assert get_engine("custom") is InterpEngine


# -- random netlist generator ------------------------------------------------

_TYPES = [
    GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
    GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF,
]


def random_netlist(rng, num_inputs=4, num_gates=24, num_dffs=0) -> Netlist:
    """A random DAG netlist (topological by construction).

    Gate inputs draw from already-created nets, so fanout (and thereby
    stem/branch fault sites) arises naturally; outputs sample any
    driven net — including, sometimes, a primary input directly.
    """
    netlist = Netlist("rand")

    def new_net(name: str) -> int:
        nid = len(netlist.nets)
        netlist.nets.append(Net(nid, name))
        return nid

    inputs = [new_net(f"i{k}") for k in range(num_inputs)]
    netlist.input_ports = [(f"i{k}", [nid]) for k, nid in enumerate(inputs)]
    available = list(inputs)
    for f in range(num_dffs):
        q = new_net(f"q{f}")
        netlist.dffs.append(
            DFF(f, d=-1, q=q, reset_value=rng.randint(0, 1), name=f"ff{f}")
        )
        available.append(q)
    for g in range(num_gates):
        gate_type = rng.choice(_TYPES)
        arity = 1 if gate_type.arity == 1 else rng.choice((2, 2, 2, 3))
        ins = [rng.choice(available) for _ in range(arity)]
        out = new_net(f"n{g}")
        netlist.gates.append(Gate(g, gate_type, ins, out))
        available.append(out)
    for dff in netlist.dffs:
        dff.d = rng.choice(available)
    outs = rng.sample(available, k=min(len(available), 3))
    netlist.output_ports = [(f"o{j}", [nid]) for j, nid in enumerate(outs)]
    netlist.validate()
    return netlist


@pytest.mark.parametrize("engine", ALTERNATES)
def test_differential_combinational(engine):
    """Random comb netlists: net words and detections match interp."""
    for case in range(20):
        rng = rng_stream(99, "engine-diff-comb", str(case))
        netlist = random_netlist(
            rng, num_inputs=rng.randint(2, 6), num_gates=rng.randint(1, 30)
        )
        faults = collapse_faults(netlist)
        width = len(netlist.input_bits)
        patterns = [
            rng.getrandbits(width) for _ in range(rng.randint(1, 33))
        ]
        reference = CombFaultSimulator(
            netlist, faults, engine="interp"
        ).simulate(patterns)
        candidate = CombFaultSimulator(
            netlist, faults, engine=engine
        ).simulate(patterns)
        # Identical first-detecting pattern per fault (None included).
        assert candidate.detection == reference.detection, f"case {case}"
        # Identical net words from the good-machine evaluators.
        mask = (1 << len(patterns)) - 1
        from repro.netlist.simulate import unpack_patterns

        words = unpack_patterns(patterns, netlist.input_bits)
        ref_words = CombSimulator(netlist, "interp").evaluate(words, mask)
        cand_words = CombSimulator(netlist, engine).evaluate(words, mask)
        assert cand_words == ref_words, f"case {case}"


@pytest.mark.parametrize("engine", ALTERNATES)
def test_differential_sequential(engine):
    """Random seq netlists: injected fault machines match interp."""
    for case in range(10):
        rng = rng_stream(99, "engine-diff-seq", str(case))
        netlist = random_netlist(
            rng,
            num_inputs=rng.randint(2, 5),
            num_gates=rng.randint(4, 24),
            num_dffs=rng.randint(1, 4),
        )
        faults = collapse_faults(netlist)
        width = len(netlist.input_bits)
        stimuli = [
            rng.getrandbits(width) for _ in range(rng.randint(1, 24))
        ]
        # Odd lane widths force multi-chunk injection plans.
        lanes = rng.choice((3, 7, 64, 256))
        reference = SeqFaultSimulator(
            netlist, faults, lanes=lanes, engine="interp"
        ).simulate(stimuli)
        candidate = SeqFaultSimulator(
            netlist, faults, lanes=lanes, engine=engine
        ).simulate(stimuli)
        assert candidate.detection == reference.detection, f"case {case}"
        ref_out = SeqSimulator(netlist, engine="interp").run_packed(stimuli)
        cand_out = SeqSimulator(netlist, engine=engine).run_packed(stimuli)
        assert cand_out == ref_out, f"case {case}"


@pytest.mark.parametrize("engine", ALTERNATES)
@pytest.mark.parametrize("name", ["c17", "c432", "b01"])
def test_differential_real_circuits(engine, name):
    netlist = netlist_of(name)
    rng = rng_stream(7, "engine-diff", name)
    width = len(netlist.input_bits)
    vectors = [rng.getrandbits(width) for _ in range(32)]
    reference = simulate_stuck_at(netlist, vectors, engine="interp")
    candidate = simulate_stuck_at(netlist, vectors, engine=engine)
    assert candidate.detection == reference.detection
    assert candidate.num_patterns == reference.num_patterns


def test_compiled_cache_reuse_is_consistent():
    """Repeated runs through the shared compiled engine stay identical."""
    netlist = netlist_of("c17")
    rng = rng_stream(3, "engine-cache")
    width = len(netlist.input_bits)
    vectors = [rng.getrandbits(width) for _ in range(16)]
    first = simulate_stuck_at(netlist, vectors, engine="compiled")
    second = simulate_stuck_at(netlist, vectors, engine="compiled")
    assert first.detection == second.detection


def test_campaign_results_identical_across_engines():
    """Table 1 / Table 2 numbers never depend on the backend.

    The archived JSON embeds the config (which records the engine by
    design); the computed ``circuits`` payload must match bit for bit.
    """
    import json

    from repro.campaign.config import CampaignConfig
    from repro.campaign.runner import Campaign

    payloads = {}
    for engine in ("interp", "compiled", "vector"):
        config = CampaignConfig(
            engine=engine, random_budget_comb=128, random_budget_seq=64,
            equivalence_budget=16, max_vectors=16,
        )
        result = Campaign(config).run(("c17",))
        payloads[engine] = json.loads(result.to_json())["circuits"]
    assert payloads["interp"] == payloads["compiled"]
    assert payloads["interp"] == payloads["vector"]


# -- configuration surface ---------------------------------------------------


def test_campaign_config_carries_engine():
    from repro.campaign.config import CampaignConfig

    config = CampaignConfig(engine="interp", fault_lanes=17)
    assert config.lab_config().engine == "interp"
    assert config.lab_config().fault_lanes == 17
    roundtrip = CampaignConfig.from_json(config.to_json())
    assert roundtrip.engine == "interp"
    assert roundtrip.fault_lanes == 17


def test_campaign_config_rejects_unknown_engine():
    from repro.campaign.config import CampaignConfig

    with pytest.raises(ConfigError, match="engine"):
        CampaignConfig(engine="laser")
    with pytest.raises(ConfigError, match="fault_lanes"):
        CampaignConfig(fault_lanes=0)


def test_engine_and_lanes_in_fingerprint():
    from repro.campaign.config import CampaignConfig

    base = CampaignConfig()
    assert base.fingerprint() != CampaignConfig(engine="interp").fingerprint()
    assert base.fingerprint() != CampaignConfig(fault_lanes=8).fingerprint()
