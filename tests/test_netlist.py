"""Netlist data structure, builder folding, .bench I/O, levelization."""

import pytest

from repro.errors import BenchFormatError, NetlistError
from repro.netlist import GateType, Netlist, NetlistBuilder, parse_bench, write_bench
from repro.netlist.bench import C17_BENCH
from repro.netlist.levelize import levelize, topo_gates
from repro.netlist.netlist import CONST0, CONST1


def small_builder():
    builder = NetlistBuilder("t")
    a, b = builder.add_input_port("a", 1)[0], builder.add_input_port("b", 1)[0]
    return builder, a, b


def test_and_folding_rules():
    builder, a, b = small_builder()
    assert builder.g_and(a, CONST0) == CONST0
    assert builder.g_and(a, CONST1) == a
    assert builder.g_and(a, a) == a
    assert builder.g_and(a, builder.g_not(a)) == CONST0


def test_or_folding_rules():
    builder, a, b = small_builder()
    assert builder.g_or(a, CONST1) == CONST1
    assert builder.g_or(a, CONST0) == a
    assert builder.g_or(a, builder.g_not(a)) == CONST1


def test_xor_folding_rules():
    builder, a, b = small_builder()
    assert builder.g_xor(a, CONST0) == a
    assert builder.g_xor(a, a) == CONST0
    assert builder.g_xor(a, CONST1) == builder.g_not(a)


def test_not_not_cancels():
    builder, a, _ = small_builder()
    assert builder.g_not(builder.g_not(a)) == a


def test_structural_dedup():
    builder, a, b = small_builder()
    g1 = builder.g_and(a, b)
    g2 = builder.g_and(b, a)  # commutative normalization
    assert g1 == g2
    assert len([g for g in builder.finish().gates if True]) >= 0


def test_mux_folds():
    builder, a, b = small_builder()
    assert builder.mux(CONST1, a, b) == a
    assert builder.mux(CONST0, a, b) == b
    assert builder.mux(a, b, b) == b
    assert builder.mux(a, CONST1, CONST0) == a


def test_reduce_tree_single():
    builder, a, _ = small_builder()
    assert builder.reduce_tree_and([a]) == a


def test_reduce_tree_empty_rejected():
    builder, _, _ = small_builder()
    with pytest.raises(NetlistError):
        builder.reduce_tree_and([])


def test_const_materialized_on_output():
    builder, a, _ = small_builder()
    builder.set_output_port("y", [CONST1])
    netlist = builder.finish()
    assert any(g.gate_type is GateType.CONST1 for g in netlist.gates)


def test_unconnected_dff_rejected():
    builder, a, _ = small_builder()
    builder.add_dff("s", 0)
    with pytest.raises(NetlistError):
        builder.finish()


def test_dff_connects():
    builder, a, _ = small_builder()
    q = builder.add_dff("s", 1)
    builder.connect_dff(q, a)
    builder.set_output_port("y", [q])
    netlist = builder.finish()
    assert netlist.dffs[0].reset_value == 1
    assert netlist.dffs[0].d == a


# -- bench I/O ---------------------------------------------------------------


def test_parse_c17_bench():
    netlist = parse_bench(C17_BENCH, "c17")
    assert len(netlist.gates) == 6
    assert all(g.gate_type is GateType.NAND for g in netlist.gates)
    assert len(netlist.input_bits) == 5
    assert len(netlist.output_bits) == 2


def test_bench_roundtrip():
    original = parse_bench(C17_BENCH, "c17")
    again = parse_bench(write_bench(original), "c17rt")
    assert len(again.gates) == len(original.gates)
    assert len(again.dffs) == len(original.dffs)
    assert [n for n, _ in again.input_ports] == [
        n for n, _ in original.input_ports
    ]


def test_bench_dff_line():
    netlist = parse_bench(
        "INPUT(d)\nOUTPUT(q)\nq = DFF(nd)\nnd = BUF(d)\n"
    )
    assert len(netlist.dffs) == 1


def test_bench_bad_line_rejected():
    with pytest.raises(BenchFormatError):
        parse_bench("garbage line here")


def test_bench_undriven_output_rejected():
    with pytest.raises(BenchFormatError):
        parse_bench("INPUT(a)\nOUTPUT(y)\n")


def test_bench_wrong_arity_rejected():
    with pytest.raises(BenchFormatError):
        parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)\n")


# -- levelize -----------------------------------------------------------------


def test_topo_order_respects_dependencies():
    netlist = parse_bench(C17_BENCH, "c17")
    position = {g.output: i for i, g in enumerate(topo_gates(netlist))}
    for gate in netlist.gates:
        for nid in gate.inputs:
            if nid in position:
                assert position[nid] < position[gate.output]


def test_levels_increase_along_paths():
    netlist = parse_bench(C17_BENCH, "c17")
    levels = levelize(netlist)
    for gate in netlist.gates:
        assert levels[gate.output] == 1 + max(
            levels[n] for n in gate.inputs
        )


def test_cycle_detection():
    netlist = Netlist("loop")
    from repro.netlist.netlist import Gate, Net

    netlist.nets = [Net(0, "a"), Net(1, "x"), Net(2, "y")]
    netlist.input_ports = [("a", [0])]
    netlist.gates = [
        Gate(0, GateType.AND, [0, 2], 1),
        Gate(1, GateType.AND, [1, 1], 2),
    ]
    netlist.output_ports = [("y", [2])]
    with pytest.raises(NetlistError):
        topo_gates(netlist)


def test_stats_fields(c17_netlist):
    stats = c17_netlist.stats()
    assert stats["gates"] == 6
    assert stats["dffs"] == 0
    assert stats["inputs"] == 5
    assert stats["outputs"] == 2
    assert stats["depth"] == 3
