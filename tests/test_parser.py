"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.hdl import ast
from repro.hdl.parser import parse_source

ENTITY = """
entity e is
  port ( a, b : in bit; y : out bit );
end entity e;
"""


def parse_arch(body_decls: str, concurrent: str):
    text = ENTITY + (
        f"architecture rtl of e is\n{body_decls}\nbegin\n{concurrent}\nend rtl;"
    )
    units = parse_source(text)
    return units[1]


def test_entity_ports_grouped_names():
    units = parse_source(ENTITY)
    entity = units[0]
    assert isinstance(entity, ast.EntityDecl)
    assert entity.ports[0].names == ["a", "b"]
    assert entity.ports[0].direction == "in"
    assert entity.ports[1].names == ["y"]
    assert entity.ports[1].direction == "out"


def test_library_use_clauses_skipped():
    units = parse_source("library ieee;\nuse ieee.std_logic_1164.all;\n" + ENTITY)
    assert len(units) == 1


def test_simple_concurrent_assign():
    arch = parse_arch("", "y <= a and b;")
    assign = arch.concurrent[0]
    assert isinstance(assign, ast.ConcurrentAssign)
    assert len(assign.arms) == 1
    assert isinstance(assign.arms[0][0], ast.Binary)


def test_conditional_concurrent_assign():
    arch = parse_arch("", "y <= a when b = '1' else b;")
    assign = arch.concurrent[0]
    assert len(assign.arms) == 2
    assert assign.arms[0][1] is not None
    assert assign.arms[1][1] is None


def test_signal_declaration_with_init():
    arch = parse_arch("signal s : bit := '1';", "y <= a;")
    decl = arch.decls[0]
    assert isinstance(decl, ast.SignalDecl)
    assert isinstance(decl.init, ast.BitLit)


def test_vector_type_indication():
    arch = parse_arch("signal v : bit_vector(7 downto 0);", "y <= a;")
    ind = arch.decls[0].type_ind
    assert ind.type_name == "bit_vector"
    assert ind.direction == "downto"


def test_integer_range_type():
    arch = parse_arch("signal n : integer range 0 to 7;", "y <= a;")
    ind = arch.decls[0].type_ind
    assert ind.type_name == "integer"
    assert ind.direction == "to"


def test_enum_type_declaration():
    arch = parse_arch("type st is (s0, s1, s2);", "y <= a;")
    decl = arch.decls[0]
    assert isinstance(decl, ast.EnumTypeDecl)
    assert decl.literals == ["s0", "s1", "s2"]


def test_process_with_sensitivity_and_label():
    arch = parse_arch("", "p0 : process (a, b)\nbegin\ny <= a;\nend process p0;")
    proc = arch.concurrent[0]
    assert isinstance(proc, ast.ProcessStmt)
    assert proc.label == "p0"
    assert proc.sensitivity == ["a", "b"]


def test_if_elsif_else_structure():
    body = (
        "process (a, b)\nbegin\n"
        "if a = '1' then y <= b;\n"
        "elsif b = '1' then y <= a;\n"
        "else y <= '0';\nend if;\n"
        "end process;"
    )
    proc = parse_arch("", body).concurrent[0]
    if_stmt = proc.body[0]
    assert isinstance(if_stmt, ast.If)
    assert len(if_stmt.arms) == 2
    assert len(if_stmt.else_body) == 1


def test_case_with_choice_bar_and_others():
    decls = "signal n : integer range 0 to 7;"
    body = (
        "process (a)\nbegin\n"
        "case n is\nwhen 0 | 1 => y <= '0';\nwhen others => y <= '1';\n"
        "end case;\nend process;"
    )
    proc = parse_arch(decls, body).concurrent[0]
    case = proc.body[0]
    assert isinstance(case, ast.Case)
    assert len(case.whens) == 2
    assert len(case.whens[0].choices) == 2
    assert case.whens[1].is_others


def test_for_loop():
    decls = "signal v : bit_vector(3 downto 0);"
    body = (
        "process (a)\nbegin\n"
        "for i in 0 to 3 loop\nv(i) <= a;\nend loop;\n"
        "end process;"
    )
    proc = parse_arch(decls, body).concurrent[0]
    loop = proc.body[0]
    assert isinstance(loop, ast.ForLoop)
    assert loop.direction == "to"


def test_variable_declarations_in_process():
    body = (
        "process (a)\nvariable t : bit;\nbegin\n"
        "t := a;\ny <= t;\nend process;"
    )
    proc = parse_arch("", body).concurrent[0]
    assert isinstance(proc.decls[0], ast.VariableDecl)
    assert isinstance(proc.body[0], ast.VarAssign)


def test_logical_chain_same_operator_allowed():
    arch = parse_arch("", "y <= a and b and a;")
    expr = arch.concurrent[0].arms[0][0]
    assert isinstance(expr, ast.Binary)
    assert expr.op == "and"


def test_mixed_logical_operators_rejected():
    with pytest.raises(ParseError):
        parse_arch("", "y <= a and b or a;")


def test_parenthesized_mixing_ok():
    arch = parse_arch("", "y <= (a and b) or a;")
    expr = arch.concurrent[0].arms[0][0]
    assert expr.op == "or"


def test_precedence_relational_binds_tighter_than_logical():
    decls = "signal n : integer range 0 to 3;"
    body = "process (a)\nbegin\nif n = 1 and a = '1' then y <= a; end if;\nend process;"
    proc = parse_arch(decls, body).concurrent[0]
    cond = proc.body[0].arms[0][0]
    assert cond.op == "and"
    assert cond.left.op == "="


def test_indexing_and_slicing():
    decls = "signal v : bit_vector(7 downto 0);"
    arch = parse_arch(decls, "y <= v(3);")
    expr = arch.concurrent[0].arms[0][0]
    assert isinstance(expr, ast.Index)


def test_slice_expression():
    decls = (
        "signal v : bit_vector(7 downto 0);\n"
        "signal w : bit_vector(3 downto 0);"
    )
    body = "process (a)\nbegin\nw <= v(7 downto 4);\nend process;"
    proc = parse_arch(decls, body).concurrent[0]
    assert isinstance(proc.body[0].value, ast.Slice)


def test_attribute_event():
    body = (
        "process (a)\nbegin\nif a'event and a = '1' then y <= b; end if;\n"
        "end process;"
    )
    proc = parse_arch("", body).concurrent[0]
    cond = proc.body[0].arms[0][0]
    assert isinstance(cond.left, ast.Attribute)


def test_rising_edge_call():
    body = "process (a)\nbegin\nif rising_edge(a) then y <= b; end if;\nend process;"
    proc = parse_arch("", body).concurrent[0]
    assert isinstance(proc.body[0].arms[0][0], ast.Call)


def test_others_aggregate():
    decls = "signal v : bit_vector(7 downto 0);"
    body = "process (a)\nbegin\nv <= (others => '0');\nend process;"
    proc = parse_arch(decls, body).concurrent[0]
    assert isinstance(proc.body[0].value, ast.OthersAggregate)


def test_unsupported_attribute_rejected():
    with pytest.raises(ParseError):
        parse_arch("", "y <= a'last_value;")


def test_inout_ports_rejected():
    with pytest.raises(ParseError):
        parse_source(
            "entity e is port ( x : inout bit ); end e;"
        )


def test_missing_semicolon_reports_position():
    with pytest.raises(ParseError) as err:
        parse_source("entity e is port ( a : in bit ) end e;")
    assert "expected" in str(err.value)


def test_unique_node_ids():
    units = parse_source(ENTITY + (
        "architecture rtl of e is begin y <= a and b; end rtl;"
    ))
    arch = units[1]
    assign = arch.concurrent[0]
    expr = assign.arms[0][0]
    nids = {assign.nid, expr.nid, expr.left.nid, expr.right.nid}
    assert len(nids) == 4
