"""Utilities (rng, tables) and the VHDL pretty-printer."""

import pytest

from repro.hdl.parser import parse_source
from repro.hdl.printer import expr_to_text, stmt_to_text
from repro.util import derive_seed, render_table, rng_stream

ENTITY = """
entity e is
  port ( a, b : in bit; y : out bit );
end e;
"""


def first_process_body(text: str):
    units = parse_source(ENTITY + text)
    return units[1].concurrent[0].body


# -- rng ---------------------------------------------------------------------


def test_derive_seed_depends_on_labels():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")
    assert derive_seed(1, "a", "b") != derive_seed(1, "ab")


def test_rng_stream_reproducible():
    assert rng_stream(5, "x").random() == rng_stream(5, "x").random()


def test_rng_streams_independent():
    stream_a = rng_stream(5, "a")
    stream_a.random()  # consuming A must not perturb a fresh B stream
    fresh_b = rng_stream(5, "b")
    seq_b = [fresh_b.random() for _ in range(5)]
    again_b = rng_stream(5, "b")
    assert seq_b == [again_b.random() for _ in range(5)]


# -- tables -------------------------------------------------------------------


def test_render_table_alignment():
    text = render_table(["Name", "N"], [["x", 1], ["long", 23]])
    lines = text.splitlines()
    assert lines[0].startswith("+")
    assert "| Name" in lines[1]
    assert lines[3].index("1") > lines[3].index("x")  # numbers right-aligned


def test_render_table_floats_two_decimals():
    text = render_table(["V"], [[1.23456]])
    assert "1.23" in text


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(["A", "B"], [["only-one"]])


def test_render_table_title():
    assert render_table(["A"], [[1]], title="T").startswith("T\n")


# -- printer -------------------------------------------------------------------


def test_expr_rendering():
    body = first_process_body(
        "architecture rtl of e is begin\n"
        "process (a, b) begin\n"
        "if (a and b) = '1' then y <= not a; end if;\n"
        "end process;\nend rtl;"
    )
    cond = body[0].arms[0][0]
    assert expr_to_text(cond) == "(a and b) = '1'"
    assign = body[0].arms[0][1][0]
    assert expr_to_text(assign.value) == "not a"


def test_stmt_rendering_nested():
    body = first_process_body(
        "architecture rtl of e is\n"
        "signal n : integer range 0 to 1;\nbegin\n"
        "process (a, n) begin\n"
        "case n is\nwhen 0 => y <= a;\nwhen others => null;\nend case;\n"
        "end process;\nend rtl;"
    )
    text = stmt_to_text(body[0])
    assert "case n is" in text
    assert "when others =>" in text
    assert "null;" in text


def test_round_trip_through_printer():
    source = (
        "architecture rtl of e is begin\n"
        "process (a, b) begin\n"
        "for i in 0 to 3 loop\n"
        "if a = '1' then y <= a xor b; else y <= '0'; end if;\n"
        "end loop;\n"
        "end process;\nend rtl;"
    )
    body = first_process_body(source)
    printed = stmt_to_text(body[0])
    # Re-embed the printed statement and confirm it parses identically.
    reparsed = first_process_body(
        "architecture rtl of e is begin\nprocess (a, b) begin\n"
        + printed
        + "\nend process;\nend rtl;"
    )
    assert stmt_to_text(reparsed[0]) == printed


def test_errors_exported():
    import repro.errors as errors

    assert issubclass(errors.LexError, errors.SourceError)
    assert issubclass(errors.LatchInferenceError, errors.SynthesisError)
    assert issubclass(errors.MutantRuntimeError, errors.SimulationError)
    assert issubclass(errors.OscillationError, errors.SimulationError)
