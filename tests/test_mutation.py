"""Mutation engine tests: operators, generation, execution, scoring."""

import pytest

from repro.circuits import load_circuit
from repro.hdl import load_design
from repro.mutation import (
    MutationEngine,
    estimate_equivalents,
    generate_mutants,
    mutants_by_operator,
    mutation_score,
)
from repro.mutation.operators import OPERATOR_NAMES, operators_named
from repro.sim import StimulusEncoder, Testbench
from repro.util import rng_stream

SMALL = """
entity small is
  port ( a, b : in bit; clock, reset : in bit; y : out bit );
end small;
architecture rtl of small is
  constant limit : integer := 2;
  signal cnt : integer range 0 to 3;
begin
  process (clock, reset)
  begin
    if reset = '1' then
      cnt <= 0;
      y <= '0';
    elsif rising_edge(clock) then
      y <= a and b;
      if cnt < limit then
        cnt <= cnt + 1;
      else
        cnt <= 0;
        y <= a or b;
      end if;
    end if;
  end process;
end rtl;
"""


@pytest.fixture(scope="module")
def small_design():
    return load_design(SMALL, "small")


def test_operator_registry_has_ten():
    assert len(OPERATOR_NAMES) == 10
    assert operators_named(["LOR", "CR"])[0].name == "LOR"


def test_unknown_operator_rejected():
    with pytest.raises(KeyError):
        operators_named(["XYZ"])


def test_mutants_deterministic(small_design):
    first = generate_mutants(small_design)
    second = generate_mutants(small_design)
    assert [m.description for m in first] == [
        m.description for m in second
    ]
    assert [m.mid for m in first] == list(range(len(first)))


def test_operator_restriction(small_design):
    only_lor = generate_mutants(small_design, ["LOR"])
    assert only_lor
    assert all(m.operator == "LOR" for m in only_lor)


def test_lor_counts(small_design):
    # Two logical expressions (and / or), five alternatives each.
    lor = generate_mutants(small_design, ["LOR"])
    assert len(lor) == 10


def test_aor_generates_arithmetic_swaps(small_design):
    aor = generate_mutants(small_design, ["AOR"])
    assert aor
    assert all("+" in m.description or "-" in m.description
               or "mod" in m.description or "rem" in m.description
               or "*" in m.description for m in aor)


def test_guard_plumbing_not_mutated(small_design):
    mutants = generate_mutants(small_design)
    assert not any("reset = '1'" in m.description for m in mutants)
    assert not any("rising_edge" in m.description for m in mutants)


def test_cr_includes_sibling_constants():
    design = load_design(
        """
        entity t is port ( clock : in bit; y : out bit ); end t;
        architecture rtl of t is
          constant c1 : integer := 1;
          constant c2 : integer := 2;
          signal s : integer range 0 to 3;
        begin
          process (clock)
          begin
            if rising_edge(clock) then
              s <= c1;
              if s = c1 then
                y <= '1';
              else
                y <= '0';
              end if;
            end if;
          end process;
        end rtl;
        """
    )
    cr = generate_mutants(design, ["CR"])
    assert any("c1 -> c2" in m.description for m in cr)


def test_ccr_replaces_case_choices(b01=None):
    design = load_circuit("b01")
    ccr = generate_mutants(design, ["CCR"])
    assert ccr
    assert all(m.description and "when" in m.description for m in ccr)


def test_vr_same_type_pool(small_design):
    vr = generate_mutants(small_design, ["VR"])
    # a and b are the only same-type (bit) data alternatives here.
    for mutant in vr:
        assert "->" in mutant.description


def test_mutant_patch_does_not_touch_design(small_design):
    mutants = generate_mutants(small_design, ["LOR"])
    engine = MutationEngine(small_design)
    stimuli = [0, 1, 2, 3, 3, 2, 1, 0]
    before = engine.reference_outputs(stimuli)
    engine.run_all(mutants, stimuli)
    after = engine.reference_outputs(stimuli)
    assert before == after


def test_killed_mutant_reports_cycle(small_design):
    mutants = generate_mutants(small_design, ["LOR"])
    engine = MutationEngine(small_design)
    stimuli = [3, 3, 3, 0, 1, 2, 3]
    records = engine.run_all(mutants, stimuli)
    killed = [r for r in records if r.killed and r.reason == "output-diff"]
    assert killed
    assert all(
        r.cycle is not None and 0 <= r.cycle < len(stimuli) for r in killed
    )


def test_runtime_error_mutants_killed(small_design):
    # AOR cnt+1 -> cnt-1 underflows the 0..3 range at cnt=0.
    mutants = generate_mutants(small_design, ["AOR"])
    engine = MutationEngine(small_design)
    records = engine.run_all(mutants, [3, 3, 3, 3])
    assert any(r.reason == "runtime" for r in records)


def test_compiled_and_interp_agree_on_kills(small_design):
    mutants = generate_mutants(small_design)
    stimuli = [0, 3, 1, 2, 3, 3, 0]
    compiled = MutationEngine(small_design, backend="compiled")
    interp = MutationEngine(small_design, backend="interp")
    rc = compiled.run_all(mutants, stimuli)
    ri = interp.run_all(mutants, stimuli)
    assert [(r.killed, r.cycle) for r in rc] == [
        (r.killed, r.cycle) for r in ri
    ]


def test_comb_kill_sets_match_run_mutant(c432=None):
    design = load_circuit("c17")
    mutants = generate_mutants(design, ["LOR"])[:10]
    engine = MutationEngine(design)
    rng = rng_stream(21, "killsets")
    vectors = [rng.getrandbits(5) for _ in range(16)]
    matrix = engine.comb_kill_sets(mutants, vectors)
    for mutant in mutants:
        record = engine.run_mutant(mutant, vectors)
        if record.killed:
            assert min(matrix[mutant.mid]) == record.cycle
        else:
            assert not matrix[mutant.mid]


def test_mutation_score_formula():
    assert mutation_score(100, 80, 20) == 1.0
    assert mutation_score(100, 40, 20) == 0.5
    assert mutation_score(10, 0, 10) == 1.0  # vacuous population


def test_equivalence_analysis_finds_redundant_mutant():
    # y <= a or (a and b): the CVR mutant b -> '1' yields a or a = a ...
    # wait, a or (a and '1') = a or a = a == original (absorption): the
    # mutant is equivalent and must survive the exhaustive campaign.
    design = load_design(
        """
        entity t is port ( a, b : in bit; y : out bit ); end t;
        architecture rtl of t is
        begin
          proc : process (a, b)
          begin
            y <= a or (a and b);
          end process proc;
        end rtl;
        """
    )
    mutants = generate_mutants(design, ["CVR"])
    target = next(
        m for m in mutants if "b -> '1'" in m.description
    )
    analysis = estimate_equivalents(design, mutants, budget=64, seed=3)
    assert analysis.exhaustive  # 2-bit input space
    assert target.mid in analysis.equivalent_mids


def test_equivalence_analysis_kills_real_mutants(small_design):
    mutants = generate_mutants(small_design, ["LOR"])
    analysis = estimate_equivalents(small_design, mutants, budget=64, seed=3)
    # 'and' -> 'nand' on the registered output is observably different.
    nand_mutant = next(
        m for m in mutants if "a nand b" in m.description
    )
    assert nand_mutant.mid not in analysis.equivalent_mids


def test_mutants_by_operator_partition(small_design):
    mutants = generate_mutants(small_design)
    groups = mutants_by_operator(mutants)
    assert sum(len(g) for g in groups.values()) == len(mutants)
    for op, group in groups.items():
        assert all(m.operator == op for m in group)


def test_descriptions_are_informative(small_design):
    for mutant in generate_mutants(small_design)[:50]:
        assert mutant.process_label in mutant.description
        assert str(mutant)
