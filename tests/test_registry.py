"""Tests for the generic class registry (repro.util.registry)."""

import pytest

from repro.errors import ConfigError, ReproError
from repro.util.registry import Registry


def make_registry(**kwargs):
    return Registry("toy widget", ConfigError, **kwargs)


class Alpha:
    name = "alpha"

    def __init__(self, value=0):
        self.value = value


class AlphaToo:
    name = "alpha"


def test_register_and_lookup():
    registry = make_registry()
    assert registry.register(Alpha) is Alpha
    assert registry.get("alpha") is Alpha
    assert "alpha" in registry
    assert len(registry) == 1
    assert registry.names() == ("alpha",)


def test_register_requires_a_name():
    registry = make_registry()

    class Nameless:
        pass

    with pytest.raises(ConfigError):
        registry.register(Nameless)


def test_reregistering_same_class_is_a_noop():
    registry = make_registry()
    registry.register(Alpha)
    registry.register(Alpha)  # module re-import: no error, no change
    assert registry.get("alpha") is Alpha


def test_name_collision_raises_subsystem_error():
    registry = make_registry()
    registry.register(Alpha)
    with pytest.raises(ConfigError, match="already registered"):
        registry.register(AlphaToo)
    assert registry.get("alpha") is Alpha


def test_replace_requires_the_flag_and_fires_callback():
    replaced = []
    registry = make_registry(on_replace=replaced.append)
    registry.register(Alpha)
    registry.register(AlphaToo, replace=True)
    assert registry.get("alpha") is AlphaToo
    assert replaced == ["alpha"]
    # A first registration is not a replacement.
    class Beta:
        name = "beta"

    registry.register(Beta)
    assert replaced == ["alpha"]


def test_register_as_decorator_with_flag():
    registry = make_registry()
    registry.register(Alpha)

    @registry.register(replace=True)
    class AlphaThree:
        name = "alpha"

    assert registry.get("alpha") is AlphaThree


def test_unknown_lookup_lists_known_names():
    registry = make_registry()
    registry.register(Alpha)
    with pytest.raises(ConfigError, match="registered: alpha"):
        registry.get("omega")


def test_build_instantiates():
    registry = make_registry()
    registry.register(Alpha)
    widget = registry.build("alpha", value=7)
    assert isinstance(widget, Alpha)
    assert widget.value == 7


def test_shared_entries_dict_stays_public():
    public: dict[str, type] = {}
    registry = Registry("thing", ReproError, entries=public)
    registry.register(Alpha)
    assert public == {"alpha": Alpha}


def test_subsystem_registries_use_the_helper():
    """The five ported registries still expose their public surfaces."""
    from repro.engine import engine_names
    from repro.fault.models import fault_model_names
    from repro.grid import scheduler_names
    from repro.sampling import strategy_names
    from repro.search.base import search_strategy_names

    assert "interp" in engine_names()
    assert "stuck-at" in fault_model_names()
    assert "process" in scheduler_names()
    assert "testability" in strategy_names()
    assert search_strategy_names()
