"""Semantic analysis tests: typing, elaboration, process classification."""

import pytest

from repro.errors import ElaborationError, SemanticError
from repro.hdl import load_design
from repro.hdl import types as ty
from repro.hdl.design import ProcessKind, SymbolKind

HEADER = """
entity e is
  port ( a, b : in bit; clock, reset : in bit; y : out bit );
end e;
"""


def build(decls: str, concurrent: str):
    return load_design(
        HEADER + f"architecture rtl of e is\n{decls}\nbegin\n{concurrent}\nend rtl;"
    )


def test_ports_become_symbols():
    design = build("", "y <= a;")
    assert design.port("a").kind is SymbolKind.PORT_IN
    assert design.port("y").kind is SymbolKind.PORT_OUT


def test_unknown_name_rejected():
    with pytest.raises(SemanticError):
        build("", "y <= nosuch;")


def test_type_mismatch_rejected():
    with pytest.raises(SemanticError):
        build("signal n : integer range 0 to 3;", "y <= n;")


def test_duplicate_declaration_rejected():
    with pytest.raises(SemanticError):
        build("signal a : bit;", "y <= a;")


def test_constant_folding():
    design = build(
        "constant k : integer := 3;\nconstant m : integer := k + 2;",
        "y <= a;",
    )
    assert design.constants["m"].init == 5


def test_vector_constant_width_checked():
    with pytest.raises(SemanticError):
        build('constant k : bit_vector(3 downto 0) := "001";', "y <= a;")


def test_enum_literals_registered():
    design = build("type st is (s0, s1);", "y <= a;")
    assert design.symbols["s1"].kind is SymbolKind.ENUM_LITERAL
    assert design.symbols["s1"].init == 1


def test_clocked_template_detected():
    design = build(
        "signal s : bit;",
        "process (clock, reset)\nbegin\n"
        "if reset = '1' then s <= '0'; y <= '0';\n"
        "elsif rising_edge(clock) then s <= a; y <= s;\nend if;\n"
        "end process;",
    )
    proc = design.processes[0]
    assert proc.kind is ProcessKind.CLOCKED
    assert proc.clock == "clock"
    assert proc.reset == "reset"
    assert proc.reset_level == 1
    assert design.is_sequential


def test_event_style_clock_template():
    design = build(
        "",
        "process (clock)\nbegin\n"
        "if clock'event and clock = '1' then y <= a;\nend if;\n"
        "end process;",
    )
    assert design.processes[0].kind is ProcessKind.CLOCKED
    assert design.processes[0].reset is None


def test_guard_nids_cover_template_plumbing():
    design = build(
        "",
        "process (clock, reset)\nbegin\n"
        "if reset = '1' then y <= '0';\n"
        "elsif rising_edge(clock) then y <= a;\nend if;\n"
        "end process;",
    )
    proc = design.processes[0]
    assert proc.guard_nids  # the reset compare + edge call + root if
    assert len(proc.guard_nids) >= 5


def test_edge_outside_template_rejected():
    with pytest.raises(ElaborationError):
        build(
            "",
            "process (clock)\nbegin\n"
            "y <= a;\n"
            "if rising_edge(clock) then y <= b;\nend if;\n"
            "end process;",
        )


def test_comb_process_sensitivity_completed():
    design = build(
        "",
        "process (a)\nbegin\ny <= a and b;\nend process;",
    )
    assert set(design.processes[0].sensitivity) >= {"a", "b"}


def test_reads_and_writes_tracked():
    design = build(
        "signal s : bit;",
        "process (a, b)\nbegin\ns <= a;\ny <= b;\nend process;",
    )
    proc = design.processes[0]
    assert proc.reads == {"a", "b"}
    assert proc.writes == {"s", "y"}


def test_multiple_drivers_rejected():
    with pytest.raises(ElaborationError):
        build("", "y <= a;\ny <= b;")


def test_case_full_coverage_ok_without_others():
    build(
        "signal n : integer range 0 to 1;",
        "process (a, n)\nbegin\ncase n is\nwhen 0 => y <= a;\n"
        "when 1 => y <= b;\nend case;\nend process;",
    )


def test_case_missing_choice_rejected():
    with pytest.raises(SemanticError):
        build(
            "signal n : integer range 0 to 2;",
            "process (a, n)\nbegin\ncase n is\nwhen 0 => y <= a;\n"
            "when 1 => y <= b;\nend case;\nend process;",
        )


def test_case_duplicate_choice_rejected():
    with pytest.raises(SemanticError):
        build(
            "signal n : integer range 0 to 1;",
            "process (a, n)\nbegin\ncase n is\nwhen 0 => y <= a;\n"
            "when 0 => y <= b;\nwhen others => null;\nend case;\nend process;",
        )


def test_if_condition_must_be_boolean():
    with pytest.raises(SemanticError):
        build("", "process (a)\nbegin\nif a then y <= b; end if;\nend process;")


def test_ordering_operators_require_integers():
    with pytest.raises(SemanticError):
        build("", "process (a)\nbegin\nif a < b then y <= a; end if;\nend process;")


def test_loop_variable_shadowing_rejected():
    with pytest.raises(SemanticError):
        build(
            "signal i : bit;",
            "process (a)\nbegin\nfor i in 0 to 3 loop\ny <= a;\nend loop;\n"
            "end process;",
        )


def test_assignment_to_input_port_rejected():
    with pytest.raises(SemanticError):
        build("", "process (a)\nbegin\na <= b;\nend process;")


def test_variable_assignment_to_signal_rejected():
    with pytest.raises(SemanticError):
        build(
            "signal s : bit;",
            "process (a)\nbegin\ns := a;\nend process;",
        )


def test_concat_widths():
    design = build(
        "signal v : bit_vector(1 downto 0);\nsignal w : bit_vector(2 downto 0);",
        "process (a, b, v)\nbegin\nw <= a & v;\nend process;",
    )
    proc = design.processes[0]
    value = proc.body[0].value
    assert isinstance(value.ty, ty.BitVectorType)
    assert value.ty.width == 3


def test_slice_bounds_checked():
    with pytest.raises(SemanticError):
        build(
            "signal v : bit_vector(3 downto 0);\n"
            "signal w : bit_vector(1 downto 0);",
            "process (v)\nbegin\nw <= v(5 downto 4);\nend process;",
        )


def test_data_input_ports_exclude_clock_reset():
    design = build(
        "",
        "process (clock, reset)\nbegin\n"
        "if reset = '1' then y <= '0';\n"
        "elsif rising_edge(clock) then y <= a;\nend if;\n"
        "end process;",
    )
    names = [p.name for p in design.data_input_ports]
    assert names == ["a", "b"]


# -- error paths: undeclared names, width mismatches, redeclarations ---------


def test_undeclared_name_in_process_statement():
    with pytest.raises(SemanticError, match="unknown name 'ghost'"):
        build("", "process (a)\nbegin\ny <= ghost;\nend process;")


def test_undeclared_name_in_condition():
    with pytest.raises(SemanticError, match="unknown name"):
        build(
            "",
            "process (a)\nbegin\n"
            "if ghost = '1' then y <= a; else y <= b; end if;\n"
            "end process;",
        )


def test_undeclared_callee_rejected():
    # The parser reads this as an indexed name, so resolution fails on
    # the prefix just like any other undeclared identifier.
    with pytest.raises(SemanticError, match="unknown name 'conjure'"):
        build("", "y <= conjure(a);")


def test_vector_assignment_width_mismatch():
    with pytest.raises(SemanticError, match="cannot assign"):
        build(
            "signal v : bit_vector(3 downto 0);",
            "process (a)\nbegin\nv <= \"000\";\nend process;",
        )


def test_signal_initializer_width_mismatch():
    with pytest.raises(SemanticError):
        build(
            'signal v : bit_vector(2 downto 0) := "01";',
            "y <= a;",
        )


def test_bit_to_vector_assignment_rejected():
    with pytest.raises(SemanticError, match="cannot assign"):
        build(
            "signal v : bit_vector(1 downto 0);",
            "process (a)\nbegin\nv <= a;\nend process;",
        )


def test_duplicate_type_name_rejected():
    with pytest.raises(SemanticError, match="duplicate type name"):
        build("type st is (s0, s1);\ntype st is (s2, s3);", "y <= a;")


def test_enum_literal_colliding_with_port_rejected():
    with pytest.raises(SemanticError, match="duplicate declaration"):
        build("type st is (a, s1);", "y <= b;")


def test_process_variable_redeclaring_signal_rejected():
    with pytest.raises(SemanticError, match="duplicate declaration"):
        build(
            "signal n : bit;",
            "process (a)\nvariable n : bit;\nbegin\ny <= a;\nend process;",
        )


def test_semantic_errors_carry_source_location():
    with pytest.raises(SemanticError) as excinfo:
        build("", "y <= ghost;")
    assert excinfo.value.line > 0
    assert str(excinfo.value).startswith(f"{excinfo.value.line}:")
