"""Labelled RNG streams: derivation, spawning, independence."""

import copy
import pickle

import pytest

from repro.util.rng import LabelledRandom, derive_seed, rng_stream, spawn


def test_derive_seed_label_sensitivity():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a", "b") != derive_seed(1, "ab")
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_rng_stream_is_labelled():
    stream = rng_stream(42, "x", "y")
    assert isinstance(stream, LabelledRandom)
    assert stream.master_seed == 42
    assert stream.labels == ("x", "y")


def test_spawn_extends_labels():
    parent = rng_stream(42, "x")
    child = spawn(parent, "y", "z")
    assert child.labels == ("x", "y", "z")
    assert child.master_seed == 42
    # The child is exactly the stream the full label tuple denotes.
    reference = rng_stream(42, "x", "y", "z")
    assert [child.random() for _ in range(5)] == [
        reference.random() for _ in range(5)
    ]


def test_spawn_does_not_consume_parent_state():
    pristine = rng_stream(7, "p")
    parent = rng_stream(7, "p")
    spawn(parent, "child-a")
    spawn(parent, "child-b", "deep")
    assert [parent.random() for _ in range(10)] == [
        pristine.random() for _ in range(10)
    ]


def test_spawn_order_independent():
    a = spawn(spawn(rng_stream(7, "p"), "x"), "y")
    b = spawn(rng_stream(7, "p"), "x", "y")
    assert a.labels == b.labels
    assert a.random() == b.random()


def test_spawn_children_are_independent():
    parent = rng_stream(7, "p")
    a = spawn(parent, "round", "1")
    b = spawn(parent, "round", "2")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_spawn_from_master_seed():
    assert spawn(7, "a").labels == ("a",)
    assert spawn(7, "a").random() == rng_stream(7, "a").random()


def test_spawn_requires_labels():
    with pytest.raises(ValueError):
        spawn(rng_stream(1, "x"))


def test_spawn_rejects_plain_random():
    import random

    with pytest.raises(TypeError):
        spawn(random.Random(1), "x")


def test_labelled_random_pickle_roundtrip_mid_stream():
    """Regression: random.Random's reduce protocol knows nothing about
    (master_seed, labels), so pickling used to raise TypeError."""
    stream = rng_stream(11, "circuit", "testgen")
    for _ in range(7):  # advance past the seed state
        stream.random()
    clone = pickle.loads(pickle.dumps(stream))
    assert isinstance(clone, LabelledRandom)
    assert clone.master_seed == 11
    assert clone.labels == ("circuit", "testgen")
    # The clone resumes at the exact draw position, not from the seed.
    assert [clone.random() for _ in range(16)] == [
        stream.random() for _ in range(16)
    ]
    assert clone.getrandbits(257) == stream.getrandbits(257)


def test_labelled_random_deepcopy_preserves_draw_position():
    stream = rng_stream(5, "x")
    stream.getrandbits(333)
    dup = copy.deepcopy(stream)
    assert dup is not stream
    assert dup.labels == stream.labels
    assert [dup.random() for _ in range(8)] == [
        stream.random() for _ in range(8)
    ]


def test_unpickled_stream_spawns_identical_children():
    stream = rng_stream(3, "p")
    clone = pickle.loads(pickle.dumps(stream))
    assert (
        spawn(clone, "round", "1").random()
        == spawn(stream, "round", "1").random()
    )
