"""Sampling strategies, quota allocation and the NLFCE metric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import load_circuit
from repro.errors import SamplingError
from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault
from repro.metrics.nlfce import nlfce_from_results
from repro.mutation import generate_mutants, mutants_by_operator
from repro.sampling import (
    PAPER_RANK_WEIGHTS,
    RandomSampling,
    TestOrientedSampling,
    largest_remainder,
    waterfill_rates,
    weights_from_nlfce,
)


@pytest.fixture(scope="module")
def b01_mutants():
    return generate_mutants(load_circuit("b01"))


# -- allocation ---------------------------------------------------------------


def test_largest_remainder_sums_to_total():
    quotas = largest_remainder({"a": 1.0, "b": 2.0, "c": 3.0}, 10)
    assert sum(quotas.values()) == 10
    assert quotas["c"] >= quotas["b"] >= quotas["a"]


def test_largest_remainder_deterministic_ties():
    first = largest_remainder({"x": 1.0, "y": 1.0, "z": 1.0}, 2)
    second = largest_remainder({"x": 1.0, "y": 1.0, "z": 1.0}, 2)
    assert first == second


def test_largest_remainder_rejects_zero_mass():
    with pytest.raises(SamplingError):
        largest_remainder({"a": 0.0}, 3)


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d", "e"]),
        st.integers(min_value=1, max_value=200),
        min_size=1,
    ),
    st.data(),
)
def test_waterfill_invariants(sizes, data):
    total = data.draw(
        st.integers(min_value=0, max_value=sum(sizes.values()))
    )
    weights = {g: data.draw(
        st.floats(min_value=0.01, max_value=10.0), label=f"w{g}"
    ) for g in sizes}
    quotas = waterfill_rates(weights, sizes, total)
    assert sum(quotas.values()) == total
    for group, quota in quotas.items():
        assert 0 <= quota <= sizes[group]


def test_waterfill_rejects_oversampling():
    with pytest.raises(SamplingError):
        waterfill_rates({"a": 1.0}, {"a": 3}, 5)


# -- strategies ----------------------------------------------------------------


def test_random_sampling_size_and_determinism(b01_mutants):
    strategy = RandomSampling(0.10)
    sample = strategy.sample(b01_mutants, seed=4)
    assert len(sample) == round(0.10 * len(b01_mutants))
    assert sample == strategy.sample(b01_mutants, seed=4)
    assert sample != strategy.sample(b01_mutants, seed=5)


def test_sampling_fraction_validation():
    with pytest.raises(SamplingError):
        RandomSampling(0.0)
    with pytest.raises(SamplingError):
        TestOrientedSampling(fraction=1.5)


def test_strategies_select_equal_counts(b01_mutants):
    random_sample = RandomSampling(0.10).sample(b01_mutants, seed=4)
    oriented = TestOrientedSampling(fraction=0.10).sample(
        b01_mutants, seed=4
    )
    assert len(random_sample) == len(oriented)


def test_test_oriented_prefers_heavy_operators(b01_mutants):
    groups = mutants_by_operator(b01_mutants)
    weights = {op: 0.05 for op in groups}
    weights["CR"] = 10.0
    strategy = TestOrientedSampling(weights, 0.10)
    quotas = strategy.quotas(b01_mutants)
    assert sum(quotas.values()) == strategy.sample_size(len(b01_mutants))
    cr_rate = quotas["CR"] / len(groups["CR"])
    lor_rate = quotas.get("LOR", 0) / len(groups["LOR"])
    assert cr_rate > lor_rate


def test_test_oriented_sample_matches_quotas(b01_mutants):
    strategy = TestOrientedSampling(fraction=0.10)
    quotas = strategy.quotas(b01_mutants)
    sample = strategy.sample(b01_mutants, seed=11)
    counts = {
        op: len(ms) for op, ms in mutants_by_operator(sample).items()
    }
    assert counts == {op: q for op, q in quotas.items() if q > 0}


def test_weights_from_nlfce_normalizes_and_floors():
    weights = weights_from_nlfce({"LOR": 10.0, "CR": 100.0, "VR": -5.0})
    assert weights["CR"] == 1.0
    assert weights["LOR"] == pytest.approx(0.1)
    assert weights["VR"] == pytest.approx(0.05)  # floored


def test_paper_rank_weights_cover_all_operators():
    from repro.mutation.operators import OPERATOR_NAMES

    assert set(PAPER_RANK_WEIGHTS) == set(OPERATOR_NAMES)
    assert (
        PAPER_RANK_WEIGHTS["LOR"]
        < PAPER_RANK_WEIGHTS["VR"]
        < PAPER_RANK_WEIGHTS["CVR"]
        < PAPER_RANK_WEIGHTS["CR"]
    )


# -- NLFCE ----------------------------------------------------------------------


def fake_result(detections, num_patterns):
    faults = [StuckAtFault(net=i, stuck=0) for i in range(len(detections))]
    return FaultSimResult(faults, detections, num_patterns)


def test_nlfce_basic_gains():
    # Mutation data: 4 faults covered in 2 vectors (100%).
    mutation = fake_result([0, 0, 1, 1], 2)
    # Random: reaches 50% at length 2, 100% at length 8.
    random = fake_result([0, 1, 4, 7], 8)
    report = nlfce_from_results(mutation, random)
    assert report.mfc == 1.0
    assert report.rfc_at_lm == 0.5
    assert report.delta_fc_pct == pytest.approx(100.0)
    assert report.random_length_for_mfc == 8
    assert report.delta_l_pct == pytest.approx(100 * (8 - 2) / 8)
    assert report.nlfce == pytest.approx(100.0 * 75.0)
    assert report.reached_mfc


def test_nlfce_budget_bound_flagged():
    mutation = fake_result([0, 0], 1)
    random = fake_result([None, None], 16)
    report = nlfce_from_results(mutation, random)
    assert not report.reached_mfc
    assert report.random_length_for_mfc == 16


def test_nlfce_double_negative_stays_negative():
    # Mutation data worse than random on both axes.
    mutation = fake_result([0, None, None, None], 4)
    random = fake_result([0, 0, 1, 1], 8)
    report = nlfce_from_results(mutation, random)
    assert report.delta_fc_pct < 0
    assert report.delta_l_pct < 0
    assert report.nlfce < 0


def test_nlfce_matches_paper_example_shape():
    # Verify the product definition against the paper's b01/LOR row:
    # 0.66 x 10.84 = 7.16 (values injected directly).
    class Stub:
        delta_fc_pct = 0.66
        delta_l_pct = 10.84

    from repro.metrics.nlfce import NlfceReport

    report = NlfceReport(
        mutation_length=10, mfc=0.5, rfc_at_lm=0.49,
        delta_fc_pct=0.66, random_length_for_mfc=11, reached_mfc=True,
        delta_l_pct=10.84, random_budget=100,
    )
    assert report.nlfce == pytest.approx(0.66 * 10.84, abs=1e-9)


def test_nlfce_row_keys():
    mutation = fake_result([0], 1)
    random = fake_result([0], 4)
    row = nlfce_from_results(mutation, random).row()
    assert set(row) == {"Lm", "MFC%", "dFC%", "dL%", "NLFCE"}
