"""Tests for repro.grid: sharded work units, schedulers, job store.

The load-bearing property: every (scheduler, shard size) combination
is bit-identical to the serial campaign, because units shard along
axes whose merges are pure unions/concatenations.  Pinned here on
random comb/seq netlists (merge algebra), on real labs (kill-analysis
and equivalence unions), and on full c432+b01 campaign payloads
(end-to-end through every scheduler backend).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.campaign import (
    Campaign,
    CampaignConfig,
    CampaignEvents,
    GuardedEvents,
    ProgressEvents,
    ResultCache,
    guard_events,
)
from repro.errors import ConfigError, GridError
from repro.experiments.context import _LABS, LabConfig, get_lab
from repro.fault import collapse_faults, simulate_stuck_at
from repro.grid import (
    GridExecutor,
    JobStore,
    WorkUnit,
    build_scheduler,
    get_scheduler,
    merge_detections,
    plan_fault_sim,
    register_scheduler,
    scheduler_names,
    shard_ranges,
    shard_size,
)
from repro.util import rng_stream
from tests.test_engine import random_netlist

#: Tiny budgets: every stage of the real pipeline, fast.
FAST = dict(
    seed=77,
    random_budget_comb=96,
    random_budget_seq=96,
    equivalence_budget=32,
    max_vectors=24,
)

#: c432+b01 with one operator and one strategy: every grid-dispatched
#: operation (baseline, per-target validation, kill analysis,
#: equivalence) on a big comb and a seq circuit, at test speed.
REDUCED = dict(FAST, operators=("LOR",), strategies=("random",))

SHARD_SIZES = (1, 3, 7)


def fresh_labs():
    """Drop memoized labs so grid paths actually dispatch units."""
    _LABS.clear()


@pytest.fixture(scope="module")
def serial_reduced():
    fresh_labs()
    return Campaign(CampaignConfig(**REDUCED)).run(("c432", "b01"))


@pytest.fixture(scope="module")
def serial_c17():
    fresh_labs()
    return Campaign(CampaignConfig(**FAST)).run(("c17",))


def payload(result):
    return [c.to_dict() for c in result.circuits]


# -- units and planners ------------------------------------------------------


def test_work_unit_validation_and_identity():
    unit = WorkUnit("c17", "fault-validation", "baseline", "fault-chunk",
                    0, 2, {"start": 0, "stop": 3, "vectors": [1, 2]})
    again = WorkUnit.from_dict(unit.to_dict())
    assert again == unit
    assert again.digest == unit.digest
    assert unit.uid.endswith(unit.digest)
    other = WorkUnit("c17", "fault-validation", "baseline", "fault-chunk",
                     0, 2, {"start": 0, "stop": 3, "vectors": [1, 3]})
    assert other.digest != unit.digest, "spec changes must change identity"
    with pytest.raises(GridError):
        WorkUnit("c17", "s", "k", "not-a-kind", 0, 1, {})
    with pytest.raises(GridError):
        WorkUnit("c17", "s", "k", "fault-chunk", 2, 2, {})
    with pytest.raises(GridError):
        WorkUnit.from_dict({"circuit": "c17"})


def test_shard_ranges_cover_axis():
    for total in (0, 1, 5, 16, 17):
        for size in (1, 3, 7, 16):
            ranges = shard_ranges(total, size)
            covered = [i for a, b in ranges for i in range(a, b)]
            assert covered == list(range(total))
    with pytest.raises(GridError):
        shard_ranges(4, 0)


def test_shard_size_auto_is_worker_independent():
    assert shard_size(100, 10) == 10          # explicit wins
    assert shard_size(1600, 0) == 100         # auto: 16 units
    assert shard_size(5, 0) == 1
    assert shard_size(0, 0) == 1
    with pytest.raises(GridError):
        shard_size(10, -1)


def test_planner_units_are_deterministic():
    a = plan_fault_sim("c17", "baseline", 22, [1, 2, 3], 7)
    b = plan_fault_sim("c17", "baseline", 22, [1, 2, 3], 7)
    assert [u.digest for u in a] == [u.digest for u in b]
    assert [u.index for u in a] == list(range(len(a)))
    assert all(u.total == len(a) for u in a)


# -- scheduler registry ------------------------------------------------------


def test_scheduler_registry():
    assert set(scheduler_names()) >= {"serial", "thread", "process"}
    assert get_scheduler("serial").name == "serial"
    with pytest.raises(GridError):
        get_scheduler("not-a-scheduler")
    with pytest.raises(GridError):
        build_scheduler("serial", 0)

    with pytest.raises(GridError):
        @register_scheduler
        class Hijack:  # same name, different class
            name = "serial"


# -- merge algebra on random netlists (satellite: property test) -------------


def _netlist_case(case: int, sequential: bool):
    rng = rng_stream(20260730, "grid-fuzz", "seq" if sequential else "comb",
                     str(case))
    netlist = random_netlist(
        rng,
        num_inputs=rng.randint(2, 6),
        num_gates=rng.randint(3, 30),
        num_dffs=rng.randint(1, 4) if sequential else 0,
    )
    width = len(netlist.input_bits)
    vectors = [rng.getrandbits(width) for _ in range(rng.randint(4, 24))]
    return netlist, vectors


@pytest.mark.parametrize("sequential", [False, True])
def test_sharded_fault_validation_bit_identical_on_random_netlists(
    sequential,
):
    for case in range(8):
        netlist, vectors = _netlist_case(case, sequential)
        faults = collapse_faults(netlist)
        serial = simulate_stuck_at(netlist, vectors, faults)
        for shard in (*SHARD_SIZES, len(faults) or 1):
            chunks = [
                simulate_stuck_at(
                    netlist, vectors, faults[start:stop]
                ).detection
                for start, stop in shard_ranges(len(faults), shard)
            ]
            merged = merge_detections(
                [{"detection": chunk} for chunk in chunks]
            )
            assert merged == serial.detection, (
                f"case {case} shard {shard}"
            )


# -- sharded operations on a real lab ----------------------------------------


def _lab(name="c17"):
    return get_lab(name, LabConfig(
        seed=77, random_budget_comb=96, random_budget_seq=96,
        equivalence_budget=32,
    ))


@pytest.mark.parametrize("shard", [*SHARD_SIZES, 0])
def test_executor_fault_sim_matches_lab(shard):
    lab = _lab()
    config = CampaignConfig(**FAST, grid="serial", grid_shard=shard)
    grid = GridExecutor(config)
    try:
        sharded = grid.fault_sim(lab, lab.random_vectors, "baseline")
    finally:
        grid.close()
    serial = lab.fault_sim(lab.random_vectors)
    assert sharded.detection == serial.detection
    assert sharded.num_patterns == serial.num_patterns
    assert sharded.faults == serial.faults


@pytest.mark.parametrize("shard", [*SHARD_SIZES, 0])
def test_executor_killed_mids_matches_engine(shard):
    lab = _lab()
    vectors = lab.random_vectors[:12]
    mutants = lab.all_mutants
    config = CampaignConfig(**FAST, grid="serial", grid_shard=shard)
    grid = GridExecutor(config)
    try:
        sharded = grid.killed_mids(lab, mutants, vectors, "population")
    finally:
        grid.close()
    assert sharded == lab.engine.killed_mids(mutants, vectors)


@pytest.mark.parametrize("shard", [1, 7, 0])
def test_executor_equivalence_matches_lab(shard):
    lab = _lab()
    config = CampaignConfig(**FAST, grid="serial", grid_shard=shard)
    grid = GridExecutor(config)
    try:
        sharded = grid.equivalence(lab)
    finally:
        grid.close()
    serial = lab.equivalence
    assert sharded.equivalent_mids == serial.equivalent_mids
    assert sharded.kill_cycle == serial.kill_cycle
    assert sharded.budget == serial.budget
    assert sharded.exhaustive == serial.exhaustive
    assert sharded.seed == serial.seed


# -- full campaigns: every scheduler, bit-identical --------------------------


@pytest.mark.parametrize("shard", SHARD_SIZES)
def test_grid_campaign_shard_sizes_match_serial_c17(serial_c17, shard):
    fresh_labs()
    grid = Campaign(
        CampaignConfig(**FAST, grid="serial", grid_shard=shard)
    ).run(("c17",))
    assert payload(grid) == payload(serial_c17)


@pytest.mark.parametrize("scheduler", ["serial", "thread", "process"])
def test_grid_campaign_schedulers_match_serial_c432_b01(
    serial_reduced, scheduler
):
    fresh_labs()
    grid = Campaign(
        CampaignConfig(**REDUCED, grid=scheduler, grid_workers=2)
    ).run(("c432", "b01"))
    assert payload(grid) == payload(serial_reduced)


def test_grid_supersedes_jobs(serial_c17):
    """grid + jobs>1 runs in the parent: stage hooks stay observable."""
    fresh_labs()

    class Recorder(CampaignEvents):
        def __init__(self):
            self.stages = []
            self.units = 0

        def on_stage_start(self, circuit, stage):
            self.stages.append(stage)

        def on_unit_done(self, unit, seconds, cached=False):
            self.units += 1

    recorder = Recorder()
    config = CampaignConfig(**FAST, grid="serial", jobs=4)
    result = Campaign(config, recorder).run(("c17",))
    assert payload(result) == payload(serial_c17)
    assert recorder.stages == list(config.stages)
    assert recorder.units > 0


# -- resume (the job store) --------------------------------------------------


class AbortAfter(CampaignEvents):
    """Raise KeyboardInterrupt once the n-th unit completes."""

    def __init__(self, n):
        self.n = n
        self.count = 0

    def on_unit_done(self, unit, seconds, cached=False):
        self.count += 1
        if self.count == self.n:
            raise KeyboardInterrupt


class UnitCounter(CampaignEvents):
    def __init__(self):
        self.cached = 0
        self.fresh = 0

    def on_unit_done(self, unit, seconds, cached=False):
        if cached:
            self.cached += 1
        else:
            self.fresh += 1


def test_killed_campaign_resumes_without_recompute(tmp_path, serial_c17):
    fresh_labs()
    config = CampaignConfig(**FAST, grid="serial", cache_dir=str(tmp_path))
    with pytest.raises(KeyboardInterrupt):
        Campaign(config, AbortAfter(5)).run(("c17",))
    stored = list(tmp_path.glob("grid-*/*.json"))
    assert len(stored) == 5, "every finished unit persisted before the kill"
    assert not list(tmp_path.glob("*.json")), "no circuit-level entry yet"

    fresh_labs()
    counter = UnitCounter()
    result = Campaign(config, counter).run(("c17",), resume=True)
    assert counter.cached == 5, "finished units were not recomputed"
    assert counter.fresh > 0
    assert payload(result) == payload(serial_c17)


def test_resume_survives_worker_count_change(tmp_path, serial_c17):
    """Unit boundaries depend on grid_shard, never on grid_workers."""
    fresh_labs()
    config = CampaignConfig(
        **FAST, grid="thread", grid_workers=1, cache_dir=str(tmp_path)
    )
    Campaign(config).run(("c17",))
    # Drop the circuit-level entry, keep the unit ledger: the resumed
    # run must rebuild the circuit purely from stored units.
    for entry in tmp_path.glob("*.json"):
        entry.unlink()

    fresh_labs()
    counter = UnitCounter()
    wider = config.replace(grid_workers=3)
    assert wider.fingerprint() == config.fingerprint()
    result = Campaign(wider, counter).run(("c17",), resume=True)
    assert counter.fresh == 0, "every unit came from the store"
    assert counter.cached > 0
    assert payload(result) == payload(serial_c17)


def test_resume_requires_cache_dir():
    from repro.errors import CampaignError

    config = CampaignConfig(**FAST, grid="serial")
    # CampaignError (a ConfigError: the run was *invoked* wrong), and
    # the message names the missing option.
    with pytest.raises(CampaignError, match="cache_dir"):
        Campaign(config).run(("c17",), resume=True)
    assert issubclass(CampaignError, ConfigError)


def test_job_store_ignores_corrupt_and_mismatched_entries(tmp_path):
    config = CampaignConfig(**FAST, grid="serial", cache_dir=str(tmp_path))
    store = JobStore(tmp_path, config)
    unit = plan_fault_sim("c17", "baseline", 8, [1, 2], 3)[0]
    assert store.load(unit) is None
    store.store(unit, {"detection": [None, 0, 1]}, 0.1)
    assert store.load(unit) == {"detection": [None, 0, 1]}
    # Different spec -> different identity -> miss, not a stale hit.
    other = plan_fault_sim("c17", "baseline", 8, [1, 3], 3)[0]
    assert store.load(other) is None
    store.path(unit).write_text("{ not json")
    assert store.load(unit) is None
    assert store.entries() == []


def test_job_store_warns_once_per_corrupt_file(tmp_path, capsys):
    """A truncated unit file (machine died mid-write) is skipped with
    one stderr warning, not a crash — and only warned about once."""
    config = CampaignConfig(**FAST, grid="serial", cache_dir=str(tmp_path))
    store = JobStore(tmp_path, config)
    unit = plan_fault_sim("c17", "baseline", 8, [1, 2], 3)[0]
    store.store(unit, {"detection": [None, 0, 1]}, 0.1)
    intact = store.path(unit).read_text()
    store.path(unit).write_text(intact[: len(intact) // 2])  # torn write
    assert store.load(unit) is None
    assert store.load(unit) is None
    err = capsys.readouterr().err
    assert err.count("skipping corrupt unit file") == 1
    assert unit.uid in err


def test_resume_recomputes_hand_truncated_unit(tmp_path, capsys):
    """--resume across a damaged ledger: the corrupt unit is warned
    about, recomputed, and the campaign result is unchanged."""
    fresh_labs()
    config = CampaignConfig(
        **FAST, grid="serial", grid_shard=3, strategies=(),
        operators=("LOR",), cache_dir=str(tmp_path),
    )
    first = Campaign(config).run(("c17",))
    store = JobStore(tmp_path, config)
    stored = sorted(store.directory.glob("*.json"))
    assert stored
    victim = stored[0]
    victim.write_text(victim.read_text()[:20])  # truncate mid-write
    # Drop the whole-circuit cache entry so the resume actually walks
    # the unit ledger instead of short-circuiting on the circuit hit.
    for entry in tmp_path.glob("c17-*.json"):
        entry.unlink()
    fresh_labs()
    counter = UnitCounter()
    resumed = Campaign(config, counter).run(("c17",), resume=True)
    assert payload(resumed) == payload(first)
    assert counter.fresh >= 1  # the truncated unit was recomputed
    assert counter.cached == len(stored) - 1
    assert "skipping corrupt unit file" in capsys.readouterr().err
    # The recomputed unit was re-persisted over the torn file.
    assert json.loads(victim.read_text())["unit"]["circuit"] == "c17"


def test_worker_exception_drains_finished_units():
    """A unit failing mid-wave must not lose its finished siblings."""
    config = CampaignConfig(**FAST)
    lab = _lab()
    good = plan_fault_sim(
        "c17", "baseline", len(lab.faults), lab.random_vectors[:4], 8
    )
    # A fault-count mismatch makes the worker raise GridError; queued
    # last on one worker, every good unit finishes first.
    bad = WorkUnit(
        "c17", "fault-validation", "baseline", "fault-chunk",
        0, 1, {"start": 0, "stop": 1, "num_faults": 999_999,
               "vectors": lab.random_vectors[:4]},
    )
    scheduler = build_scheduler("thread", 1)
    done = []
    try:
        with pytest.raises(GridError):
            scheduler.run(
                [*good, bad], config,
                on_done=lambda unit, seconds, result: done.append(unit.uid),
            )
    finally:
        scheduler.close()
    assert sorted(done) == sorted(unit.uid for unit in good), (
        "every finished unit was harvested before the error propagated"
    )


def test_scheduler_interrupt_drains_finished_units():
    """A KeyboardInterrupt mid-wave still harvests finished futures."""
    config = CampaignConfig(**FAST)
    lab = _lab()
    units = plan_fault_sim(
        "c17", "baseline", len(lab.faults), lab.random_vectors[:8], 2
    )
    scheduler = build_scheduler("thread", 2)
    done = []
    first_done = {"raised": False}

    def on_done(unit, seconds, result):
        done.append(unit.uid)
        if not first_done["raised"]:
            first_done["raised"] = True
            raise KeyboardInterrupt

    try:
        with pytest.raises(KeyboardInterrupt):
            scheduler.run(units, config, on_done=on_done)
        assert len(done) >= 1
    finally:
        scheduler.close()


# -- events: guard, unit hooks, progress (satellites) ------------------------


def test_raising_hook_does_not_abort_campaign(serial_c17, capsys):
    fresh_labs()

    class Broken(CampaignEvents):
        def __init__(self):
            self.stage_calls = 0

        def on_stage_start(self, circuit, stage):
            self.stage_calls += 1
            raise ValueError("boom")

        def on_circuit_done(self, circuit, result, seconds, cached=False):
            raise RuntimeError("also boom")

    broken = Broken()
    result = Campaign(CampaignConfig(**FAST), broken).run(("c17",))
    assert payload(result) == payload(serial_c17)
    err = capsys.readouterr().err
    assert err.count("on_stage_start") == 1, "one warning per hook"
    assert err.count("on_circuit_done") == 1
    assert broken.stage_calls == 1, "broken hook suppressed after first raise"


def test_guard_events_is_idempotent_and_passes_base_exceptions():
    class Interrupter(CampaignEvents):
        def on_circuit_start(self, circuit):
            raise KeyboardInterrupt

    guarded = guard_events(Interrupter())
    assert guard_events(guarded) is guarded
    assert isinstance(guarded, GuardedEvents)
    with pytest.raises(KeyboardInterrupt):
        guarded.on_circuit_start("c17")


def test_progress_events_render_units():
    fresh_labs()
    stream = io.StringIO()
    config = CampaignConfig(**FAST, grid="serial")
    Campaign(config, ProgressEvents(stream)).run(("c17",))
    out = stream.getvalue()
    assert "grid=serialx1" in out
    assert "fault-validation baseline unit 1/" in out
    assert "[c17] done" in out


# -- config wiring -----------------------------------------------------------


def test_grid_config_validation():
    with pytest.raises(ConfigError):
        CampaignConfig(grid="not-a-scheduler")
    with pytest.raises(ConfigError):
        CampaignConfig(grid_shard=-1)
    with pytest.raises(ConfigError):
        CampaignConfig(grid_workers=0)
    with pytest.raises(ConfigError):
        CampaignConfig(cache_max_entries=0)


def test_grid_config_roundtrip_and_fingerprint():
    config = CampaignConfig(
        **FAST, grid="process", grid_workers=4, grid_shard=64,
        cache_max_entries=10,
    )
    assert CampaignConfig.from_json(config.to_json()) == config
    # Execution-only knobs never move the fingerprint ...
    assert config.fingerprint() == config.replace(
        grid_workers=1, cache_max_entries=None, jobs=8
    ).fingerprint()
    # ... the sharding provenance does.
    assert config.fingerprint() != config.replace(grid=None).fingerprint()
    assert config.fingerprint() != config.replace(
        grid_shard=32
    ).fingerprint()


# -- result-cache LRU (satellite) --------------------------------------------


def test_result_cache_lru_sweep(tmp_path):
    import os
    import time as time_module

    from repro.campaign import CircuitResult

    config = CampaignConfig(**FAST)

    def entry(name):
        return CircuitResult(
            circuit=name, sequential=False, gates=1, dffs=0, depth=1,
            faults=2, mutants=3, equivalents=0,
        )

    seed_dir = tmp_path / "bounded"
    unbounded = ResultCache(seed_dir, config)
    now = time_module.time()
    for age, name in enumerate(("old", "mid", "new")):
        unbounded.store(entry(name))
        stamp = now - 100 + age
        os.utime(unbounded.path(name), (stamp, stamp))

    # Constructing with the bound sweeps the stalest entry immediately.
    cache = ResultCache(seed_dir, config, max_entries=2)
    assert cache.load("old") is None
    assert cache.load("mid") is not None
    assert cache.load("new") is not None
    # Hits refreshed mtime; age "mid" again so it is the LRU victim.
    os.utime(cache.path("mid"), (now - 10, now - 10))
    cache.store(entry("fresh"))
    assert cache.load("mid") is None
    assert cache.load("new") is not None
    assert cache.load("fresh") is not None

    # Foreign JSON files in the cache directory are never sweep victims.
    foreign = seed_dir / "notes.json"
    foreign.write_text("{}")
    os.utime(foreign, (now - 10_000, now - 10_000))
    cache.store(entry("newest"))
    assert foreign.exists(), "sweep only touches cache-entry-shaped files"

    plain_dir = tmp_path / "unbounded"
    plain = ResultCache(plain_dir, config)
    for name in ("a", "b", "c", "d"):
        plain.store(entry(name))
    assert all(
        plain.load(name) is not None for name in ("a", "b", "c", "d")
    ), "default stays unbounded"

    with pytest.raises(ConfigError):
        ResultCache(tmp_path, config, max_entries=0)


# -- CLI ---------------------------------------------------------------------


def test_cli_run_grid_resume_and_listing(tmp_path, capsys):
    from repro.cli import main

    fresh_labs()
    cache_dir = tmp_path / "cache"
    config_path = tmp_path / "campaign.json"
    config_path.write_text(
        CampaignConfig(
            **FAST, circuits=("c17",), strategies=(),
            grid="serial", cache_dir=str(cache_dir),
        ).to_json()
    )
    assert main(["run", str(config_path)]) == 0
    capsys.readouterr()

    assert main(["grid"]) == 0
    out = capsys.readouterr().out
    assert "serial" in out and "process" in out and "thread" in out

    assert main([
        "grid", "--store", str(cache_dir), "--config", str(config_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "fault-validation" in out and "unit(s) done" in out

    # Resume after dropping the circuit entry: completes from the store.
    for entry in cache_dir.glob("*.json"):
        entry.unlink()
    fresh_labs()
    assert main(["run", str(config_path), "--resume"]) == 0
    assert "Campaign: circuit inventory" in capsys.readouterr().out


def test_cli_resume_without_cache_dir_errors(tmp_path, capsys):
    from repro.cli import main

    config_path = tmp_path / "campaign.json"
    config_path.write_text(
        CampaignConfig(**FAST, circuits=("c17",)).to_json()
    )
    assert main(["run", str(config_path), "--resume"]) == 2
    # The error names the exact missing option.
    assert "cache_dir" in capsys.readouterr().err


def test_cli_json_includes_grid_fields(tmp_path, capsys):
    from repro.cli import main

    config_path = tmp_path / "campaign.json"
    config_path.write_text(
        CampaignConfig(**FAST, circuits=("c17",), strategies=()).to_json()
    )
    out_path = tmp_path / "result.json"
    assert main([
        "run", str(config_path), "--grid", "serial",
        "--grid-workers", "2", "--json", str(out_path),
    ]) == 0
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    assert data["config"]["grid"] == "serial"
    assert data["config"]["grid_workers"] == 2
