"""The ``vector`` backend: fuzzing, fallback and campaign pinning.

The generic differential suite in ``tests/test_engine.py`` already runs
every registered backend against ``interp``; this module adds the
vector-specific angles: randomized fuzz crossing the backend's own lane
thresholds (single-word scalar path, multi-word numpy path, row-batched
fault propagation), the pure big-int fallback with numpy monkeypatched
away, the batched-vs-looped ``fault_diff`` contract, and full campaign
payloads on real c432 + b01 circuits.
"""

from __future__ import annotations

import json

import pytest

import repro.engine.vector as vector_module
from repro.engine import VectorEngine, build_engine
from repro.fault import (
    CombFaultSimulator,
    SeqFaultSimulator,
    collapse_faults,
    simulate_stuck_at,
)
from repro.netlist import CombSimulator, SeqSimulator
from repro.netlist.simulate import unpack_patterns
from repro.util import rng_stream
from tests.conftest import netlist_of
from tests.test_engine import random_netlist

#: Pattern counts straddling the packed-word boundaries: single word
#: (scalar path), a few words, and past ``_NUMPY_LANES`` rounding.
LANE_COUNTS = (1, 3, 63, 64, 65, 127, 130)


def _comb_case(case: int):
    rng = rng_stream(4242, "vector-fuzz-comb", str(case))
    netlist = random_netlist(
        rng, num_inputs=rng.randint(2, 7), num_gates=rng.randint(1, 40)
    )
    width = len(netlist.input_bits)
    count = rng.choice(LANE_COUNTS)
    patterns = [rng.getrandbits(width) for _ in range(count)]
    return netlist, patterns


def test_fuzz_combinational_matches_interp_and_compiled():
    for case in range(24):
        netlist, patterns = _comb_case(case)
        faults = collapse_faults(netlist)
        results = {
            engine: CombFaultSimulator(
                netlist, faults, engine=engine
            ).simulate(patterns)
            for engine in ("interp", "compiled", "vector")
        }
        assert (
            results["vector"].detection == results["interp"].detection
        ), f"case {case}"
        assert (
            results["vector"].detection == results["compiled"].detection
        ), f"case {case}"
        mask = (1 << len(patterns)) - 1
        words = unpack_patterns(patterns, netlist.input_bits)
        assert CombSimulator(netlist, "vector").evaluate(
            words, mask
        ) == CombSimulator(netlist, "interp").evaluate(
            words, mask
        ), f"case {case}"


def test_fuzz_sequential_matches_interp():
    for case in range(12):
        rng = rng_stream(4242, "vector-fuzz-seq", str(case))
        netlist = random_netlist(
            rng,
            num_inputs=rng.randint(2, 5),
            num_gates=rng.randint(4, 30),
            num_dffs=rng.randint(1, 5),
        )
        faults = collapse_faults(netlist)
        width = len(netlist.input_bits)
        stimuli = [
            rng.getrandbits(width) for _ in range(rng.randint(1, 20))
        ]
        # Narrow configured lanes widen through the vector lane_batch,
        # crossing the scalar/numpy threshold at different chunkings.
        lanes = rng.choice((1, 5, 64, 96, 256))
        reference = SeqFaultSimulator(
            netlist, faults, lanes=lanes, engine="interp"
        ).simulate(stimuli)
        candidate = SeqFaultSimulator(
            netlist, faults, lanes=lanes, engine="vector"
        ).simulate(stimuli)
        assert candidate.detection == reference.detection, f"case {case}"
        assert SeqSimulator(netlist, engine="vector").run_packed(
            stimuli
        ) == SeqSimulator(netlist, engine="interp").run_packed(
            stimuli
        ), f"case {case}"


def test_batched_fault_diff_matches_looped_protocol():
    """fault_diff_batch must equal one fault_diff call per fault."""
    netlist = netlist_of("c432")
    faults = collapse_faults(netlist)
    rng = rng_stream(4242, "vector-batch", "c432")
    width = len(netlist.input_bits)
    patterns = [rng.getrandbits(width) for _ in range(96)]
    mask = (1 << len(patterns)) - 1
    engine = build_engine("vector")
    good = engine.eval_full(
        netlist, unpack_patterns(patterns, netlist.input_bits), mask
    )
    batched = engine.fault_diff_batch(netlist, faults, good, mask)
    looped = [
        engine.fault_diff(netlist, fault, good, mask) for fault in faults
    ]
    assert batched == looped


def test_seq_simulator_widens_chunks_through_lane_batch():
    netlist = netlist_of("b01")
    vector_sim = SeqFaultSimulator(netlist, lanes=64, engine="vector")
    interp_sim = SeqFaultSimulator(netlist, lanes=64, engine="interp")
    assert vector_sim.lanes == interp_sim.lanes == 64
    assert interp_sim.effective_lanes == 64
    assert vector_sim.effective_lanes == 64 * VectorEngine.lane_batch


@pytest.mark.parametrize("name", ["c17", "c432", "b01"])
def test_real_circuits_match_interp(name):
    netlist = netlist_of(name)
    rng = rng_stream(4242, "vector-real", name)
    width = len(netlist.input_bits)
    vectors = [rng.getrandbits(width) for _ in range(48)]
    reference = simulate_stuck_at(netlist, vectors, engine="interp")
    candidate = simulate_stuck_at(netlist, vectors, engine="vector")
    assert candidate.detection == reference.detection


# -- numpy-absent fallback ----------------------------------------------------


@pytest.fixture()
def no_numpy(monkeypatch):
    """The vector backend with its numpy import monkeypatched away."""
    monkeypatch.setattr(vector_module, "_np", None)
    # A private instance: nothing shared with numpy-built state.
    return VectorEngine()


def test_fallback_combinational_matches_interp(no_numpy):
    for case in range(8):
        netlist, patterns = _comb_case(case)
        if not patterns:
            continue
        faults = collapse_faults(netlist)
        reference = CombFaultSimulator(
            netlist, faults, engine="interp"
        ).simulate(patterns)
        candidate = CombFaultSimulator(
            netlist, faults, engine=no_numpy
        ).simulate(patterns)
        assert candidate.detection == reference.detection, f"case {case}"


def test_fallback_sequential_matches_interp(no_numpy):
    netlist = netlist_of("b01")
    rng = rng_stream(4242, "vector-fallback", "b01")
    width = len(netlist.input_bits)
    stimuli = [rng.getrandbits(width) for _ in range(24)]
    reference = SeqFaultSimulator(
        netlist, lanes=96, engine="interp"
    ).simulate(stimuli)
    candidate = SeqFaultSimulator(
        netlist, lanes=96, engine=no_numpy
    ).simulate(stimuli)
    assert candidate.detection == reference.detection


def test_fallback_batches_rows_in_one_big_int(no_numpy, monkeypatch):
    """The fallback still word-parallelizes: shrink its batch budget so
    several row batches are exercised, results unchanged."""
    monkeypatch.setattr(vector_module, "_BATCH_BITS", 1 << 9)
    netlist = netlist_of("c17")
    rng = rng_stream(4242, "vector-fallback", "c17")
    width = len(netlist.input_bits)
    patterns = [rng.getrandbits(width) for _ in range(16)]
    reference = CombFaultSimulator(netlist, engine="interp").simulate(
        patterns
    )
    candidate = CombFaultSimulator(netlist, engine=no_numpy).simulate(
        patterns
    )
    assert candidate.detection == reference.detection


# -- campaign payloads on real circuits ---------------------------------------


def test_campaign_payload_identical_on_c432_and_b01():
    """The whole pipeline (synth -> mutants -> search -> fault
    validation -> metrics) on one comb and one seq paper circuit must
    produce byte-identical science on the vector backend."""
    from repro.campaign.config import CampaignConfig
    from repro.campaign.runner import Campaign

    payloads = {}
    for engine in ("interp", "vector"):
        config = CampaignConfig(
            engine=engine,
            random_budget_comb=128,
            random_budget_seq=64,
            equivalence_budget=16,
            max_vectors=16,
            operators=("LOR", "CR"),
        )
        result = Campaign(config).run(("c432", "b01"))
        payloads[engine] = json.loads(result.to_json())["circuits"]
    assert payloads["vector"] == payloads["interp"]
