"""BV value semantics, including hypothesis property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdl import types as ty
from repro.hdl.values import BV, check_in_range, default_value


def test_bv_masks_value():
    assert BV(0b10110, 4).value == 0b0110


def test_bv_bit_access():
    v = BV(0b1010, 4)
    assert [v.bit(i) for i in range(4)] == [0, 1, 0, 1]


def test_bv_bit_bounds():
    with pytest.raises(ValueError):
        BV(0, 4).bit(4)


def test_with_bit():
    assert BV(0b0000, 4).with_bit(2, 1).value == 0b0100
    assert BV(0b1111, 4).with_bit(0, 0).value == 0b1110


def test_slice_and_with_slice():
    v = BV(0b11010, 5)
    assert v.slice(3, 1).value == 0b101
    assert v.with_slice(3, 1, BV(0b010, 3)).value == 0b10100


def test_concat_orders_msb_first():
    left = BV(0b10, 2)
    right = BV(0b01, 2)
    assert left.concat(right).to_string() == "1001"


def test_from_string_roundtrip():
    assert BV.from_string("0110").to_string() == "0110"


def test_default_values():
    assert default_value(ty.BIT) == 0
    assert default_value(ty.BOOLEAN) is False
    assert default_value(ty.IntegerType(3, 9)) == 3
    assert default_value(ty.BitVectorType(3, 0)) == BV(0, 4)
    assert default_value(ty.EnumType("t", ("x", "y"))) == 0


def test_check_in_range_raises():
    with pytest.raises(ValueError):
        check_in_range(10, ty.IntegerType(0, 7))
    with pytest.raises(ValueError):
        check_in_range(2, ty.BIT)


@given(st.integers(min_value=0, max_value=2**16 - 1))
def test_bv_value_stable(value):
    assert BV(value, 16).value == value


@given(
    st.integers(min_value=1, max_value=24),
    st.data(),
)
def test_with_bit_then_bit_reads_back(width, data):
    value = data.draw(st.integers(min_value=0, max_value=2**width - 1))
    offset = data.draw(st.integers(min_value=0, max_value=width - 1))
    bit = data.draw(st.integers(min_value=0, max_value=1))
    assert BV(value, width).with_bit(offset, bit).bit(offset) == bit


@given(
    st.integers(min_value=2, max_value=20),
    st.data(),
)
def test_slice_concat_identity(width, data):
    value = data.draw(st.integers(min_value=0, max_value=2**width - 1))
    cut = data.draw(st.integers(min_value=1, max_value=width - 1))
    v = BV(value, width)
    high = v.slice(width - 1, cut)
    low = v.slice(cut - 1, 0)
    assert high.concat(low) == v


@given(st.integers(min_value=1, max_value=24), st.data())
def test_to_string_from_string_roundtrip(width, data):
    value = data.draw(st.integers(min_value=0, max_value=2**width - 1))
    v = BV(value, width)
    assert BV.from_string(v.to_string()) == v
