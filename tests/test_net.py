"""Tests for repro.net: coordinator, workers, remote scheduler, service.

The load-bearing properties, in rough order of importance:

* ``--grid remote`` is bit-identical to serial, with two real workers
  pulling over HTTP (the whole-campaign determinism contract).
* At-least-once delivery is idempotent: a unit completed twice (lease
  reassignment + a late duplicate push) changes nothing, and the job
  store holds exactly one file for it.
* Lease expiry reassigns a silent worker's units and the campaign
  still completes, bit-identical.
* A coordinator crash mid-run is survivable: a fresh coordinator on
  the same cache directory plus ``resume=True`` picks up from the
  units the dead one persisted.
* The campaign service runs submitted configs on the attached workers
  and streams sequence-numbered event envelopes, resumable by
  ``since``.

Everything runs on 127.0.0.1 with ephemeral ports; the pure queue
logic (reaping, duplicates, cancellation) is additionally pinned on
:class:`CoordinatorCore` with an injected fake clock, no sockets.
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.campaign import Campaign, CampaignConfig
from repro.campaign.result import CampaignResult
from repro.errors import GridError, NetError
from repro.experiments.context import _LABS
from repro.grid import (
    JobStore,
    WorkUnit,
    build_scheduler,
    execute_unit,
    plan_fault_sim,
    scheduler_names,
)
from repro.net import (
    PROTOCOL_VERSION,
    CoordinatorClient,
    CoordinatorCore,
    CoordinatorServer,
    ProtocolError,
    UnknownWorker,
    WorkerDaemon,
    WorkerGone,
)
from repro.net.protocol import (
    check_version,
    dump_event_lines,
    load_event_lines,
    load_message,
    require,
)
from tests.test_grid import FAST, AbortAfter, UnitCounter, fresh_labs, payload

WAIT = 120.0  # generous outer deadline for any single campaign


@pytest.fixture(scope="module")
def serial_c17():
    fresh_labs()
    return Campaign(CampaignConfig(**FAST)).run(("c17",))


def quiet_server(**kwargs) -> CoordinatorServer:
    kwargs.setdefault("port", 0)
    kwargs.setdefault("stream", io.StringIO())
    return CoordinatorServer(**kwargs).start()


def start_worker(url: str, name: str) -> WorkerDaemon:
    daemon = WorkerDaemon(url, name=name, stream=io.StringIO())
    threading.Thread(target=daemon.run, daemon=True).start()
    return daemon


def lease_until_job(client: CoordinatorClient, wid: str) -> dict:
    deadline = time.monotonic() + WAIT
    while time.monotonic() < deadline:
        got = client.lease(wid)
        if not got.get("idle"):
            return got
        time.sleep(0.02)
    raise AssertionError("no unit became leasable in time")


# -- protocol ----------------------------------------------------------------


def test_protocol_message_helpers():
    assert load_message(b'{"a":1}') == {"a": 1}
    with pytest.raises(ProtocolError):
        load_message(b"{ not json")
    with pytest.raises(ProtocolError):
        load_message(b"[1,2]")
    assert require({"n": 3}, "n", int) == 3
    with pytest.raises(ProtocolError):
        require({}, "n")
    with pytest.raises(ProtocolError):
        require({"n": "x"}, "n", int)
    check_version({"protocol": PROTOCOL_VERSION}, "peer")
    with pytest.raises(ProtocolError):
        check_version({"protocol": PROTOCOL_VERSION + 1}, "peer")


def test_protocol_event_lines_round_trip():
    events = [{"seq": 0, "event": "a"}, {"seq": 1, "event": "b"}]
    assert load_event_lines(dump_event_lines(events)) == events
    assert load_event_lines(b"\n\n") == []
    with pytest.raises(ProtocolError):
        load_event_lines(b"[1]\n")


def test_remote_is_a_registered_scheduler():
    assert "remote" in scheduler_names()


def test_remote_scheduler_requires_coordinator():
    units = plan_fault_sim("c17", "baseline", 8, [1, 2, 3], 8)
    with pytest.raises(GridError, match="coordinator"):
        build_scheduler("remote").run(units, CampaignConfig(**FAST))


def test_client_rejects_bad_urls_and_dead_coordinators():
    with pytest.raises(NetError):
        CoordinatorClient("ftp://somewhere")
    client = CoordinatorClient("http://127.0.0.1:9", timeout=0.5)
    with pytest.raises(NetError):
        client.ping()


# -- CoordinatorCore with a fake clock ---------------------------------------


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _wave_payload(shard: int = 4) -> dict:
    units = plan_fault_sim("c17", "baseline", 8, [1, 2, 3], shard)
    return {
        "units": [unit.to_dict() for unit in units],
        "config": CampaignConfig(**FAST).to_dict(),
    }


def test_core_lease_complete_and_duplicate_ack():
    clock = FakeClock()
    core = CoordinatorCore(
        lease_timeout=10.0, clock=clock, stream=io.StringIO()
    )
    wid = core.register_worker("a")["worker"]
    assert core.lease(wid)["idle"] is True

    wave = core.submit_wave(_wave_payload())
    assert wave["units"] == 2
    lease = core.lease(wid)
    result = {"detection": [None, 0, 1]}
    ack = core.complete(wid, {
        "job": lease["job"], "seconds": 0.5, "result": result,
    })
    assert ack == {"ok": True, "duplicate": False}
    # The exact same completion again: acknowledged, changes nothing.
    ack = core.complete(wid, {
        "job": lease["job"], "seconds": 0.5, "result": result,
    })
    assert ack == {"ok": True, "duplicate": True}

    status = core.wave_status(wave["wave"])
    assert status["total"] == 2 and status["pending"] == 1
    assert len(status["log"]) == 1
    assert status["log"][0]["result"] == result
    # The since cursor skips what the client already saw.
    assert core.wave_status(wave["wave"], since=status["next"])["log"] == []


def test_core_reaps_silent_worker_and_reassigns(tmp_path):
    sink = io.StringIO()
    clock = FakeClock()
    config = CampaignConfig(**FAST)
    core = CoordinatorCore(
        cache_dir=str(tmp_path), lease_timeout=10.0, clock=clock,
        stream=sink,
    )
    w1 = core.register_worker("silent")["worker"]
    wave = core.submit_wave(_wave_payload())
    lease1 = core.lease(w1)
    unit = WorkUnit.from_dict(lease1["unit"])

    clock.advance(10.5)  # w1 misses its deadline
    w2 = core.register_worker("alive")["worker"]
    with pytest.raises(UnknownWorker):
        core.heartbeat(w1)
    lease2 = core.lease(w2)
    # The reassigned unit jumps the queue: w2 gets the same unit.
    assert lease2["unit"] == lease1["unit"]
    assert "missed its heartbeat" in sink.getvalue()

    result = {"detection": [0, None]}
    assert core.complete(w2, {
        "job": lease2["job"], "seconds": 0.1, "result": result,
    })["duplicate"] is False
    # w1 was merely slow: its late push is acknowledged, deduplicated,
    # and the job store still holds exactly one file for the unit.
    assert core.complete(w1, {
        "job": lease1["job"], "seconds": 9.9, "result": result,
    })["duplicate"] is True
    store = JobStore(tmp_path, config)
    assert store.load(unit) == result
    assert len(list(store.directory.glob(f"{unit.uid}*.json"))) == 1
    assert len(core.wave_status(wave["wave"])["log"]) == 1


def test_core_cancel_wave_drops_pending_units():
    core = CoordinatorCore(
        lease_timeout=10.0, clock=FakeClock(), stream=io.StringIO()
    )
    wid = core.register_worker("a")["worker"]
    wave = core.submit_wave(_wave_payload())
    assert core.cancel_wave(wave["wave"])["dropped"] == 2
    assert core.lease(wid)["idle"] is True
    assert core.wave_status(wave["wave"])["canceled"] is True


def test_core_failed_unit_lands_in_the_log_with_its_error():
    core = CoordinatorCore(
        lease_timeout=10.0, clock=FakeClock(), stream=io.StringIO()
    )
    wid = core.register_worker("a")["worker"]
    wave = core.submit_wave(_wave_payload())
    lease = core.lease(wid)
    core.complete(wid, {"job": lease["job"], "error": "GridError: boom"})
    record = core.wave_status(wave["wave"])["log"][0]
    assert record["error"] == "GridError: boom"
    assert "result" not in record


# -- HTTP end to end ---------------------------------------------------------


def test_http_error_statuses_map_to_exceptions():
    server = quiet_server(service=False)
    try:
        client = CoordinatorClient(server.url)
        ping = client.ping()
        assert ping["ok"] is True and ping["service"] is False
        with pytest.raises(WorkerGone):
            client.heartbeat("w999")
        with pytest.raises(NetError):
            client.wave_status("nope")
        with pytest.raises(NetError, match="without the campaign"):
            client.submit_campaign(CampaignConfig(**FAST).to_dict())
        with pytest.raises(ProtocolError):
            # missing the units field entirely
            client._call("POST", "/waves", {"config": {}})
    finally:
        server.close()


def test_remote_campaign_two_workers_bit_identical(tmp_path, serial_c17):
    server = quiet_server(cache_dir=str(tmp_path))
    workers = [start_worker(server.url, f"w{i}") for i in range(2)]
    try:
        fresh_labs()
        config = CampaignConfig(
            **FAST, grid="remote", coordinator=server.url
        )
        result = Campaign(config).run(("c17",))
        assert payload(result) == payload(serial_c17)
        # Both workers actually participated (work was distributed).
        status = server.core.status()
        assert status["units"]["done"] > 0
        assert sum(w["completed"] for w in status["workers"]) == (
            status["units"]["done"]
        )
        # Filename-as-identity: one file per completed unit, ever.
        stores = list(tmp_path.glob("grid-*"))
        assert len(stores) == 1
        files = list(stores[0].glob("*.json"))
        assert len(files) == len({f.name for f in files}) == (
            status["units"]["done"]
        )
    finally:
        for worker in workers:
            worker.stop()
        server.close()


def test_lease_expiry_reassigns_and_late_push_is_duplicate(
    tmp_path, serial_c17
):
    """A worker that leases a unit and goes silent: the unit is
    reassigned, the campaign completes bit-identical to serial, and
    the ghost's eventual late completion is deduplicated."""
    sink = io.StringIO()
    server = quiet_server(
        cache_dir=str(tmp_path), lease_timeout=0.8, stream=sink
    )
    client = CoordinatorClient(server.url)
    ghost = client.register_worker("ghost")["worker"]

    fresh_labs()
    config = CampaignConfig(**FAST, grid="remote", coordinator=server.url)
    outcome: dict = {}

    def run_campaign():
        try:
            outcome["result"] = Campaign(config).run(("c17",))
        except BaseException as exc:  # surfaced in the main thread
            outcome["error"] = exc

    campaign = threading.Thread(target=run_campaign, daemon=True)
    campaign.start()
    # The ghost grabs the first available unit, then never heartbeats.
    lease = lease_until_job(client, ghost)
    worker = start_worker(server.url, "real")
    try:
        campaign.join(timeout=WAIT)
        assert not campaign.is_alive()
        assert "error" not in outcome, outcome.get("error")
        assert payload(outcome["result"]) == payload(serial_c17)
        assert "missed its heartbeat" in sink.getvalue()

        # The ghost finally finishes its unit and pushes — long after
        # the reassigned copy completed.  Idempotent by identity.
        unit = WorkUnit.from_dict(lease["unit"])
        late = execute_unit(
            unit, CampaignConfig.from_dict(lease["config"])
        )
        ack = client.complete(ghost, {
            "job": lease["job"], "seconds": 99.0, "result": late,
        })
        assert ack["duplicate"] is True
        store_dir = next(tmp_path.glob("grid-*"))
        assert len(list(store_dir.glob(f"{unit.uid}*.json"))) == 1
    finally:
        worker.stop()
        server.close()


def test_resume_after_coordinator_crash(tmp_path, serial_c17):
    """Kill coordinator and worker mid-campaign; a fresh coordinator
    on the same cache directory + ``--resume`` finishes the run from
    the units the dead one persisted."""
    shared = tmp_path / "shared-cache"
    first = quiet_server(cache_dir=str(shared))
    worker1 = start_worker(first.url, "doomed")
    fresh_labs()
    config = CampaignConfig(**FAST, grid="remote", coordinator=first.url)
    with pytest.raises(KeyboardInterrupt):
        Campaign(config, AbortAfter(5)).run(("c17",))
    worker1.stop()
    first.close()  # the crash

    persisted = len(list(next(shared.glob("grid-*")).glob("*.json")))
    assert persisted >= 5

    second = quiet_server(cache_dir=str(shared))
    worker2 = start_worker(second.url, "fresh")
    try:
        fresh_labs()
        counter = UnitCounter()
        resumed = Campaign(
            config.replace(coordinator=second.url, cache_dir=str(shared)),
            counter,
        ).run(("c17",), resume=True)
        assert payload(resumed) == payload(serial_c17)
        assert counter.cached >= 5  # the dead coordinator's units
    finally:
        worker2.stop()
        second.close()


def test_remote_scheduler_raises_on_worker_failure():
    server = quiet_server()
    units = plan_fault_sim("c17", "baseline", 8, [1, 2, 3], 8)
    config = CampaignConfig(**FAST, coordinator=server.url)
    scheduler = build_scheduler("remote")
    outcome: dict = {}

    def run():
        try:
            scheduler.run(units, config)
        except BaseException as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    try:
        client = CoordinatorClient(server.url)
        wid = client.register_worker("failer")["worker"]
        lease = lease_until_job(client, wid)
        client.complete(wid, {"job": lease["job"], "error": "boom"})
        thread.join(timeout=WAIT)
        assert not thread.is_alive()
        assert isinstance(outcome.get("error"), GridError)
        assert "boom" in str(outcome["error"])
    finally:
        server.close()


# -- campaign as a service ---------------------------------------------------


def test_campaign_service_runs_submitted_config(tmp_path, serial_c17):
    server = quiet_server(cache_dir=str(tmp_path))
    worker = start_worker(server.url, "svc")
    try:
        client = CoordinatorClient(server.url)
        assert client.ping()["service"] is True
        fresh_labs()
        cid = client.submit_campaign(
            CampaignConfig(**FAST, circuits=("c17",)).to_dict()
        )["campaign"]

        deadline = time.monotonic() + WAIT
        while True:
            status = client.campaign_status(cid)
            if status["status"] in ("done", "failed"):
                break
            assert time.monotonic() < deadline, "service campaign hung"
            time.sleep(0.1)
        assert status["status"] == "done", status.get("error")
        result = CampaignResult.from_dict(status["result"])
        assert payload(result) == payload(serial_c17)

        events = client.campaign_events(cid)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "service-queued"
        assert kinds[-1] == "service-done"
        assert "campaign-start" in kinds and "campaign-end" in kinds
        assert "unit-done" in kinds
        # Envelopes are seq-numbered and the stream resumes anywhere.
        assert [event["seq"] for event in events] == (
            list(range(len(events)))
        )
        assert client.campaign_events(cid, since=len(events) - 3) == (
            events[-3:]
        )
        with pytest.raises(NetError):
            client.campaign_status("c404")
    finally:
        worker.stop()
        server.close()


def test_service_survives_a_bad_submission():
    server = quiet_server()
    try:
        client = CoordinatorClient(server.url)
        # Unknown config keys are rejected at submission time (400),
        # before the service thread ever sees them.
        with pytest.raises((ProtocolError, NetError)):
            client.submit_campaign({"not_a_real_option": 1})
        # A structurally valid config that fails at run time marks the
        # campaign failed but leaves the service alive.
        cid = client.submit_campaign(
            CampaignConfig(**FAST, circuits=("no-such-circuit",)).to_dict()
        )["campaign"]
        deadline = time.monotonic() + WAIT
        while client.campaign_status(cid)["status"] not in (
            "done", "failed"
        ):
            assert time.monotonic() < deadline
            time.sleep(0.05)
        status = client.campaign_status(cid)
        assert status["status"] == "failed"
        assert "no-such-circuit" in status["error"]
        assert client.ping()["ok"] is True  # still serving
    finally:
        server.close()


# -- CLI ---------------------------------------------------------------------


def test_cli_worker_and_submit_round_trip(tmp_path, serial_c17, capsys):
    from repro.cli import main

    server = quiet_server(cache_dir=str(tmp_path / "cache"))
    config_path = tmp_path / "campaign.json"
    config_path.write_text(
        CampaignConfig(**FAST, circuits=("c17",)).to_json()
    )
    out_path = tmp_path / "result.json"
    cli_worker = threading.Thread(
        target=main,
        args=(["worker", server.url, "--name", "cliw",
               "--max-idle", "600"],),
        daemon=True,
    )
    cli_worker.start()
    try:
        fresh_labs()
        rc = main([
            "submit", server.url, str(config_path),
            "--poll", "0.05", "--json", str(out_path),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        data = json.loads(out_path.read_text())
        result = CampaignResult.from_dict(data)
        assert payload(result) == payload(serial_c17)
        # The event stream went to stdout as JSON lines.
        lines = [
            line for line in captured.out.splitlines()
            if line.startswith("{")
        ]
        kinds = [json.loads(line)["event"] for line in lines]
        assert "campaign-start" in kinds and "service-done" in kinds
    finally:
        server.close()


def test_cli_run_grid_remote_needs_coordinator(tmp_path, capsys):
    from repro.cli import main

    config_path = tmp_path / "campaign.json"
    config_path.write_text(
        CampaignConfig(**FAST, circuits=("c17",)).to_json()
    )
    rc = main(["run", str(config_path), "--grid", "remote"])
    assert rc == 2
    assert "coordinator" in capsys.readouterr().err
