"""Shared fixtures: parsed designs and synthesized netlists (cached)."""

from __future__ import annotations

import pytest

from repro.circuits import circuit_names, load_circuit
from repro.synth import synthesize

_NETLISTS = {}


@pytest.fixture(scope="session", params=circuit_names())
def any_circuit_name(request):
    return request.param


@pytest.fixture(scope="session")
def b01():
    return load_circuit("b01")


@pytest.fixture(scope="session")
def b02():
    return load_circuit("b02")


@pytest.fixture(scope="session")
def b03():
    return load_circuit("b03")


@pytest.fixture(scope="session")
def c17():
    return load_circuit("c17")


@pytest.fixture(scope="session")
def c432():
    return load_circuit("c432")


@pytest.fixture(scope="session")
def c499():
    return load_circuit("c499")


def netlist_of(name: str):
    if name not in _NETLISTS:
        _NETLISTS[name] = synthesize(load_circuit(name))
    return _NETLISTS[name]


@pytest.fixture(scope="session")
def c17_netlist():
    return netlist_of("c17")


@pytest.fixture(scope="session")
def b01_netlist():
    return netlist_of("b01")


MUX_SOURCE = """
entity mux2 is
  port ( a, b, sel : in bit; y : out bit );
end mux2;
architecture rtl of mux2 is
begin
  y <= a when sel = '0' else b;
end rtl;
"""

COUNTER_SOURCE = """
entity counter is
  port ( enable, reset, clock : in bit;
         value : out bit_vector(2 downto 0);
         wrap  : out bit );
end counter;
architecture rtl of counter is
  signal count : integer range 0 to 7;
begin
  tick : process (clock, reset)
  begin
    if reset = '1' then
      count <= 0;
      value <= "000";
      wrap  <= '0';
    elsif rising_edge(clock) then
      wrap <= '0';
      if enable = '1' then
        if count = 7 then
          count <= 0;
          wrap  <= '1';
        else
          count <= count + 1;
        end if;
      end if;
      case count is
        when 0 => value <= "000";
        when 1 => value <= "001";
        when 2 => value <= "010";
        when 3 => value <= "011";
        when 4 => value <= "100";
        when 5 => value <= "101";
        when 6 => value <= "110";
        when 7 => value <= "111";
      end case;
    end if;
  end process tick;
end rtl;
"""

PARITY_SOURCE = """
entity parity4 is
  port ( d : in bit_vector(3 downto 0); p : out bit );
end parity4;
architecture rtl of parity4 is
begin
  calc : process (d)
    variable acc : bit;
  begin
    acc := '0';
    for i in 0 to 3 loop
      acc := acc xor d(i);
    end loop;
    p <= acc;
  end process calc;
end rtl;
"""


@pytest.fixture()
def mux_design():
    from repro.hdl import load_design

    return load_design(MUX_SOURCE, "mux2")


@pytest.fixture()
def counter_design():
    from repro.hdl import load_design

    return load_design(COUNTER_SOURCE, "counter")


@pytest.fixture()
def parity_design():
    from repro.hdl import load_design

    return load_design(PARITY_SOURCE, "parity4")
