"""Integration tests: experiment harness and the CLI."""

import pytest

from repro.experiments.context import LabConfig, get_lab
from repro.experiments.report import table1_text, table2_text, to_json
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.cli import main

#: Tiny budgets keep the integration tests fast while driving every
#: stage of the real pipeline.
FAST = LabConfig(
    seed=77,
    random_budget_comb=128,
    random_budget_seq=128,
    equivalence_budget=48,
)


@pytest.fixture(scope="module")
def table1_b01():
    return run_table1(circuits=("b01",), config=FAST, max_vectors=48)


@pytest.fixture(scope="module")
def table2_b01():
    return run_table2(
        circuits=("b01",), config=FAST, max_vectors=48, calibrate=True
    )


def test_table1_has_rows_for_applicable_operators(table1_b01):
    operators = {row.operator for row in table1_b01.rows}
    assert "LOR" in operators
    assert "CR" in operators  # b01 declares constants


def test_table1_rows_well_formed(table1_b01):
    for row in table1_b01.rows:
        assert row.circuit == "b01"
        assert row.mutants > 0
        assert row.test_length > 0
        assert 0.0 <= row.mfc_pct <= 100.0


def test_table1_calibration_interface(table1_b01):
    efficiencies = table1_b01.nlfce_by_operator("b01")
    assert set(efficiencies) == {r.operator for r in table1_b01.rows}
    ranking = table1_b01.operator_ranking("b01")
    assert len(ranking) == len(efficiencies)


def test_table1_deterministic(table1_b01):
    again = run_table1(circuits=("b01",), config=FAST, max_vectors=48)
    assert [
        (r.circuit, r.operator, r.nlfce) for r in again.rows
    ] == [(r.circuit, r.operator, r.nlfce) for r in table1_b01.rows]


def test_table2_has_both_strategies(table2_b01):
    strategies = {row.strategy for row in table2_b01.rows}
    assert strategies == {"random", "test-oriented"}


def test_table2_equal_sample_sizes(table2_b01):
    random_row = table2_b01.row("b01", "random")
    oriented_row = table2_b01.row("b01", "test-oriented")
    assert random_row.selected == oriented_row.selected
    assert random_row.population == oriented_row.population


def test_table2_scores_in_range(table2_b01):
    for row in table2_b01.rows:
        assert 0.0 <= row.ms_pct <= 100.0
        assert row.killed <= row.population - row.equivalents


def test_table2_advantage_interface(table2_b01):
    ms_delta, nlfce_delta = table2_b01.advantage("b01")
    assert isinstance(ms_delta, float)
    assert isinstance(nlfce_delta, float)


def test_lab_caching():
    lab1 = get_lab("b01", FAST)
    lab2 = get_lab("b01", FAST)
    assert lab1 is lab2
    assert lab1.random_vectors is lab2.random_vectors


def test_report_rendering(table1_b01, table2_b01):
    text1 = table1_text(table1_b01)
    assert "Operator Fault Coverage Efficiency" in text1
    assert "b01" in text1
    text2 = table2_text(table2_b01)
    assert "MS%" in text2


def test_json_serialization(table2_b01):
    blob = to_json(table2_b01.rows)
    assert "test-oriented" in blob


# -- CLI --------------------------------------------------------------------


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "b01" in out and "c499" in out


def test_cli_show(capsys):
    assert main(["show", "c17"]) == 0
    out = capsys.readouterr().out
    assert "collapsed" in out
    assert "mutants" in out


def test_cli_synth_bench_output(capsys):
    assert main(["synth", "c17"]) == 0
    out = capsys.readouterr().out
    assert "NAND" in out
    assert "INPUT(i1)" in out


def test_cli_mutants_limit(capsys):
    assert main(["mutants", "b01", "--operator", "LOR", "--limit", "5"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) <= 6


def test_cli_testgen(capsys):
    assert main(["testgen", "c17", "--operator", "LOR", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "vectors kill" in out


def test_cli_testgen_follows_campaign_conventions(capsys):
    # The testgen subcommand is governed by the same CampaignConfig
    # options as the experiment subcommands.
    assert main([
        "testgen", "c17", "--operator", "LOR",
        "--testgen-seed", "3", "--max-vectors", "4",
    ]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert "vectors kill" in out[0]
    assert len(out) <= 5  # the --max-vectors cap held


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_engines_listing(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "interp" in out
    assert "compiled" in out
    assert "default backend" in out


def test_cli_rejects_unknown_engine(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "--circuits", "c17", "--engine", "laser"])


@pytest.mark.parametrize("command", ["table1", "table2"])
def test_cli_engine_selection_is_bit_identical(command, capsys):
    """`--engine compiled` output must equal `--engine interp` exactly."""
    argv = [
        command, "--circuits", "c17", "--random-budget", "128",
        "--equivalence-budget", "32", "--max-vectors", "32",
    ]
    outputs = {}
    for engine in ("interp", "compiled"):
        assert main(argv + ["--engine", engine]) == 0
        outputs[engine] = capsys.readouterr().out
    assert outputs["interp"] == outputs["compiled"]


def test_cli_fault_lanes_is_result_neutral(capsys):
    """Chunk width tunes execution, never the science."""
    argv = [
        "table1", "--circuits", "b01", "--random-budget", "64",
        "--equivalence-budget", "16", "--max-vectors", "16",
    ]
    outputs = {}
    for lanes in ("8", "256"):
        assert main(argv + ["--fault-lanes", lanes]) == 0
        outputs[lanes] = capsys.readouterr().out
    assert outputs["8"] == outputs["256"]
