"""Run journal, coordinator persistence, live progress, bench gating.

Covers the persistence/progress layer of the observability stack:

* :mod:`repro.obs.journal` — append/seq stamping, segment rotation,
  torn-tail recovery, read-only :func:`read_records`;
* :class:`repro.net.CoordinatorCore` with a ``cache_dir`` — the
  acceptance property that a killed-and-restarted coordinator resumes
  ``?since=N`` event streaming from disk with no gaps or duplicate
  ``seq`` numbers;
* :mod:`repro.obs.progress` — envelope folding, count-only result
  summaries, status rendering;
* :mod:`repro.obs.benchdiff` — direction-aware regression detection
  and the trajectory one-path mode;
* the ``repro status`` and ``repro bench-diff`` commands.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.campaign import Campaign, CampaignConfig
from repro.campaign.events import CampaignEvents, RecordingEvents
from repro.cli import main
from repro.grid.units import WorkUnit
from repro.net.coordinator import CoordinatorCore
from repro.obs.benchdiff import (
    DEFAULT_TOLERANCE,
    compare_trajectories,
    diff_rows,
    row_identity,
)
from repro.obs.journal import JOURNAL_VERSION, Journal, read_records
from repro.obs.progress import ProgressTracker, format_status, summarize_result
from tests.test_grid import REDUCED, fresh_labs

CONFIG_DATA = CampaignConfig(**REDUCED).to_dict()


# -- journal mechanics -------------------------------------------------------


def test_journal_appends_stamp_dense_seqs(tmp_path):
    journal = Journal(str(tmp_path / "j"))
    stamped = journal.append({"event": "campaign-start"})
    assert stamped["seq"] == 0
    assert journal.append({"event": "unit-done"})["seq"] == 1
    assert len(journal) == 2
    records = journal.read()
    assert [r["seq"] for r in records] == [0, 1]
    assert [r["event"] for r in records] == ["campaign-start", "unit-done"]
    assert journal.read(since=1) == records[1:]
    journal.close()
    journal.close()  # idempotent


def test_journal_rejects_bad_segment_size(tmp_path):
    with pytest.raises(ValueError):
        Journal(str(tmp_path / "j"), segment_size=0)


def test_journal_rotation_seals_segments(tmp_path):
    directory = tmp_path / "j"
    journal = Journal(str(directory), segment_size=3)
    for i in range(8):
        journal.append({"event": "tick", "i": i})
    names = sorted(os.listdir(directory))
    assert names == [
        "active.jsonl",
        "segment-0000000000.jsonl",
        "segment-0000000003.jsonl",
    ]
    assert [r["seq"] for r in journal.read()] == list(range(8))
    # The read-only reader sees sealed and active records alike.
    assert [r["i"] for r in read_records(str(directory), since=5)] == [5, 6, 7]
    journal.close()
    # Reopening across sealed segments restores the sequence.
    reborn = Journal(str(directory), segment_size=3)
    assert reborn.append({"event": "tick", "i": 8})["seq"] == 8
    reborn.close()


def test_journal_recovers_from_torn_tail(tmp_path):
    directory = str(tmp_path / "j")
    journal = Journal(directory)
    journal.append({"event": "a"})
    journal.append({"event": "b"})
    journal.close()
    active = os.path.join(directory, "active.jsonl")
    with open(active, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "record": {"event": "torn", "se')
    # Readers drop the torn tail...
    assert [r["event"] for r in read_records(directory)] == ["a", "b"]
    # ...and reopening truncates it so the sequence continues cleanly.
    reborn = Journal(directory)
    assert reborn.append({"event": "c"})["seq"] == 2
    assert [(r["seq"], r["event"]) for r in reborn.read()] == [
        (0, "a"), (1, "b"), (2, "c"),
    ]
    with open(active, "r", encoding="utf-8") as handle:
        assert "torn" not in handle.read()
    reborn.close()


def test_journal_reader_stops_at_schema_break(tmp_path):
    directory = str(tmp_path / "j")
    journal = Journal(directory)
    journal.append({"event": "a"})
    journal.close()
    active = os.path.join(directory, "active.jsonl")
    with open(active, "a", encoding="utf-8") as handle:
        handle.write(
            json.dumps({"v": JOURNAL_VERSION + 1, "record": {"event": "x"}})
            + "\n"
        )
        handle.write(
            json.dumps({"v": JOURNAL_VERSION, "record": {"event": "y"}})
            + "\n"
        )
    # Everything after the break is unreachable by construction.
    assert [r["event"] for r in read_records(directory)] == ["a"]


def test_read_records_on_missing_directory_is_empty(tmp_path):
    assert read_records(str(tmp_path / "nope")) == []


# -- coordinator persistence (the acceptance property) -----------------------


def test_coordinator_restart_resumes_event_stream(tmp_path):
    core = CoordinatorCore(cache_dir=str(tmp_path), stream=io.StringIO())
    cid = core.submit_campaign({"config": CONFIG_DATA})["campaign"]
    for i in range(5):
        core.record_campaign_event(cid, {"event": "unit-done", "i": i})
    before = core.campaign_events(cid, 0)
    assert [e["seq"] for e in before] == list(range(len(before)))
    core.close()  # the "kill": drop every handle, lose the process state

    reborn = CoordinatorCore(cache_dir=str(tmp_path), stream=io.StringIO())
    after = reborn.campaign_events(cid, 0)
    seqs = [e["seq"] for e in after]
    assert seqs == list(range(len(seqs))), "no gaps, no duplicates"
    assert after[: len(before)] == before
    # The unfinished campaign is re-queued behind a recovery marker.
    assert after[-1]["event"] == "service-recovered"
    assert reborn.campaign_status(cid)["status"] == "queued"
    assert reborn.campaign_queue.get(timeout=1.0) == cid
    # ``?since=N`` resumes exactly where the dead coordinator stopped.
    assert reborn.campaign_events(cid, len(before)) == after[len(before):]
    # Fresh submissions never collide with recovered ids.
    cid2 = reborn.submit_campaign({"config": CONFIG_DATA})["campaign"]
    assert cid2 != cid
    assert int(cid2[1:]) > int(cid[1:])
    # The recovery marker itself was journaled: a third incarnation
    # streams the identical sequence without re-queuing twice per seq.
    reborn.close()
    third = CoordinatorCore(cache_dir=str(tmp_path), stream=io.StringIO())
    seqs3 = [e["seq"] for e in third.campaign_events(cid, 0)]
    assert seqs3 == sorted(set(seqs3))
    assert seqs3[: len(seqs)] == seqs
    third.close()


def test_coordinator_recovery_keeps_finished_campaigns_parked(tmp_path):
    core = CoordinatorCore(cache_dir=str(tmp_path), stream=io.StringIO())
    cid = core.submit_campaign({"config": CONFIG_DATA})["campaign"]
    core.campaign_queue.get(timeout=1.0)
    core.start_campaign(cid)
    core.finish_campaign(cid, {"ok": True})
    core.close()

    reborn = CoordinatorCore(cache_dir=str(tmp_path), stream=io.StringIO())
    status = reborn.campaign_status(cid)
    assert status["status"] == "done"
    assert status["result"] == {"ok": True}
    assert reborn.campaign_queue.empty(), "done campaigns are not re-run"
    events = [e["event"] for e in reborn.campaign_events(cid, 0)]
    assert events == ["service-queued", "service-running", "service-done"]
    reborn.close()


def test_coordinator_without_cache_dir_still_streams(tmp_path):
    core = CoordinatorCore(stream=io.StringIO())
    cid = core.submit_campaign({"config": CONFIG_DATA})["campaign"]
    core.record_campaign_event(cid, {"event": "unit-done"})
    assert [e["seq"] for e in core.campaign_events(cid, 0)] == [0, 1]
    core.close()


# -- progress folding --------------------------------------------------------


def _unit_envelope(uid="u1", index=0, total=2):
    return {
        "uid": uid, "circuit": "c17", "stage": "kill-analysis",
        "key": "operator:LOR", "index": index, "total": total,
    }


def test_progress_tracker_folds_campaign_stream():
    now = [0.0]
    tracker = ProgressTracker(clock=lambda: now[0])
    unit = _unit_envelope()
    tracker.feed_all([
        {"seq": 0, "event": "campaign-start",
         "circuits": ["c17"], "fingerprint": "f00d"},
        {"seq": 1, "event": "circuit-start", "circuit": "c17"},
        {"seq": 2, "event": "unit-start", "unit": unit},
        {"seq": 3, "event": "unit-result", "unit": unit,
         "summary": {"kind": "fault-chunk", "faults": 10, "detected": 4}},
        {"seq": 4, "event": "unit-done", "unit": unit, "seconds": 2.0},
    ])
    now[0] = 10.0
    snap = tracker.snapshot()
    assert snap["state"] == "running"
    assert snap["fingerprint"] == "f00d"
    assert snap["units"] == {
        "done": 1, "cached": 0, "total_known": 2, "remaining": 1,
    }
    assert snap["coverage"] == {"faults": 10, "detected": 4, "pct": 40.0}
    assert snap["eta_seconds"] == pytest.approx(10.0)
    assert snap["last_seq"] == 4
    assert snap["ignored"] == 0

    other = _unit_envelope(uid="u2", index=1)
    tracker.feed_all([
        {"seq": 5, "event": "unit-result", "unit": other,
         "summary": {"kind": "mutant-part", "killed": 3}},
        {"seq": 6, "event": "unit-done", "unit": other,
         "seconds": 0.0, "cached": True},
        {"seq": 7, "event": "circuit-done", "circuit": "c17"},
        {"seq": 8, "event": "campaign-end", "circuits": 1},
        {"seq": 9, "event": "from-the-future"},
        "not-an-envelope",
    ])
    snap = tracker.snapshot()
    assert snap["state"] == "done"
    assert snap["units"]["done"] == 2
    assert snap["units"]["cached"] == 1
    assert snap["kills"] == {"killed": 3, "survivors": 0}
    assert snap["circuits"] == {"total": 1, "done": 1}
    assert snap["eta_seconds"] is None, "no ETA once the campaign ended"
    assert snap["ignored"] == 2
    assert snap["last_seq"] == 9
    assert snap["seconds"]["units"] == pytest.approx(2.0)

    lines = format_status(snap)
    assert lines[0] == "campaign: done (fingerprint f00d)"
    assert any("2 done (1 cached)" in line for line in lines)
    assert any("3 mutants killed" in line for line in lines)
    assert any("fault coverage: 4/10 (40.0%)" in line for line in lines)
    assert any("last seq 9" in line for line in lines)


def test_summarize_result_ships_counts_only():
    assert summarize_result("fault-chunk", {
        "detection": [None, [1, 0], None, [0, 1]],
    }) == {"kind": "fault-chunk", "faults": 4, "detected": 2}
    assert summarize_result("mutant-part", {
        "killed": [3, 9], "witnesses": {"3": [0, "x"], "9": [2, "y"]},
    }) == {"kind": "mutant-part", "killed": 2}
    # Survivors carry a None kill cycle: swept != killed.
    assert summarize_result("equiv-part", {
        "survivors": [7],
        "kill_cycle": {"1": 0, "2": 4, "7": None},
    }) == {"kind": "equiv-part", "killed": 2, "survivors": 1}
    assert summarize_result("fault-chunk", None) == {"kind": "fault-chunk"}
    summary = summarize_result("mutant-part", {"killed": [1]})
    assert "witnesses" not in summary and "detection" not in summary


def test_recording_events_emit_unit_result_summaries():
    emitted = []
    events = RecordingEvents(emitted.append)
    unit = WorkUnit("c17", "kill-analysis", "operator:LOR", "mutant-part",
                    0, 2, {"mutants": [3, 9]})
    events.on_unit_result(unit, {"killed": [3], "witnesses": {"3": [0, "x"]}})
    [envelope] = emitted
    assert envelope["event"] == "unit-result"
    assert envelope["unit"]["uid"] == unit.uid
    assert envelope["summary"] == {"kind": "mutant-part", "killed": 1}
    assert "witnesses" not in json.dumps(envelope), "counts only on the wire"


def test_grid_dispatch_fires_unit_result_hook(tmp_path):
    seen: list[tuple[str, bool]] = []

    class Capture(CampaignEvents):
        def on_unit_result(self, unit, result):
            seen.append((unit.uid, isinstance(result, dict)))

    config = CampaignConfig(**dict(
        REDUCED, grid="serial", cache_dir=str(tmp_path),
    ))
    fresh_labs()
    Campaign(config, Capture()).run(("c17",))
    assert seen and all(ok for _, ok in seen)
    fresh_uids = sorted(uid for uid, _ in seen)

    # Drop the circuit-level result (keep the unit job store) so the
    # resume replays every cached unit through the same hook.
    for name in os.listdir(tmp_path):
        if name.endswith(".json"):
            os.unlink(tmp_path / name)
    seen.clear()
    fresh_labs()
    Campaign(config, Capture()).run(("c17",), resume=True)
    assert sorted(uid for uid, _ in seen) == fresh_uids


# -- bench regression gating -------------------------------------------------


def _row(**overrides):
    row = {
        "circuit": "c432", "engine": "table", "style": "comb", "cpus": 1,
        "patterns": 64, "seconds_per_pass": 1.0, "patterns_per_sec": 100.0,
    }
    row.update(overrides)
    return row


def test_row_identity_excludes_metrics_and_cpus():
    assert row_identity(_row(cpus=1)) == row_identity(_row(cpus=8))
    assert row_identity(_row(seconds_per_pass=9.0)) == row_identity(_row())
    assert row_identity(_row(circuit="b01")) != row_identity(_row())


def test_diff_rows_is_direction_aware():
    baseline = [_row()]
    # Slower AND lower throughput, both past 50% tolerance.
    report = diff_rows(
        baseline, [_row(seconds_per_pass=2.0, patterns_per_sec=40.0)],
    )
    assert {r["metric"] for r in report["regressions"]} == {
        "seconds_per_pass", "patterns_per_sec",
    }
    ratios = {r["metric"]: r["ratio"] for r in report["regressions"]}
    assert ratios["seconds_per_pass"] == pytest.approx(2.0)
    # Faster in both directions is an improvement, never a regression.
    report = diff_rows(
        baseline, [_row(seconds_per_pass=0.5, patterns_per_sec=200.0)],
    )
    assert report["regressions"] == []
    assert {r["metric"] for r in report["improved"]} == {
        "seconds_per_pass", "patterns_per_sec",
    }


def test_diff_rows_tolerance_boundary():
    baseline = [_row()]
    # Exactly at the boundary is not a regression; just past it is.
    at_edge = diff_rows(baseline, [_row(seconds_per_pass=1.5)])
    assert at_edge["regressions"] == []
    past_edge = diff_rows(baseline, [_row(seconds_per_pass=1.51)])
    assert len(past_edge["regressions"]) == 1
    # A tighter tolerance flips the verdict.
    tight = diff_rows(baseline, [_row(seconds_per_pass=1.2)], tolerance=0.1)
    assert len(tight["regressions"]) == 1
    assert DEFAULT_TOLERANCE == 0.5


def test_diff_rows_skips_cpu_mismatch_and_counts_unmatched():
    baseline = [_row(), _row(circuit="b01")]
    fresh = [
        _row(cpus=8, seconds_per_pass=99.0),  # would regress; skipped
        _row(circuit="s27"),                  # unmatched on both sides
    ]
    report = diff_rows(baseline, fresh)
    assert report["regressions"] == []
    assert len(report["skipped"]) == 1
    assert "cpus differ" in report["skipped"][0]["reason"]
    assert report["unmatched"] == 2
    # Corrupt metric values are skipped, not fatal.
    report = diff_rows([_row()], [_row(seconds_per_pass="fast")])
    assert any("non-numeric" in s["reason"] for s in report["skipped"])


def _write_trajectory(path, runs):
    path.write_text(json.dumps({
        "benchmark": "bench_atpg",
        "runs": [
            {"sequence": i + 1, "rows": rows}
            for i, rows in enumerate(runs)
        ],
    }), encoding="utf-8")


def test_compare_trajectories_one_path_mode(tmp_path):
    path = tmp_path / "BENCH_atpg.json"
    _write_trajectory(path, [[_row()]])
    report = compare_trajectories(str(path))
    assert report["regressions"] == []
    assert "only 1 run(s)" in report["note"]

    _write_trajectory(path, [[_row()], [_row(seconds_per_pass=5.0)]])
    report = compare_trajectories(str(path))
    assert len(report["regressions"]) == 1
    assert "note" not in report


def test_compare_trajectories_two_paths(tmp_path):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    _write_trajectory(base, [[_row()]])
    _write_trajectory(fresh, [[_row(patterns_per_sec=10.0)]])
    report = compare_trajectories(str(fresh), str(base))
    assert [r["metric"] for r in report["regressions"]] == [
        "patterns_per_sec",
    ]
    with pytest.raises(ValueError):
        bad = tmp_path / "bad.json"
        bad.write_text("[]", encoding="utf-8")
        compare_trajectories(str(bad))


# -- the status and bench-diff commands --------------------------------------


def _seed_cache_journal(root, cid="c1"):
    journal = Journal(str(root / "service" / cid / "journal"))
    journal.append({
        "event": "campaign-start", "circuits": ["c17"],
        "fingerprint": "cafe",
    })
    unit = _unit_envelope(total=1)
    journal.append({"event": "unit-result", "unit": unit,
                    "summary": {"kind": "mutant-part", "killed": 2}})
    journal.append({"event": "unit-done", "unit": unit, "seconds": 1.5})
    journal.append({"event": "campaign-end", "circuits": 1})
    journal.close()


def test_cli_status_reads_cache_root_and_journal_dir(tmp_path, capsys):
    _seed_cache_journal(tmp_path)
    assert main(["status", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "campaign c1:" in out
    assert "campaign: done (fingerprint cafe)" in out
    assert "2 mutants killed" in out
    # Pointing at the journal directory itself works too.
    journal_dir = tmp_path / "service" / "c1" / "journal"
    assert main(["status", str(journal_dir), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["c1"]["state"] == "done"
    assert report["c1"]["kills"]["killed"] == 2
    assert report["c1"]["last_seq"] == 3


def test_cli_status_filters_and_handles_empty(tmp_path, capsys):
    _seed_cache_journal(tmp_path, cid="c1")
    _seed_cache_journal(tmp_path, cid="c2")
    assert main(["status", str(tmp_path), "--campaign", "c2"]) == 0
    out = capsys.readouterr().out
    assert "campaign c2:" in out and "campaign c1:" not in out
    assert main(["status", str(tmp_path), "--campaign", "c9"]) == 1
    assert "no campaigns found" in capsys.readouterr().out


def test_cli_bench_diff_gates_on_regressions(tmp_path, capsys):
    path = tmp_path / "BENCH_atpg.json"
    _write_trajectory(path, [[_row()], [_row(seconds_per_pass=5.0)]])
    assert main(["bench-diff", str(path)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION seconds_per_pass: 1 -> 5 (5.00x)" in out
    assert "bench-diff: 1 regression(s)" in out

    _write_trajectory(path, [[_row()], [_row(seconds_per_pass=0.9)]])
    assert main(["bench-diff", str(path)]) == 0
    out = capsys.readouterr().out
    assert "improved" in out

    # Loose tolerance waves the same slowdown through.
    _write_trajectory(path, [[_row()], [_row(seconds_per_pass=5.0)]])
    assert main(["bench-diff", str(path), "--tolerance", "9.0"]) == 0


def test_cli_bench_diff_single_run_note(tmp_path, capsys):
    path = tmp_path / "BENCH_atpg.json"
    _write_trajectory(path, [[_row()]])
    assert main(["bench-diff", str(path)]) == 0
    assert "nothing to diff" in capsys.readouterr().out
