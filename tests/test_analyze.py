"""Tests for repro.analyze: testability, pruning, prescreen, sampling.

Covers the SCOAP/constant/observability analyses on hand-built
netlists, the structural netlist linter, the soundness and
bit-identity contracts of untestable-fault pruning (including a full
campaign differential across engines and the process grid), the dead
process pre-screen, and the testability sampling strategy.
"""

import json

import pytest

from repro.analyze import (
    CHECKS,
    INF,
    analyze_testability,
    constant_nets,
    dead_processes,
    lint_netlist,
    live_signals,
    observable_nets,
    prescreen_mutants,
    split_untestable,
    untestable_reason,
)
from repro.analyze.prescreen import POSSIBLY_EQUIVALENT
from repro.analyze.prune import NEVER_ACTIVATED, PROPAGATION_BLOCKED
from repro.analyze.scoap import eval_ternary
from repro.campaign import Campaign, CampaignConfig
from repro.cli import main
from repro.errors import SamplingError
from repro.experiments.context import CircuitLab, LabConfig
from repro.fault.model import StuckAtFault
from repro.fault.models.seu import SeuFault
from repro.fault.models.transition import TransitionFault
from repro.hdl import load_design
from repro.mutation.generator import generate_mutants
from repro.mutation.mutant import Mutant
from repro.netlist.cells import GateType
from repro.netlist.netlist import DFF, Gate, Net, Netlist
from repro.sampling import get_strategy
from repro.sampling import TestabilitySampling as ScoapSampling

#: Tiny budgets: the full pipeline, fast (same shape as test_campaign).
FAST = dict(
    seed=77,
    random_budget_comb=96,
    random_budget_seq=96,
    equivalence_budget=32,
    max_vectors=24,
)


def raw_netlist(nets, gates=(), dffs=(), inputs=(), outputs=(), name="t"):
    """Hand-build a netlist without the folding builder.

    ``gates`` is [(GateType, [input nets], output net)], ``dffs`` is
    [(d, q, reset_value)].  No validation — the structural linter tests
    need broken netlists.
    """
    netlist = Netlist(name)
    netlist.nets = [Net(i, f"n{i}") for i in range(nets)]
    netlist.gates = [
        Gate(gid, t, list(ins), out)
        for gid, (t, ins, out) in enumerate(gates)
    ]
    netlist.dffs = [
        DFF(fid, d, q, rv, name=f"ff{fid}")
        for fid, (d, q, rv) in enumerate(dffs)
    ]
    netlist.input_ports = [(f"n{n}", [n]) for n in inputs]
    netlist.output_ports = [(f"o{n}", [n]) for n in outputs]
    return netlist


# -- ternary evaluation -------------------------------------------------------


def test_eval_ternary_controlling_values_beat_x():
    assert eval_ternary(GateType.AND, [0, None]) == 0
    assert eval_ternary(GateType.NAND, [0, None]) == 1
    assert eval_ternary(GateType.OR, [1, None]) == 1
    assert eval_ternary(GateType.NOR, [1, None]) == 0


def test_eval_ternary_x_propagates():
    assert eval_ternary(GateType.AND, [1, None]) is None
    assert eval_ternary(GateType.XOR, [1, None]) is None
    assert eval_ternary(GateType.NOT, [None]) is None


def test_eval_ternary_definite_values():
    assert eval_ternary(GateType.XOR, [1, 1]) == 0
    assert eval_ternary(GateType.XNOR, [1, 1]) == 1
    assert eval_ternary(GateType.NOT, [0]) == 1
    assert eval_ternary(GateType.CONST0, []) == 0
    assert eval_ternary(GateType.CONST1, []) == 1


# -- constant propagation -----------------------------------------------------


def test_constant_nets_combinational():
    # n1 = const0; n2 = AND(a, n1) == 0; n3 = const1; n4 = OR(a, n3) == 1
    netlist = raw_netlist(
        5,
        gates=[
            (GateType.CONST0, [], 1),
            (GateType.AND, [0, 1], 2),
            (GateType.CONST1, [], 3),
            (GateType.OR, [0, 3], 4),
        ],
        inputs=(0,),
        outputs=(2, 4),
    )
    assert constant_nets(netlist) == {1: 0, 2: 0, 3: 1, 4: 1}


def test_constant_nets_sequential_reset_stable():
    # q resets to 0 and d = AND(a, q): q can never leave 0.
    netlist = raw_netlist(
        3,
        gates=[(GateType.AND, [0, 1], 2)],
        dffs=[(2, 1, 0)],
        inputs=(0,),
        outputs=(1,),
    )
    assert constant_nets(netlist) == {1: 0, 2: 0}


def test_constant_nets_toggling_dff_is_demoted():
    # d = NOT q: the reset value does not persist, so nothing is constant.
    netlist = raw_netlist(
        2,
        gates=[(GateType.NOT, [0], 1)],
        dffs=[(1, 0, 0)],
        outputs=(0,),
    )
    assert constant_nets(netlist) == {}


# -- observability ------------------------------------------------------------


def test_observable_nets_reach_back_from_outputs():
    # n1 = NOT(a) -> output; n2 = NOT(a) cone that drives nothing.
    netlist = raw_netlist(
        3,
        gates=[(GateType.NOT, [0], 1), (GateType.AND, [0, 1], 2)],
        inputs=(0,),
        outputs=(1,),
    )
    observable = observable_nets(netlist)
    assert 0 in observable and 1 in observable
    assert 2 not in observable


def test_observable_nets_cross_dff_boundaries():
    netlist = raw_netlist(
        3,
        gates=[(GateType.NOT, [0], 1)],
        dffs=[(1, 2, 0)],
        inputs=(0,),
        outputs=(2,),
    )
    assert observable_nets(netlist) == frozenset({0, 1, 2})


# -- SCOAP --------------------------------------------------------------------


def test_scoap_and_gate_costs():
    netlist = raw_netlist(
        3,
        gates=[(GateType.AND, [0, 1], 2)],
        inputs=(0, 1),
        outputs=(2,),
    )
    analysis = analyze_testability(netlist)
    assert analysis.cc0[0] == analysis.cc1[0] == 1     # primary input
    assert analysis.cc0[2] == 2                        # one controlling 0
    assert analysis.cc1[2] == 3                        # both inputs at 1
    assert analysis.co[2] == 0                         # primary output
    assert analysis.co[0] == 2                         # hold n1=1, +1 depth
    assert analysis.difficulty(2) == 2


def test_scoap_constants_saturate():
    netlist = raw_netlist(
        1, gates=[(GateType.CONST0, [], 0)], outputs=(0,)
    )
    analysis = analyze_testability(netlist)
    assert analysis.cc0[0] == 0
    # Unreachable costs are left implicit (every lookup defaults INF).
    assert analysis.cc1.get(0, INF) == INF
    assert analysis.difficulty(0) == 0


def test_scoap_crosses_dff_boundaries():
    netlist = raw_netlist(
        2,
        dffs=[(0, 1, 0)],
        inputs=(0,),
        outputs=(1,),
    )
    analysis = analyze_testability(netlist)
    assert analysis.cc0[1] == analysis.cc1[1] == 2     # CC(d) + 1
    assert analysis.co[0] == 1                         # CO(q) + 1


def test_summary_is_json_ready(b01_netlist):
    summary = analyze_testability(b01_netlist).summary()
    assert summary["nets"] == len(b01_netlist.nets)
    assert set(summary) == {
        "nets", "constant_nets", "unobservable_nets",
        "max_difficulty", "mean_difficulty",
    }
    json.dumps(summary)


# -- structural netlist linter ------------------------------------------------


def test_lint_netlist_clean_circuit(c17_netlist):
    assert lint_netlist(c17_netlist) == []


def test_lint_netlist_multi_driven_and_undriven():
    # Two drivers on n2; n3 is read by the output port but never driven.
    netlist = raw_netlist(
        4,
        gates=[(GateType.NOT, [0], 2), (GateType.NOT, [1], 2)],
        inputs=(0, 1),
        outputs=(2, 3),
    )
    checks = [f.check for f in lint_netlist(netlist)]
    assert "multi-driven-net" in checks
    assert "undriven-net" in checks


def test_lint_netlist_combinational_cycle():
    netlist = raw_netlist(
        3,
        gates=[(GateType.AND, [0, 2], 1), (GateType.NOT, [1], 2)],
        inputs=(0,),
        outputs=(1,),
    )
    findings = [
        f for f in lint_netlist(netlist) if f.check == "combinational-cycle"
    ]
    assert {f.net for f in findings} == {"n1", "n2"}


def test_lint_netlist_dangling_and_dead_logic():
    netlist = raw_netlist(
        4,
        gates=[(GateType.NOT, [0], 1), (GateType.NOT, [0], 2),
               (GateType.NOT, [2], 3)],
        inputs=(0,),
        outputs=(1,),
    )
    findings = lint_netlist(netlist)
    dangling = [f.net for f in findings if f.check == "dangling-gate"]
    dead = [f.net for f in findings if f.check == "unobservable-logic"]
    assert dangling == ["n3"]
    assert dead == ["n2", "n3"]


def test_lint_netlist_unused_input():
    netlist = raw_netlist(
        3,
        gates=[(GateType.NOT, [0], 2)],
        inputs=(0, 1),
        outputs=(2,),
    )
    findings = lint_netlist(netlist)
    assert [f.net for f in findings if f.check == "unused-input"] == ["n1"]


def test_lint_netlist_report_order_is_severity_order():
    # One netlist with several defect classes: report follows CHECKS.
    netlist = raw_netlist(
        5,
        gates=[(GateType.NOT, [0], 2), (GateType.NOT, [1], 2),
               (GateType.NOT, [0], 3)],
        inputs=(0, 1, 4),
        outputs=(2,),
    )
    findings = lint_netlist(netlist)
    ranks = [CHECKS.index(f.check) for f in findings]
    assert ranks == sorted(ranks)
    assert len(findings) >= 3


# -- untestable-fault pruning -------------------------------------------------


def _prune_playground():
    """a -> AND with const0 (n2 == 0, observable); NOT(a) -> n3 (dead)."""
    netlist = raw_netlist(
        4,
        gates=[
            (GateType.CONST0, [], 1),
            (GateType.AND, [0, 1], 2),
            (GateType.NOT, [0], 3),
        ],
        inputs=(0,),
        outputs=(2,),
    )
    return netlist, analyze_testability(netlist)


def test_stuck_at_polarity_matters():
    netlist, analysis = _prune_playground()
    # n2 is constant 0: s-a-0 never activates, s-a-1 does (and n2 is
    # observable, being the output) so it must be kept.
    assert untestable_reason(
        StuckAtFault(net=2, stuck=0), netlist, analysis
    ) == NEVER_ACTIVATED
    assert untestable_reason(
        StuckAtFault(net=2, stuck=1), netlist, analysis
    ) is None


def test_stuck_at_unobservable_is_blocked():
    netlist, analysis = _prune_playground()
    for stuck in (0, 1):
        assert untestable_reason(
            StuckAtFault(net=3, stuck=stuck), netlist, analysis
        ) == PROPAGATION_BLOCKED


def test_branch_fault_entry_is_the_gate_output():
    netlist, analysis = _prune_playground()
    # The stem of input a reaches the output through the AND gate, but
    # the branch into the dead NOT (gate 2) enters the circuit at n3.
    assert untestable_reason(
        StuckAtFault(net=0, stuck=1), netlist, analysis
    ) is None
    assert untestable_reason(
        StuckAtFault(net=0, stuck=1, gate=2, pin=0), netlist, analysis
    ) == PROPAGATION_BLOCKED


def test_transition_fault_pruned_at_either_polarity():
    netlist, analysis = _prune_playground()
    # n2 constant (either polarity blocks a transition), n0 free.
    assert untestable_reason(
        TransitionFault(net=2, rise=True), netlist, analysis
    ) == NEVER_ACTIVATED
    assert untestable_reason(
        TransitionFault(net=2, rise=False), netlist, analysis
    ) == NEVER_ACTIVATED
    assert untestable_reason(
        TransitionFault(net=0, rise=True), netlist, analysis
    ) is None
    assert untestable_reason(
        TransitionFault(net=3, rise=True), netlist, analysis
    ) == PROPAGATION_BLOCKED


def test_seu_never_pruned_by_constancy():
    netlist, analysis = _prune_playground()
    # Flipping a constant net is still a state change: only
    # unobservability may prune an SEU.
    assert untestable_reason(
        SeuFault(net=2, cycle=0), netlist, analysis
    ) is None
    assert untestable_reason(
        SeuFault(net=3, cycle=0), netlist, analysis
    ) == PROPAGATION_BLOCKED


def test_unknown_fault_types_are_never_pruned():
    netlist, analysis = _prune_playground()
    assert untestable_reason(object(), netlist, analysis) is None


def test_split_untestable_preserves_order():
    netlist, _ = _prune_playground()
    faults = [
        StuckAtFault(net=2, stuck=0),   # pruned
        StuckAtFault(net=2, stuck=1),   # kept
        StuckAtFault(net=3, stuck=0),   # pruned
        StuckAtFault(net=0, stuck=0),   # kept
    ]
    testable, pruned = split_untestable(netlist, faults)
    assert testable == [faults[1], faults[3]]
    assert [f for f, _ in pruned] == [faults[0], faults[2]]
    assert [r for _, r in pruned] == [NEVER_ACTIVATED, PROPAGATION_BLOCKED]


def test_b01_pruned_faults_are_empirically_undetected():
    """The soundness check: simulate the pruned faults anyway."""
    lab = CircuitLab(
        "b01",
        LabConfig(seed=7, random_budget_seq=128, prune_untestable=True),
    )
    assert lab.pruned_faults, "b01 is expected to have untestable faults"
    victims = [fault for fault, _ in lab.pruned_faults]
    result = lab.fault_model.simulate(
        lab.netlist, lab.random_vectors, victims,
        lab.config.fault_lanes, engine=lab.config.engine,
    )
    assert all(d is None for d in result.detection)


def test_pruned_lab_results_are_bit_identical():
    config = dict(seed=7, random_budget_comb=96, random_budget_seq=96)
    off = CircuitLab("b01", LabConfig(**config))
    on = CircuitLab("b01", LabConfig(**config, prune_untestable=True))
    assert len(on.sim_faults) < len(on.faults)
    base_off, base_on = off.random_baseline, on.random_baseline
    assert base_on.detection == base_off.detection
    assert base_on.num_patterns == base_off.num_patterns
    assert len(base_on.faults) == len(base_off.faults)


@pytest.mark.parametrize("engine", ("interp", "compiled", "vector"))
def test_prune_campaign_payloads_bit_identical(engine):
    base = dict(FAST, engine=engine, strategies=("random",))
    off = Campaign(CampaignConfig(**base)).run(("b01",))
    on = Campaign(
        CampaignConfig(**base, prune_untestable=True)
    ).run(("b01",))
    assert [c.to_dict() for c in on.circuits] == [
        c.to_dict() for c in off.circuits
    ]


def test_prune_differential_c432_and_grid():
    """The ISSUE's differential: c432 + b01, serial off vs process-grid on."""
    base = dict(FAST, operators=("LOR",), strategies=())
    off = Campaign(CampaignConfig(**base)).run(("c432", "b01"))
    on = Campaign(
        CampaignConfig(
            **base, prune_untestable=True, grid="process", grid_workers=2,
        )
    ).run(("c432", "b01"))
    assert [c.to_dict() for c in on.circuits] == [
        c.to_dict() for c in off.circuits
    ]


# -- mutant pre-screen --------------------------------------------------------

DEAD_LOGIC_SOURCE = """
entity deadbox is
  port ( a, b : in bit; y : out bit );
end deadbox;
architecture rtl of deadbox is
  signal ghost : bit;
begin
  main : process (a, b)
  begin
    y <= a and b;
  end process main;
  spare : process (a, b)
  begin
    ghost <= a or b;
  end process spare;
end rtl;
"""


@pytest.fixture()
def deadbox_design():
    return load_design(DEAD_LOGIC_SOURCE, "deadbox")


def test_live_signals_exclude_dead_cone(deadbox_design):
    live = live_signals(deadbox_design)
    assert {"a", "b", "y"} <= live
    assert "ghost" not in live


def test_dead_processes_found(deadbox_design):
    assert dead_processes(deadbox_design) == frozenset({"spare"})


def test_prescreen_tags_only_dead_process_mutants(deadbox_design):
    mutants = generate_mutants(deadbox_design)
    tags = prescreen_mutants(deadbox_design, mutants)
    dead_mids = {m.mid for m in mutants if m.process_label == "spare"}
    live_mids = {m.mid for m in mutants if m.process_label != "spare"}
    assert dead_mids, "expected mutants inside the dead process"
    assert set(tags) == dead_mids
    assert all(tag == POSSIBLY_EQUIVALENT for tag in tags.values())
    assert not (set(tags) & live_mids)


def test_prescreen_empty_when_nothing_is_dead(mux_design):
    assert prescreen_mutants(mux_design, generate_mutants(mux_design)) == {}


def test_prescreen_campaign_marks_possibly_equivalent():
    off = Campaign(CampaignConfig(**FAST)).run(("b02",))
    on = Campaign(
        CampaignConfig(**FAST, static_prescreen=True)
    ).run(("b02",))
    # b02 has no dead processes, so the pre-screen must change nothing
    # except the fingerprint.
    assert [c.to_dict() for c in on.circuits] == [
        c.to_dict() for c in off.circuits
    ]


# -- testability sampling strategy --------------------------------------------


def _toy_mutants(count):
    return [
        Mutant(
            mid=i, operator="LOR", site_nid=0, replacement=None,
            description=f"m{i}", process_label="p0",
        )
        for i in range(count)
    ]


def test_testability_strategy_registered():
    assert get_strategy("testability") is ScoapSampling


def test_testability_fraction_validated():
    with pytest.raises(SamplingError):
        ScoapSampling(fraction=0.0)
    with pytest.raises(SamplingError):
        ScoapSampling(fraction=1.5)


def test_testability_uniform_fallback_is_deterministic():
    mutants = _toy_mutants(40)
    strategy = ScoapSampling(fraction=0.25)
    first = strategy.sample(mutants, 11)
    second = strategy.sample(mutants, 11)
    assert first == second
    assert len(first) == strategy.sample_size(40) == 10
    assert [m.mid for m in first] == sorted(m.mid for m in first)
    assert strategy.sample(mutants, 12) != first


def test_testability_unknown_circuit_falls_back_to_uniform():
    mutants = _toy_mutants(20)
    strategy = ScoapSampling(fraction=0.5)
    with_label = strategy.sample(mutants, 3, "no-such-circuit")
    assert len(with_label) == 10


def test_testability_weighted_draw_on_real_circuit():
    lab = CircuitLab("b01", LabConfig(seed=7, equivalence_budget=16))
    mutants = lab.all_mutants
    strategy = ScoapSampling(fraction=0.3)
    first = strategy.sample(mutants, 7, "b01")
    second = strategy.sample(mutants, 7, "b01")
    assert first == second
    assert len(first) == strategy.sample_size(len(mutants))
    assert set(m.mid for m in first) <= {m.mid for m in mutants}
    weights = strategy._weights(mutants, "b01")
    assert set(weights) == {m.mid for m in mutants}
    assert all(w > 0 for w in weights.values())


def test_testability_in_campaign():
    result = Campaign(
        CampaignConfig(**FAST, strategies=("testability",))
    ).run(("b01",))
    (circuit,) = result.circuits
    assert circuit.strategy("testability").strategy == "testability"


# -- CLI ----------------------------------------------------------------------


def test_cli_analyze_json_schema(capsys):
    assert main(["analyze", "c17", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["circuit"] == "c17"
    assert set(report) == {
        "circuit", "stats", "testability", "findings", "prune",
    }
    for model, entry in report["prune"].items():
        assert set(entry) == {"faults", "pruned", "reasons"}
        assert entry["pruned"] == sum(entry["reasons"].values())


def test_cli_analyze_reports_pruning_on_b01(capsys):
    assert main(["analyze", "b01", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["prune"]["stuck-at"]["pruned"] > 0
