"""Fault-model subsystem tests: registry, models, triage, replay.

The load-bearing properties:

* the registry mirrors ``repro.engine``'s semantics exactly
  (idempotent re-registration, ``replace=True``, helpful unknown-name
  errors),
* ``stuck-at`` is a pinned reference — same faults, same detections,
  same config fingerprints as before the subsystem existed,
* ``transition`` and ``seu`` are deterministic and bit-identical
  across engines and across fault-list shardings (the property the
  grid relies on), and
* survivor triage and kill witnesses round-trip through the campaign
  result JSON into ``repro replay``.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.campaign import Campaign, CampaignConfig
from repro.campaign.result import CircuitResult, StrategyRow
from repro.errors import ConfigError, FaultError
from repro.fault import collapse_faults, simulate_faults, simulate_stuck_at
from repro.fault.models import (
    DEFAULT_FAULT_MODEL,
    FAULT_MODELS,
    FaultModel,
    SeuFault,
    SeuModel,
    StuckAtModel,
    TransitionFault,
    TransitionModel,
    build_fault_model,
    fault_model_names,
    get_fault_model,
    register_fault_model,
)
from repro.hdl import load_design
from repro.mutation import MutationEngine, generate_mutants
from repro.mutation.execution import (
    NEVER_ACTIVATED,
    POSSIBLY_EQUIVALENT,
    PROPAGATION_BLOCKED,
    TRIAGE_CATEGORIES,
)
from repro.util import rng_stream
from tests.conftest import netlist_of

ENGINES = ("interp", "compiled", "vector")


def stimuli_for(netlist, count: int, seed_name: str) -> list[int]:
    rng = rng_stream(11, seed_name)
    width = len(netlist.input_bits)
    return [rng.getrandbits(width) for _ in range(count)]


# -- registry ----------------------------------------------------------------


def test_registry_lists_all_three_models():
    assert fault_model_names() == ("seu", "stuck-at", "transition")
    assert DEFAULT_FAULT_MODEL == "stuck-at"


def test_unknown_model_error_lists_registered():
    with pytest.raises(FaultError) as excinfo:
        get_fault_model("bridging")
    message = str(excinfo.value)
    assert "bridging" in message
    for name in fault_model_names():
        assert name in message


def test_reregistering_same_class_is_idempotent():
    before = dict(FAULT_MODELS)
    register_fault_model(StuckAtModel)
    assert FAULT_MODELS == before


def test_conflicting_registration_requires_replace():
    class Imposter(FaultModel):
        name = "stuck-at"

    with pytest.raises(FaultError) as excinfo:
        register_fault_model(Imposter)
    assert "stuck-at" in str(excinfo.value)
    try:
        register_fault_model(Imposter, replace=True)
        assert get_fault_model("stuck-at") is Imposter
    finally:
        register_fault_model(StuckAtModel, replace=True)
    assert get_fault_model("stuck-at") is StuckAtModel


def test_registering_unnamed_model_rejected():
    class Nameless(FaultModel):
        name = ""

    with pytest.raises(FaultError):
        register_fault_model(Nameless)


def test_build_fault_model_variants():
    assert isinstance(build_fault_model(None), StuckAtModel)
    assert isinstance(build_fault_model("transition"), TransitionModel)
    seu = build_fault_model("seu", {"cycles": 3, "stride": 5})
    assert seu.cycles == 3 and seu.stride == 5
    instance = TransitionModel()
    assert build_fault_model(instance) is instance
    with pytest.raises(FaultError):
        build_fault_model(instance, {"cycles": 3})
    with pytest.raises(FaultError):
        build_fault_model("stuck-at", {"bogus_knob": 1})
    with pytest.raises(FaultError):
        build_fault_model("seu", {"cycles": 0})


# -- config integration ------------------------------------------------------


def test_config_rejects_unknown_fault_model():
    with pytest.raises(ConfigError) as excinfo:
        CampaignConfig(fault_model="bridging")
    message = str(excinfo.value)
    assert "bridging" in message and "stuck-at" in message


def test_config_rejects_bad_knobs():
    with pytest.raises(ConfigError):
        CampaignConfig(fault_model="seu", fault_model_knobs={"cycles": -1})


def test_stuck_at_fingerprint_is_byte_identical():
    """The default config hashes exactly as it did before these fields.

    Reconstructed by hand: the fingerprint payload of a default config
    must not contain the fault-model keys (nor the later
    static-analysis knobs) at all, so every cache and job-store entry
    written by older versions still hits.
    """
    import hashlib

    from repro.campaign.config import EXECUTION_FIELDS

    config = CampaignConfig()
    payload = {
        key: value
        for key, value in config.to_dict().items()
        if key not in EXECUTION_FIELDS
        and key not in ("fault_model", "fault_model_knobs",
                        "prune_untestable", "static_prescreen")
    }
    canonical = json.dumps(payload, sort_keys=True)
    expected = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
    assert config.fingerprint() == expected
    assert (
        config.replace(fault_model="stuck-at").fingerprint()
        == config.fingerprint()
    )
    # The new knobs fingerprint only when enabled.
    assert config.replace(prune_untestable=True).fingerprint() != (
        config.fingerprint()
    )
    assert config.replace(static_prescreen=True).fingerprint() != (
        config.fingerprint()
    )


def test_non_default_model_changes_fingerprint():
    config = CampaignConfig()
    assert config.replace(
        fault_model="transition"
    ).fingerprint() != config.fingerprint()
    assert config.replace(
        fault_model="seu", fault_model_knobs={"cycles": 4}
    ).fingerprint() != config.replace(fault_model="seu").fingerprint()


# -- stuck-at: the pinned reference ------------------------------------------


@pytest.mark.parametrize("circuit", ["c17", "b01"])
def test_stuck_at_model_matches_legacy_runner(circuit):
    netlist = netlist_of(circuit)
    stimuli = stimuli_for(netlist, 48, f"pin-{circuit}")
    model = StuckAtModel()
    assert [
        (f.net, f.stuck, f.gate) for f in model.collapse(netlist)
    ] == [(f.net, f.stuck, f.gate) for f in collapse_faults(netlist)]
    legacy = simulate_stuck_at(netlist, stimuli, lanes=16)
    for engine in ENGINES:
        got = model.simulate(netlist, stimuli, lanes=16, engine=engine)
        assert got.detection == legacy.detection, engine


# -- transition / seu: determinism and engine invariance ---------------------


@pytest.mark.parametrize("model_name", ["transition", "seu"])
@pytest.mark.parametrize("circuit", ["c17", "b01"])
def test_model_bit_identical_across_engines(model_name, circuit):
    netlist = netlist_of(circuit)
    stimuli = stimuli_for(netlist, 40, f"xe-{model_name}-{circuit}")
    reference = None
    for engine in ENGINES:
        result = simulate_faults(
            netlist, stimuli, lanes=9, engine=engine, model=model_name
        )
        if reference is None:
            reference = result.detection
        else:
            assert result.detection == reference, engine
    # Repeat-run determinism on the same engine.
    again = simulate_faults(
        netlist, stimuli, lanes=9, engine=ENGINES[0], model=model_name
    )
    assert again.detection == reference


@pytest.mark.parametrize("model_name", ["transition", "seu"])
def test_model_shard_invariance(model_name):
    """Detections of a fault-list slice match the full run's slice.

    This is the exact property the grid's fault-chunk units rely on:
    the universe is a pure function of the netlist (never the
    stimuli), and per-fault detections are independent.
    """
    netlist = netlist_of("b01")
    stimuli = stimuli_for(netlist, 32, f"shard-{model_name}")
    model = build_fault_model(model_name)
    faults = model.collapse(netlist)
    full = model.simulate(netlist, stimuli, faults, lanes=8).detection
    for shard in (1, 3, len(faults)):
        merged = []
        for start in range(0, len(faults), shard):
            chunk = faults[start:start + shard]
            merged.extend(
                model.simulate(netlist, stimuli, chunk, lanes=8).detection
            )
        assert merged == full, shard


def test_transition_universe_and_collapse():
    netlist = netlist_of("c17")
    model = TransitionModel()
    universe = model.generate(netlist)
    assert all(isinstance(f, TransitionFault) for f in universe)
    assert {f.rise for f in universe} == {False, True}
    collapsed = model.collapse(netlist)
    assert 0 < len(collapsed) <= len(universe)
    assert collapsed == sorted(collapsed, key=lambda f: (f.net, f.rise))


def test_seu_universe_is_stimulus_independent():
    netlist = netlist_of("b01")
    model = SeuModel(cycles=3, stride=4)
    faults = model.collapse(netlist)
    assert all(isinstance(f, SeuFault) for f in faults)
    assert {f.cycle for f in faults} == {0, 4, 8}
    # DFF state bits only, on a sequential circuit.
    q_nets = {dff.q for dff in netlist.dffs}
    assert {f.net for f in faults} == q_nets


def test_seu_faults_beyond_stimulus_length_undetected():
    netlist = netlist_of("b01")
    model = SeuModel(cycles=4, stride=8)
    stimuli = stimuli_for(netlist, 9, "short")  # cycles 16, 24 never run
    result = model.simulate(netlist, stimuli, lanes=4)
    for fault, detection in zip(result.faults, result.detection):
        if fault.cycle >= len(stimuli):
            assert detection is None


# -- campaign: grid and jobs stay bit-identical ------------------------------

FAST = dict(
    seed=77,
    random_budget_comb=64,
    random_budget_seq=64,
    equivalence_budget=24,
    max_vectors=12,
    operators=(),
    strategies=("random",),
)


@pytest.mark.parametrize("model_name", ["transition", "seu"])
def test_campaign_grid_matches_serial(model_name, tmp_path):
    serial = Campaign(
        CampaignConfig(fault_model=model_name, **FAST)
    ).run(("b01",))
    grid = Campaign(
        CampaignConfig(
            fault_model=model_name, grid="thread", grid_workers=2,
            grid_shard=3, cache_dir=str(tmp_path), **FAST,
        )
    ).run(("b01",))
    assert serial.circuits[0].to_dict() == grid.circuits[0].to_dict()


def test_campaign_jobs_matches_serial():
    serial = Campaign(
        CampaignConfig(fault_model="transition", **FAST)
    ).run(("c17",))
    jobbed = Campaign(
        CampaignConfig(fault_model="transition", jobs=2, **FAST)
    ).run(("c17",))
    assert serial.circuits[0].to_dict() == jobbed.circuits[0].to_dict()


# -- survivor triage ---------------------------------------------------------

GATED = """
entity gated is
  port ( a, b : in bit; clock, reset : in bit; y : out bit );
end gated;
architecture rtl of gated is
  signal t : bit;
begin
  process (clock, reset)
  begin
    if reset = '1' then
      y <= '0';
      t <= '0';
    elsif rising_edge(clock) then
      t <= a;
      if a = '1' then
        y <= b;
      else
        y <= '0';
      end if;
    end if;
  end process;
end rtl;
"""


def test_triage_never_activated_on_dormant_branch():
    """With ``a`` pinned low, mutants inside the taken-only-when-a
    branch never perturb the state trace."""
    design = load_design(GATED, "gated")
    engine = MutationEngine(design)
    mutants = generate_mutants(design)
    # a is the MSB data input: stimuli 0/1 keep a = 0 forever.
    stimuli = [0, 1, 0, 1, 1, 0]
    target = next(m for m in mutants if "y <= b" in str(m))
    record = engine.run_mutant(target, stimuli)
    assert not record.killed
    assert engine.triage_survivor(target, stimuli) == NEVER_ACTIVATED


def test_triage_propagation_blocked_on_dead_signal():
    """Mutating the never-read signal ``t`` activates (state differs)
    but can never reach an output."""
    design = load_design(GATED, "gated")
    engine = MutationEngine(design)
    mutants = generate_mutants(design)
    stimuli = [2, 3, 2, 3, 0, 1]  # a toggles, so t is exercised
    target = next(m for m in mutants if "t <= a" in str(m))
    record = engine.run_mutant(target, stimuli)
    assert not record.killed
    assert engine.triage_survivor(target, stimuli) == PROPAGATION_BLOCKED


def test_triage_survivors_batch_partitions(counter_design):
    engine = MutationEngine(counter_design)
    mutants = generate_mutants(counter_design)
    rng = rng_stream(5, "triage-batch")
    stimuli = [rng.getrandbits(2) for _ in range(12)]
    survivors = [
        m for m in mutants if not engine.run_mutant(m, stimuli).killed
    ]
    triage = engine.triage_survivors(survivors, stimuli)
    assert sorted(triage) == sorted(m.mid for m in survivors)
    assert set(triage.values()) <= set(TRIAGE_CATEGORIES)


def test_triage_empty_survivors():
    design = load_design(GATED, "gated")
    assert MutationEngine(design).triage_survivors([], [0, 1]) == {}


# -- witnesses, result round-trip, replay ------------------------------------


@pytest.fixture(scope="module")
def c17_result():
    return Campaign(CampaignConfig(**FAST)).run(("c17",))


def test_strategy_rows_carry_triage_and_witnesses(c17_result):
    row = c17_result.circuits[0].strategies[0]
    assert row.killed == len(row.witnesses)
    survivors = {mid for mids in row.triage.values() for mid in mids}
    assert len(survivors) == row.population - row.killed
    assert set(row.triage) <= set(TRIAGE_CATEGORIES)
    assert set(row.triage.get(POSSIBLY_EQUIVALENT, ())) <= survivors
    for record in row.witnesses.values():
        assert len(record) == 2
        assert record[1] in ("output-diff", "runtime", "oscillation")


def test_circuit_result_json_round_trip(c17_result):
    circuit = c17_result.circuits[0]
    clone = CircuitResult.from_dict(json.loads(json.dumps(circuit.to_dict())))
    assert clone.to_dict() == circuit.to_dict()


def test_old_strategy_row_payloads_still_load():
    row = StrategyRow(
        strategy="random", population=10, selected=1, equivalents=0,
        killed=1, ms_pct=10.0, test_length=1, nlfce=0.0,
    )
    payload = {
        k: v for k, v in row.__dict__.items()
        if k not in ("triage", "witnesses")
    }
    from repro.campaign.result import _row_from_dict

    loaded = _row_from_dict(StrategyRow, payload)
    assert loaded.triage == {} and loaded.witnesses == {}


def test_table2_reports_triage_counts(c17_result):
    row = c17_result.table2().rows[0]
    circuit_row = c17_result.circuits[0].strategies[0]
    assert row.never_activated == len(
        circuit_row.triage.get(NEVER_ACTIVATED, ())
    )
    assert row.propagation_blocked == len(
        circuit_row.triage.get(PROPAGATION_BLOCKED, ())
    )


def test_replay_cli_round_trip(c17_result, tmp_path, capsys):
    path = tmp_path / "result.json"
    path.write_text(c17_result.to_json(), encoding="utf-8")
    row = c17_result.circuits[0].strategies[0]

    killed_mid = sorted(row.witnesses, key=int)[0]
    assert cli.main(["replay", str(path), killed_mid]) == 0
    out = capsys.readouterr().out
    assert "witness verified" in out

    survivor_mid = next(
        str(mid) for mids in row.triage.values() for mid in mids
    )
    assert cli.main(["replay", str(path), survivor_mid]) == 1
    assert "triaged as" in capsys.readouterr().out

    assert cli.main(["replay", str(path), "999999"]) == 1
    assert "no kill witness" in capsys.readouterr().out


def test_fault_models_cli_listing(capsys):
    assert cli.main(["fault-models"]) == 0
    out = capsys.readouterr().out
    for name in fault_model_names():
        assert name in out
    assert "* stuck-at" in out
