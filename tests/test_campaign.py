"""Tests for the unified campaign pipeline API (repro.campaign)."""

import json

import pytest

from repro.campaign import (
    CACHE_VERSION,
    Campaign,
    CampaignConfig,
    CampaignEvents,
    CampaignResult,
    CircuitResult,
    ResultCache,
    STAGE_REGISTRY,
    Stage,
    get_stage,
    register_stage,
    stage_names,
)
from repro.errors import ConfigError, SamplingError
from repro.sampling import build_strategy, get_strategy

#: Tiny budgets: every stage of the real pipeline, fast.
FAST = dict(
    seed=77,
    random_budget_comb=96,
    random_budget_seq=96,
    equivalence_budget=32,
    max_vectors=24,
)


@pytest.fixture(scope="module")
def campaign_c17():
    return Campaign(CampaignConfig(**FAST)).run(("c17",))


# -- config ------------------------------------------------------------------


def test_config_json_roundtrip():
    config = CampaignConfig(
        seed=5,
        operators=("LOR", "VR"),
        strategies=("random",),
        fraction=0.25,
        weights={"LOR": 1.0, "VR": 0.5},
        sample_labels=("variant-a",),
        circuits=("c17",),
        jobs=4,
        cache_dir="/tmp/cache",
    )
    assert CampaignConfig.from_json(config.to_json()) == config


def test_config_from_dict_normalizes_lists():
    config = CampaignConfig.from_dict(
        {"operators": ["LOR"], "circuits": ["c17", "b01"]}
    )
    assert config.operators == ("LOR",)
    assert config.circuits == ("c17", "b01")


def test_config_rejects_unknown_keys():
    with pytest.raises(ConfigError):
        CampaignConfig.from_dict({"not_a_knob": 1})


def test_config_validation():
    with pytest.raises(ConfigError):
        CampaignConfig(fraction=0.0)
    with pytest.raises(ConfigError):
        CampaignConfig(jobs=0)
    with pytest.raises(ConfigError):
        CampaignConfig(weight_scheme="magic")


def test_config_from_file(tmp_path):
    path = tmp_path / "campaign.json"
    path.write_text(CampaignConfig(seed=9).to_json())
    assert CampaignConfig.from_file(path).seed == 9


def test_fingerprint_ignores_execution_fields():
    base = CampaignConfig(**FAST)
    assert base.fingerprint() == CampaignConfig(
        **FAST, jobs=8, cache_dir="/elsewhere", circuits=("c17",)
    ).fingerprint()
    assert base.fingerprint() != CampaignConfig(
        **{**FAST, "seed": 78}
    ).fingerprint()


def test_lab_config_slice():
    lab = CampaignConfig(**FAST).lab_config()
    assert lab.seed == 77
    assert lab.random_budget_comb == 96
    assert lab.equivalence_budget == 32


# -- registries --------------------------------------------------------------


def test_stage_registry_lookup():
    assert set(stage_names()) >= {
        "synth", "mutants", "sampling", "testgen", "fault-validation",
        "metrics",
    }
    assert get_stage("synth").name == "synth"
    with pytest.raises(ConfigError):
        get_stage("not-a-stage")


def test_stage_registry_override(monkeypatch):
    calls = []

    class RecorderStage(Stage):
        name = "recorder"

        def run(self, ctx):
            calls.append(ctx.circuit)

    monkeypatch.setitem(STAGE_REGISTRY, "recorder", RecorderStage)
    config = CampaignConfig(
        **FAST, strategies=(), operators=(),
        stages=("synth", "recorder"),
    )
    Campaign(config).run(("c17",))
    assert calls == ["c17"]


def test_strategy_registry():
    assert get_strategy("random").name == "random"
    strategy = build_strategy("test-oriented", 0.2, {"LOR": 1.0})
    assert strategy.fraction == 0.2
    assert strategy.weights == {"LOR": 1.0}
    assert build_strategy("exhaustive").sample_size(10) == 10
    with pytest.raises(SamplingError):
        get_strategy("not-a-strategy")


# -- pipeline results --------------------------------------------------------


def test_campaign_result_shape(campaign_c17):
    circuit = campaign_c17.circuit("c17")
    assert circuit.circuit == "c17"
    assert not circuit.sequential
    assert circuit.gates > 0 and circuit.faults > 0 and circuit.mutants > 0
    assert {row.strategy for row in circuit.strategies} == {
        "random", "test-oriented"
    }
    assert circuit.operators, "calibration rows expected"
    for row in circuit.strategies:
        assert 0.0 <= row.ms_pct <= 100.0
        assert len(row.vectors) == row.test_length


def test_campaign_result_json_roundtrip(campaign_c17):
    again = CampaignResult.from_json(campaign_c17.to_json())
    assert [c.to_dict() for c in again.circuits] == [
        c.to_dict() for c in campaign_c17.circuits
    ]
    assert again.config == campaign_c17.config


def test_campaign_tables_match_facades(campaign_c17):
    from repro.experiments.context import LabConfig
    from repro.experiments.table1 import run_table1
    from repro.experiments.table2 import run_table2

    lab = LabConfig(
        seed=77, random_budget_comb=96, random_budget_seq=96,
        equivalence_budget=32,
    )
    table1 = run_table1(circuits=("c17",), config=lab, max_vectors=24)
    table2 = run_table2(circuits=("c17",), config=lab, max_vectors=24)
    assert campaign_c17.table1().rows == table1.rows
    assert campaign_c17.table2().rows == table2.rows


def test_parallel_matches_serial():
    serial = Campaign(CampaignConfig(**FAST, jobs=1)).run(("c17", "b01"))
    parallel = Campaign(CampaignConfig(**FAST, jobs=2)).run(("c17", "b01"))
    assert [c.to_dict() for c in parallel.circuits] == [
        c.to_dict() for c in serial.circuits
    ]
    assert [c.circuit for c in parallel.circuits] == ["c17", "b01"]


def test_events_fire_in_order():
    class Recorder(CampaignEvents):
        def __init__(self):
            self.events = []

        def on_campaign_start(self, circuits, config):
            self.events.append(("campaign-start", circuits))

        def on_circuit_start(self, circuit):
            self.events.append(("circuit-start", circuit))

        def on_stage_start(self, circuit, stage):
            self.events.append(("stage-start", stage))

        def on_stage_end(self, circuit, stage, seconds):
            self.events.append(("stage-end", stage))

        def on_circuit_done(self, circuit, result, seconds, cached=False):
            self.events.append(("circuit-done", circuit, cached))

        def on_campaign_end(self, result, seconds):
            self.events.append(("campaign-end", len(result.circuits)))

    recorder = Recorder()
    config = CampaignConfig(**FAST, strategies=(), operators=("LOR",))
    Campaign(config, recorder).run(("c17",))
    kinds = [event[0] for event in recorder.events]
    assert kinds[0] == "campaign-start"
    assert kinds[1] == "circuit-start"
    assert kinds[-2] == ("circuit-done")
    assert kinds[-1] == "campaign-end"
    stages = [e[1] for e in recorder.events if e[0] == "stage-start"]
    assert stages == list(config.stages)


# -- cache -------------------------------------------------------------------


def test_cache_hit_and_miss(tmp_path):
    config = CampaignConfig(**FAST, cache_dir=str(tmp_path))
    first = Campaign(config).run(("c17",))
    assert first.cache_hits == ()
    cache = ResultCache(tmp_path, config)
    assert cache.path("c17").exists()
    assert f"v{CACHE_VERSION}" in cache.path("c17").name

    second = Campaign(config).run(("c17",))
    assert second.cache_hits == ("c17",)
    assert [c.to_dict() for c in second.circuits] == [
        c.to_dict() for c in first.circuits
    ]

    changed = CampaignConfig(
        **{**FAST, "seed": 78}, cache_dir=str(tmp_path)
    )
    third = Campaign(changed).run(("c17",))
    assert third.cache_hits == ()


def test_cache_store_cleans_up_tmp_on_failure(tmp_path, monkeypatch):
    """Regression: a failed rename used to strand `<name>.<pid>.tmp`."""
    from pathlib import Path

    config = CampaignConfig(**FAST)
    result = Campaign(config).run(("c17",)).circuits[0]
    cache = ResultCache(tmp_path, config)

    def boom(self, target):
        raise OSError("disk on fire")

    monkeypatch.setattr(Path, "replace", boom)
    with pytest.raises(OSError, match="disk on fire"):
        cache.store(result)
    assert list(tmp_path.glob("*.tmp")) == []
    assert not cache.path("c17").exists()


def test_cache_init_sweeps_stale_tmp_droppings(tmp_path):
    import os

    config = CampaignConfig(**FAST, cache_dir=str(tmp_path))
    cache = ResultCache(tmp_path, config)
    base = cache.path("c17")
    # A dead writer's dropping (pid beyond any real pid space) ...
    stale = base.with_name(base.name + f".{1 << 30}.tmp")
    stale.write_text("half a payload")
    # ... and a live writer's in-flight file (our own pid).
    inflight = base.with_name(base.name + f".{os.getpid()}.tmp")
    inflight.write_text("being written right now")
    ResultCache(tmp_path, config)
    assert not stale.exists()
    assert inflight.exists()


def test_cache_ignores_corrupt_entries(tmp_path):
    config = CampaignConfig(**FAST, cache_dir=str(tmp_path))
    Campaign(config).run(("c17",))
    cache = ResultCache(tmp_path, config)
    cache.path("c17").write_text("{ not json")
    result = Campaign(config).run(("c17",))
    assert result.cache_hits == ()
    assert result.circuit("c17").mutants > 0


def test_cache_roundtrip_result(tmp_path):
    config = CampaignConfig(**FAST)
    cache = ResultCache(tmp_path, config)
    row = CircuitResult(
        circuit="x", sequential=False, gates=1, dffs=0, depth=1,
        faults=2, mutants=3, equivalents=0,
    )
    cache.store(row)
    loaded = cache.load("x")
    assert loaded == row
    assert cache.load("y") is None


# -- custom pipelines --------------------------------------------------------


def test_truncated_pipeline_skips_scoring():
    config = CampaignConfig(
        **FAST,
        operators=(),
        strategies=("exhaustive",),
        stages=("synth", "mutants", "sampling", "testgen"),
    )
    result = Campaign(config).run(("c17",))
    row = result.circuit("c17").strategy("exhaustive")
    assert row.selected == result.circuit("c17").mutants
    assert row.vectors, "testgen ran"
    assert row.nlfce == 0.0 and row.test_length == 0  # no metrics stage
    assert result.circuit("c17").equivalents == 0     # no scoring pass


def test_pipeline_requires_synth_first():
    config = CampaignConfig(**FAST, stages=("mutants",))
    with pytest.raises(ConfigError):
        Campaign(config).run(("c17",))


def test_explicit_weights_override_scheme():
    config = CampaignConfig(
        **FAST,
        operators=(),
        strategies=("test-oriented",),
        weights={"LOR": 1.0, "VR": 0.1, "CVR": 0.1, "CR": 0.1},
    )
    result = Campaign(config).run(("c17",))
    assert result.circuit("c17").weights == {
        "LOR": 1.0, "VR": 0.1, "CVR": 0.1, "CR": 0.1,
    }


# -- CLI ---------------------------------------------------------------------


def test_cli_run_with_json(tmp_path, capsys):
    from repro.cli import main

    config_path = tmp_path / "campaign.json"
    config_path.write_text(
        CampaignConfig(**FAST, circuits=("c17",), strategies=()).to_json()
    )
    out_path = tmp_path / "result.json"
    assert main(["run", str(config_path), "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "Campaign: circuit inventory" in out
    data = json.loads(out_path.read_text())
    assert [c["circuit"] for c in data["circuits"]] == ["c17"]


def test_cli_table1_json(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "table1.json"
    assert main([
        "table1", "--circuits", "c17", "--seed", "77",
        "--random-budget", "96", "--equivalence-budget", "32",
        "--max-vectors", "24", "--json", str(out_path),
    ]) == 0
    assert "Operator Fault Coverage Efficiency" in capsys.readouterr().out
    data = json.loads(out_path.read_text())
    assert data["circuits"][0]["operators"], "calibration rows archived"
