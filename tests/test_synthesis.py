"""Synthesis correctness: the HDL-vs-gates equivalence property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import circuit_names, load_circuit
from repro.errors import LatchInferenceError, SynthesisError
from repro.hdl import load_design
from repro.netlist import CombSimulator, SeqSimulator
from repro.sim import StimulusEncoder, Testbench
from repro.sim.testbench import encode_outputs
from repro.synth import synthesize
from repro.util import rng_stream
from tests.conftest import netlist_of


def run_both(name: str, packed: list[int]):
    design = load_circuit(name)
    netlist = netlist_of(name)
    enc = StimulusEncoder(design)
    bench = Testbench(design)
    hdl = [
        encode_outputs(design, o)
        for o in bench.run_sequence([enc.decode(p) for p in packed])
    ]
    if design.is_sequential:
        gate = SeqSimulator(netlist).run_packed(packed)
    else:
        gate = CombSimulator(netlist).apply_patterns(packed)
    return hdl, gate


@pytest.mark.parametrize("name", circuit_names())
def test_gate_level_matches_behaviour(name):
    design = load_circuit(name)
    enc = StimulusEncoder(design)
    rng = rng_stream(41, name, "synth-equiv")
    packed = [rng.getrandbits(enc.width) for _ in range(120)]
    hdl, gate = run_both(name, packed)
    assert hdl == gate


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                max_size=40))
def test_b01_equivalence_property(stimuli):
    hdl, gate = run_both("b01", stimuli)
    assert hdl == gate


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**36 - 1), min_size=1,
                max_size=10))
def test_c432_equivalence_property(stimuli):
    hdl, gate = run_both("c432", stimuli)
    assert hdl == gate


def test_input_port_widths_match_encoder(any_circuit_name):
    design = load_circuit(any_circuit_name)
    netlist = netlist_of(any_circuit_name)
    assert StimulusEncoder(design).width == len(netlist.input_bits)


def test_dff_reset_values_from_reset_body():
    design = load_design(
        """
        entity t is port ( clock, reset : in bit; y : out bit_vector(2 downto 0) ); end t;
        architecture rtl of t is
          signal s : integer range 0 to 7;
        begin
          process (clock, reset)
          begin
            if reset = '1' then
              s <= 5;
              y <= "101";
            elsif rising_edge(clock) then
              s <= s;
              y <= "000";
            end if;
          end process;
        end rtl;
        """
    )
    netlist = synthesize(design)
    resets = {dff.name: dff.reset_value for dff in netlist.dffs}
    assert resets["s_reg[0]"] == 1
    assert resets["s_reg[1]"] == 0
    assert resets["s_reg[2]"] == 1


def test_latch_inference_rejected():
    design = load_design(
        """
        entity t is port ( a, b : in bit; y : out bit ); end t;
        architecture rtl of t is
        begin
          process (a, b)
          begin
            if a = '1' then
              y <= b;
            end if;
          end process;
        end rtl;
        """
    )
    with pytest.raises(LatchInferenceError):
        synthesize(design)


def test_comb_self_read_rejected():
    design = load_design(
        """
        entity t is port ( a : in bit; y : out bit ); end t;
        architecture rtl of t is
          signal s : bit;
        begin
          process (a, s)
          begin
            s <= a and s;
            y <= s;
          end process;
        end rtl;
        """
    )
    with pytest.raises(SynthesisError):
        synthesize(design)


def test_variable_read_before_assignment_rejected():
    design = load_design(
        """
        entity t is port ( a : in bit; y : out bit ); end t;
        architecture rtl of t is
        begin
          process (a)
            variable v : bit;
          begin
            if a = '1' then
              v := '1';
            end if;
            y <= v;
          end process;
        end rtl;
        """
    )
    with pytest.raises(SynthesisError):
        synthesize(design)


def test_negative_integer_range_rejected():
    design = load_design(
        """
        entity t is port ( clock : in bit; y : out bit ); end t;
        architecture rtl of t is
          signal s : integer range -4 to 3;
        begin
          process (clock)
          begin
            if rising_edge(clock) then
              s <= 0;
              y <= '0';
            end if;
          end process;
        end rtl;
        """
    )
    with pytest.raises(SynthesisError):
        synthesize(design)


def test_undriven_output_rejected():
    design = load_design(
        """
        entity t is port ( a : in bit; y, z : out bit ); end t;
        architecture rtl of t is
        begin
          y <= a;
        end rtl;
        """
    )
    with pytest.raises(SynthesisError):
        synthesize(design)


def test_c17_synthesizes_to_six_nands(c17):
    netlist = netlist_of("c17")
    from repro.netlist import GateType

    assert len(netlist.gates) == 6
    assert all(g.gate_type is GateType.NAND for g in netlist.gates)


def test_dynamic_index_read_and_write():
    design = load_design(
        """
        entity t is port ( clock, reset : in bit;
                           sel : in bit_vector(1 downto 0);
                           d : in bit;
                           y : out bit ); end t;
        architecture rtl of t is
          signal mem : bit_vector(3 downto 0);
          signal idx : integer range 0 to 3;
        begin
          process (clock, reset)
          begin
            if reset = '1' then
              mem <= "0000";
              idx <= 0;
              y <= '0';
            elsif rising_edge(clock) then
              if sel = "00" then idx <= 0;
              elsif sel = "01" then idx <= 1;
              elsif sel = "10" then idx <= 2;
              else idx <= 3;
              end if;
              mem(idx) <= d;
              y <= mem(idx);
            end if;
          end process;
        end rtl;
        """
    )
    netlist = synthesize(design)
    enc = StimulusEncoder(design)
    bench = Testbench(design)
    rng = rng_stream(5, "dynidx")
    packed = [rng.getrandbits(enc.width) for _ in range(60)]
    hdl = [
        encode_outputs(design, o)
        for o in bench.run_sequence([enc.decode(p) for p in packed])
    ]
    gate = SeqSimulator(netlist).run_packed(packed)
    assert hdl == gate
