"""Tests for the repo determinism linter (repro.analyze.lint)."""

import pytest

from repro.analyze.lint import (
    LintFinding,
    LintRule,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
    rule_names,
)
from repro.cli import main
from repro.errors import AnalyzeError


def rules_of(source, rule=None):
    findings = lint_source(source, "mod.py", (rule,) if rule else ())
    return [f.rule for f in findings]


# -- bare-random --------------------------------------------------------------


def test_bare_random_flags_global_functions():
    src = "import random\nx = random.randint(0, 7)\n"
    assert rules_of(src, "bare-random") == ["bare-random"]


def test_bare_random_flags_unseeded_constructor_and_clocks():
    src = (
        "import os, random, time\n"
        "r = random.Random()\n"
        "t = time.time()\n"
        "b = os.urandom(8)\n"
    )
    findings = lint_source(src, "mod.py", ("bare-random",))
    assert [f.line for f in findings] == [2, 3, 4]


def test_bare_random_allows_seeded_sources():
    src = (
        "import random, time\n"
        "r = random.Random(42)\n"
        "value = r.randint(0, 7)\n"
        "t = time.monotonic()\n"
    )
    assert rules_of(src, "bare-random") == []


# -- mutable-default ----------------------------------------------------------


def test_mutable_default_flags_literals_and_constructors():
    src = (
        "def f(a, b=[], c={}, d=set()):\n"
        "    return a\n"
        "def g(*, x=dict()):\n"
        "    return x\n"
    )
    findings = lint_source(src, "mod.py", ("mutable-default",))
    assert len(findings) == 4
    assert all(f.rule == "mutable-default" for f in findings)


def test_mutable_default_allows_immutable_defaults():
    src = "def f(a=None, b=(), c=0, d='x', e=frozenset()):\n    return a\n"
    assert rules_of(src, "mutable-default") == []


# -- set-iteration ------------------------------------------------------------


def test_set_iteration_flags_loops_and_comprehensions():
    src = (
        "s = {1, 2}\n"
        "for x in {1, 2, 3}:\n"
        "    print(x)\n"
        "out = [y for y in set([4, 5])]\n"
    )
    findings = lint_source(src, "mod.py", ("set-iteration",))
    assert [f.line for f in findings] == [2, 4]


def test_set_iteration_flags_set_algebra():
    src = "for x in {1} | {2}:\n    print(x)\n"
    assert rules_of(src, "set-iteration") == ["set-iteration"]


def test_set_iteration_allows_sorted_sets():
    src = (
        "for x in sorted({3, 1, 2}):\n"
        "    print(x)\n"
        "for y in [1, 2]:\n"
        "    print(y)\n"
    )
    assert rules_of(src, "set-iteration") == []


# -- lock-discipline ----------------------------------------------------------

_LOCKED_CLASS = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        {body}
"""


def test_lock_discipline_flags_unlocked_public_method():
    src = _LOCKED_CLASS.format(body="self._items.append(item)")
    findings = lint_source(src, "mod.py", ("lock-discipline",))
    assert [f.rule for f in findings] == ["lock-discipline"]
    assert "Box.add" in findings[0].message


def test_lock_discipline_allows_locked_method():
    src = _LOCKED_CLASS.format(
        body="with self._lock:\n            self._items.append(item)"
    )
    assert rules_of(src, "lock-discipline") == []


def test_lock_discipline_allows_private_and_delegating_methods():
    src = """
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def _append(self, item):
        with self._lock:
            self._items.append(item)

    def add(self, item):
        self._append(item)
"""
    assert rules_of(src, "lock-discipline") == []


def test_lock_discipline_ignores_lockless_classes():
    src = """
class Plain:
    def __init__(self):
        self._items = []

    def add(self, item):
        self._items.append(item)
"""
    assert rules_of(src, "lock-discipline") == []


# -- unused-import ------------------------------------------------------------


def test_unused_import_flags_dead_names():
    src = "import json\nimport os\nprint(os.getcwd())\n"
    findings = lint_source(src, "mod.py", ("unused-import",))
    assert [(f.line, f.rule) for f in findings] == [(1, "unused-import")]
    assert "'json'" in findings[0].message


def test_unused_import_counts_attribute_roots_and_aliases():
    src = (
        "import os.path\n"
        "from json import dumps as to_json\n"
        "print(os.path.sep, to_json({}))\n"
    )
    assert rules_of(src, "unused-import") == []


def test_unused_import_skips_package_init(tmp_path):
    pkg = tmp_path / "__init__.py"
    pkg.write_text("from json import dumps\n")
    assert lint_file(pkg) == []


# -- suppression and driver ---------------------------------------------------


def test_suppression_comment_silences_one_line():
    src = (
        "import random\n"
        "a = random.random()  # lint: allow(bare-random)\n"
        "b = random.random()\n"
    )
    findings = lint_source(src, "mod.py", ("bare-random",))
    assert [f.line for f in findings] == [3]


def test_suppression_takes_a_rule_list():
    src = "import json  # lint: allow(unused-import, bare-random)\n"
    assert rules_of(src) == []


def test_lint_source_rejects_bad_syntax_and_unknown_rule():
    with pytest.raises(AnalyzeError):
        lint_source("def broken(:\n", "mod.py")
    with pytest.raises(AnalyzeError):
        lint_source("x = 1\n", "mod.py", ("no-such-rule",))


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "bad.py").write_text("import json\n")
    findings = lint_paths([tmp_path])
    assert [f.rule for f in findings] == ["unused-import"]
    with pytest.raises(AnalyzeError):
        lint_paths([tmp_path / "missing.py"])


def test_finding_renders_like_a_compiler_diagnostic():
    finding = LintFinding("a.py", 3, "bare-random", "boom")
    assert str(finding) == "a.py:3: [bare-random] boom"
    assert finding.to_dict()["line"] == 3


def test_rule_registry_is_extensible():
    @register_rule
    class NoTodoRule(LintRule):
        name = "no-todo"
        description = "TODO comments are tracked in the roadmap"

        def check(self, tree, path):
            return
            yield

    try:
        assert "no-todo" in rule_names()
        assert lint_source("x = 1\n", "mod.py", ("no-todo",)) == []
    finally:
        from repro.analyze.lint import RULES

        RULES.pop("no-todo")


# -- the repo's own promise ---------------------------------------------------


def test_src_tree_is_lint_clean():
    assert lint_paths(["src"]) == []


def test_cli_lint_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import json\n")
    assert main(["lint", str(clean)]) == 0
    capsys.readouterr()
    assert main(["lint", str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "unused-import" in out
