"""Test generation: random/LFSR sources, mutation-adequate selection,
PODEM and compaction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import load_circuit
from repro.fault import CombFaultSimulator, collapse_faults
from repro.mutation import MutationEngine, generate_mutants
from repro.testgen import (
    LfsrGenerator,
    MutationTestGenerator,
    Podem,
    RandomVectorGenerator,
    reverse_order_compaction,
)
from repro.testgen.atpg import AtpgError
from repro.netlist.bench import C17_BENCH, parse_bench
from tests.conftest import netlist_of


def test_random_generator_deterministic():
    a = RandomVectorGenerator(16, 42).vectors(20)
    b = RandomVectorGenerator(16, 42).vectors(20)
    assert a == b


def test_random_generator_label_sensitivity():
    a = RandomVectorGenerator(16, 42, "x").vectors(20)
    b = RandomVectorGenerator(16, 42, "y").vectors(20)
    assert a != b


@given(st.integers(min_value=1, max_value=48))
def test_random_vectors_fit_width(width):
    gen = RandomVectorGenerator(width, 7)
    assert all(0 <= v < 2**width for v in gen.vectors(50))


@pytest.mark.parametrize("count", [0, -1, -20])
def test_random_vectors_rejects_non_positive_counts(count):
    from repro.errors import TestGenError

    with pytest.raises(TestGenError):
        RandomVectorGenerator(8, 7).vectors(count)
    with pytest.raises(TestGenError):
        LfsrGenerator(8, 7).vectors(count)


def test_lfsr_taps_table_is_validated():
    from repro.errors import TestGenError
    from repro.testgen.random_gen import LFSR_TAPS, _validate_taps

    _validate_taps(LFSR_TAPS)  # the shipped table passes
    broken = dict(LFSR_TAPS)
    del broken[17]
    with pytest.raises(TestGenError):
        _validate_taps(broken)  # a coverage gap is caught
    with pytest.raises(TestGenError):
        _validate_taps({**LFSR_TAPS, 8: (6, 5, 4)})  # missing top bit
    with pytest.raises(TestGenError):
        _validate_taps({**LFSR_TAPS, 8: (8, 9)})  # tap out of range
    with pytest.raises(TestGenError):
        _validate_taps({**LFSR_TAPS, 8: (8, 8, 5, 4)})  # duplicate tap


@pytest.mark.parametrize("width", [2, 3, 4, 5, 8])
def test_lfsr_maximal_period(width):
    gen = LfsrGenerator(width, seed=1)
    seen = set()
    for _ in range(2**width - 1):
        seen.add(gen.vector())
    assert len(seen) == 2**width - 1
    assert 0 not in seen or width == 1


@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=2**30))
@settings(max_examples=30, deadline=None)
def test_lfsr_full_period_never_repeats_before_cycling(width, seed):
    # Maximal-length property: from any non-zero seed state, the first
    # 2**n - 1 outputs are pairwise distinct (every non-zero state is
    # visited exactly once), and the sequence then cycles.
    gen = LfsrGenerator(width, seed=seed)
    period = 2**width - 1
    sequence = gen.vectors(period)
    assert len(set(sequence)) == period
    assert 0 not in sequence
    assert gen.vectors(period) == sequence


def test_lfsr_wide_fold():
    gen = LfsrGenerator(50, seed=1)
    vectors = gen.vectors(10)
    assert all(0 <= v < 2**50 for v in vectors)
    assert len(set(vectors)) > 1


def test_lfsr_deterministic():
    assert LfsrGenerator(8, 3).vectors(10) == LfsrGenerator(8, 3).vectors(10)


# -- mutation-adequate generation ------------------------------------------


def verify_kills(design, mutants, result):
    """Independently re-check that the claimed mutants die on the set."""
    engine = MutationEngine(design)
    by_mid = {m.mid: m for m in mutants}
    for mid in sorted(result.killed_mids)[:25]:
        record = engine.run_mutant(by_mid[mid], result.vectors)
        assert record.killed, f"mutant {mid} claimed killed but survives"


def test_comb_generation_kills_what_it_claims():
    design = load_circuit("c17")
    mutants = generate_mutants(design)
    generator = MutationTestGenerator(design, seed=5, max_vectors=64)
    result = generator.generate(mutants)
    assert result.vectors
    assert result.kill_fraction > 0.8
    verify_kills(design, mutants, result)


def test_seq_generation_kills_what_it_claims():
    design = load_circuit("b01")
    mutants = generate_mutants(design, ["LOR", "CR"])
    generator = MutationTestGenerator(design, seed=5, max_vectors=96)
    result = generator.generate(mutants)
    assert result.vectors
    assert result.kill_fraction > 0.5
    verify_kills(design, mutants, result)


def test_generation_respects_max_vectors():
    design = load_circuit("b01")
    mutants = generate_mutants(design)
    generator = MutationTestGenerator(design, seed=5, max_vectors=12)
    result = generator.generate(mutants)
    assert len(result.vectors) <= 12 + 4  # chunk granularity slack


def test_generation_deterministic():
    design = load_circuit("b01")
    mutants = generate_mutants(design, ["LOR"])
    r1 = MutationTestGenerator(design, seed=9).generate(mutants)
    r2 = MutationTestGenerator(design, seed=9).generate(mutants)
    assert r1.vectors == r2.vectors
    assert r1.killed_mids == r2.killed_mids


def test_generation_empty_mutant_list():
    design = load_circuit("c17")
    result = MutationTestGenerator(design, seed=1).generate([])
    assert result.vectors == []
    assert result.kill_fraction == 1.0


# -- PODEM -------------------------------------------------------------------


@pytest.fixture(scope="module")
def c17net():
    return parse_bench(C17_BENCH, "c17")


def test_podem_detects_every_c17_fault(c17net):
    podem = Podem(c17net)
    faults = collapse_faults(c17net)
    result = podem.run(faults)
    assert result.detected == len(faults)
    assert result.redundant == 0
    # Cross-check every generated vector with the fault simulator.
    sim = CombFaultSimulator(c17net, faults)
    for outcome in result.outcomes:
        fault_result = CombFaultSimulator(
            c17net, [outcome.fault]
        ).simulate([outcome.vector])
        assert fault_result.detection[0] == 0, outcome.fault
    del sim


def test_podem_finds_redundant_fault():
    # y = a OR (a AND b): the AND output stuck-at-0 is redundant
    # (absorption: y == a either way).
    text = (
        "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
        "t = AND(a, b)\ny = OR(a, t)\n"
    )
    netlist = parse_bench(text, "redundant")
    from repro.fault.model import StuckAtFault

    target_net = next(
        n.nid for n in netlist.nets if n.name == "t"
    )
    outcome = Podem(netlist).generate(StuckAtFault(net=target_net, stuck=0))
    assert outcome.status == "redundant"


def test_podem_vectors_on_synthesized_c432():
    netlist = netlist_of("c432")
    faults = collapse_faults(netlist)[:40]
    result = Podem(netlist, backtrack_limit=300).run(faults)
    assert result.detected > 0
    for outcome in result.outcomes:
        if outcome.status != "detected":
            continue
        check = CombFaultSimulator(
            netlist, [outcome.fault]
        ).simulate([outcome.vector])
        assert check.detection[0] == 0


def test_podem_rejects_sequential():
    with pytest.raises(AtpgError):
        Podem(netlist_of("b01"))


# -- compaction ----------------------------------------------------------------


def test_compaction_preserves_coverage(c17net):
    from repro.util import rng_stream

    rng = rng_stream(8, "compaction")
    vectors = [rng.getrandbits(5) for _ in range(40)]
    sim = CombFaultSimulator(c17net)
    before = sim.simulate(vectors).coverage()
    compacted = reverse_order_compaction(c17net, vectors)
    after = sim.simulate(compacted).coverage()
    assert after == pytest.approx(before)
    assert len(compacted) <= len(vectors)
    assert set(compacted) <= set(vectors)


def test_compaction_empty():
    netlist = parse_bench(C17_BENCH, "c17")
    assert reverse_order_compaction(netlist, []) == []


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=25))
def test_compaction_never_increases_length(vectors):
    netlist = parse_bench(C17_BENCH, "c17")
    compacted = reverse_order_compaction(netlist, vectors)
    assert len(compacted) <= len(vectors)
