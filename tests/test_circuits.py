"""Functional tests of the benchmark circuit library."""

import pytest

from repro.circuits import circuit_names, get_circuit, load_circuit
from repro.circuits.iscas85 import hamming_data_positions
from repro.errors import ConfigError
from repro.hdl.values import BV
from repro.sim import StimulusEncoder, Testbench


def test_registry_lists_seven_circuits():
    names = circuit_names()
    assert names == ["b01", "b02", "b03", "b06", "c17", "c432", "c499"]


def test_unknown_circuit_raises():
    with pytest.raises(ConfigError):
        get_circuit("b99")


def test_registry_caches_designs():
    assert load_circuit("b01") is load_circuit("b01")


def test_constants_flag_matches_sources():
    assert get_circuit("b01").has_constants
    assert not get_circuit("b02").has_constants


# -- c17 -----------------------------------------------------------------


def c17_expected(i1, i2, i3, i6, i7):
    n10 = 1 - (i1 & i3)
    n11 = 1 - (i3 & i6)
    n16 = 1 - (i2 & n11)
    n19 = 1 - (n11 & i7)
    return (1 - (n10 & n16), 1 - (n16 & n19))


def test_c17_full_truth_table(c17):
    bench = Testbench(c17)
    for value in range(32):
        bits = [(value >> k) & 1 for k in range(5)]
        i1, i2, i3, i6, i7 = bits
        outputs = bench.step(
            {"i1": i1, "i2": i2, "i3": i3, "i6": i6, "i7": i7}
        )
        assert outputs == c17_expected(i1, i2, i3, i6, i7)


# -- c432 -----------------------------------------------------------------


def test_c432_bus_priority(c432):
    bench = Testbench(c432)
    all_en = BV(0x1FF, 9)
    # A request wins over B and C.
    pa, pb, pc, chan = bench.step(
        {"a": BV(0b100, 9), "b": BV(0b1, 9), "c": BV(0b1, 9), "e": all_en}
    )
    assert (pa, pb, pc) == (1, 0, 0)
    assert chan.value == 2  # lowest requesting channel on the A bus
    # No A: B wins.
    pa, pb, pc, chan = bench.step(
        {"a": BV(0, 9), "b": BV(0b1000, 9), "c": BV(0b1, 9), "e": all_en}
    )
    assert (pa, pb, pc) == (0, 1, 0)
    assert chan.value == 3


def test_c432_enable_masks_requests(c432):
    bench = Testbench(c432)
    pa, pb, pc, chan = bench.step(
        {"a": BV(0b100, 9), "b": BV(0, 9), "c": BV(0, 9), "e": BV(0, 9)}
    )
    assert (pa, pb, pc) == (0, 0, 0)
    assert chan.value == 15  # idle code


def test_c432_no_request_idle(c432):
    bench = Testbench(c432)
    pa, pb, pc, chan = bench.step(
        {"a": BV(0, 9), "b": BV(0, 9), "c": BV(0, 9), "e": BV(0x1FF, 9)}
    )
    assert (pa, pb, pc) == (0, 0, 0)
    assert chan.value == 15


# -- c499 -----------------------------------------------------------------


def c499_check_bits(data: int) -> BV:
    """Check bits that make ``data`` a zero-syndrome code word."""
    positions = hamming_data_positions(32)
    ic = 0
    for j in range(6):
        parity = 0
        for i, pos in enumerate(positions):
            if pos & (1 << j):
                parity ^= (data >> i) & 1
        ic |= parity << j
    low = 0
    for i in range(16):
        low ^= (data >> i) & 1
    high = 0
    for i in range(16, 32):
        high ^= (data >> i) & 1
    ic |= low << 6
    ic |= high << 7
    return BV(ic, 8)


def test_c499_clean_word_passes_through(c499):
    bench = Testbench(c499)
    data = 0xDEADBEEF
    (od,) = bench.step(
        {"id": BV(data, 32), "ic": c499_check_bits(data), "cor": 1}
    )
    assert od.value == data


@pytest.mark.parametrize("error_bit", [0, 1, 7, 15, 16, 21, 31])
def test_c499_corrects_single_bit_errors(c499, error_bit):
    bench = Testbench(c499)
    data = 0x1234ABCD
    corrupted = data ^ (1 << error_bit)
    (od,) = bench.step(
        {"id": BV(corrupted, 32), "ic": c499_check_bits(data), "cor": 1}
    )
    assert od.value == data


def test_c499_correction_disabled_passes_error(c499):
    bench = Testbench(c499)
    data = 0x0F0F0F0F
    corrupted = data ^ (1 << 5)
    (od,) = bench.step(
        {"id": BV(corrupted, 32), "ic": c499_check_bits(data), "cor": 0}
    )
    assert od.value == corrupted


def test_hamming_positions_skip_powers_of_two():
    positions = hamming_data_positions(32)
    assert len(positions) == 32
    assert all(p & (p - 1) for p in positions)
    assert positions[0] == 3


# -- b01 -------------------------------------------------------------------


def test_b01_outputs_serial_sum(b01):
    bench = Testbench(b01)
    bench.reset()
    # 1+1 -> sum 0 carry; then 0+0 -> sum 1 (carry consumed).
    outp, overflw = bench.step({"line1": 1, "line2": 1})
    assert (outp, overflw) == (0, 0)
    outp, overflw = bench.step({"line1": 0, "line2": 0})
    assert (outp, overflw) == (1, 0)


def test_b01_overflow_flags_after_long_carry(b01):
    bench = Testbench(b01)
    bench.reset()
    flagged = False
    for _ in range(12):
        _outp, overflw = bench.step({"line1": 1, "line2": 1})
        flagged = flagged or overflw == 1
    assert flagged


# -- b02 -------------------------------------------------------------------


def test_b02_detects_pattern(b02):
    bench = Testbench(b02)
    bench.reset()
    outs = [bench.step({"linea": bit})[0] for bit in (1, 0, 0, 1, 0, 0)]
    assert 1 in outs


# -- b03 -------------------------------------------------------------------


def test_b03_grants_are_one_hot(b03):
    bench = Testbench(b03)
    bench.reset()
    from repro.util import rng_stream

    rng = rng_stream(3, "b03-onehot")
    for _ in range(60):
        req = BV(rng.getrandbits(4), 4)
        grant, _busy = bench.step({"req": req})
        assert bin(grant.value).count("1") <= 1


def test_b03_grant_only_when_requested(b03):
    bench = Testbench(b03)
    bench.reset()
    grant, busy = bench.step({"req": BV(0, 4)})
    assert grant.value == 0
    grant, _ = bench.step({"req": BV(0b0010, 4)})
    assert grant.value == 0b0010


def test_b03_rotates_priority(b03):
    bench = Testbench(b03)
    bench.reset()
    owners = []
    for _ in range(24):
        grant, _ = bench.step({"req": BV(0b1111, 4)})
        if grant.value:
            owners.append(grant.value)
    assert len(set(owners)) == 4  # every requester eventually served


# -- b06 -------------------------------------------------------------------


def test_b06_interrupt_path(b06=None):
    design = load_circuit("b06")
    bench = Testbench(design)
    bench.reset()
    bench.step({"cont_eql": 0, "cc_mux": 0})   # s_init -> s_wait
    uscite, enable = bench.step({"cont_eql": 1, "cc_mux": 0})
    assert uscite.value == 0b01
    uscite, enable = bench.step({"cont_eql": 1, "cc_mux": 0})
    assert enable == 1


def test_all_circuits_run_100_random_cycles(any_circuit_name):
    design = load_circuit(any_circuit_name)
    enc = StimulusEncoder(design)
    bench = Testbench(design)
    from repro.util import rng_stream

    rng = rng_stream(17, any_circuit_name, "soak")
    outs = bench.run_sequence(
        [enc.decode(rng.getrandbits(enc.width)) for _ in range(100)]
    )
    assert len(outs) == 100
