"""Fault model, collapsing and fault simulation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultSimError
from repro.fault import (
    CombFaultSimulator,
    SeqFaultSimulator,
    collapse_faults,
    generate_faults,
    simulate_stuck_at,
)
from repro.fault.model import StuckAtFault
from repro.netlist.bench import C17_BENCH, parse_bench
from repro.util import rng_stream
from tests.conftest import netlist_of


@pytest.fixture(scope="module")
def c17net():
    return parse_bench(C17_BENCH, "c17")


def test_c17_textbook_fault_counts(c17net):
    assert len(generate_faults(c17net)) == 34
    assert len(collapse_faults(c17net)) == 22


def test_branch_faults_only_on_fanout(c17net):
    branch_nets = {
        f.net for f in generate_faults(c17net) if f.gate is not None
    }
    names = {c17net.net_name(n) for n in branch_nets}
    assert names == {"3", "11", "16"}  # the three fanout stems of c17


def test_collapsed_representative_detection_equivalence(c17net):
    """Any fault equivalent to a representative is detected identically."""
    # NAND input s-a-0 is equivalent to its output s-a-1.
    gate = c17net.gates[0]           # 10 = NAND(1, 3)
    in_fault = StuckAtFault(net=gate.inputs[0], stuck=0)
    out_fault = StuckAtFault(net=gate.output, stuck=1)
    rng = rng_stream(1, "collapse-eq")
    patterns = [rng.getrandbits(5) for _ in range(64)]
    sim = CombFaultSimulator(c17net, [in_fault, out_fault])
    result = sim.simulate(patterns)
    assert result.detection[0] == result.detection[1]


def test_comb_full_coverage_with_exhaustive_patterns(c17net):
    sim = CombFaultSimulator(c17net)
    result = sim.simulate(list(range(32)))
    assert result.coverage() == 1.0


def test_known_single_fault_detection(c17net):
    # Output 22 stuck-at-1: detected by any pattern making 22 == 0,
    # i.e. N10 = N16 = 1.
    target = next(
        f for f in generate_faults(c17net)
        if c17net.net_name(f.net) == "22" and f.stuck == 1 and f.is_stem
    )
    sim = CombFaultSimulator(c17net, [target])
    # i1=1, i3=1 makes n10=0 -> 22=1: fault NOT detected.
    undetected = sim.simulate([0b11100])
    assert undetected.detection[0] is None
    # i1=0 ... with n16=1: 22 = 0 in good machine -> detected.
    detected = sim.simulate([0b00000])
    assert detected.detection[0] is not None


def test_comb_rejects_sequential_netlists():
    with pytest.raises(FaultSimError):
        CombFaultSimulator(netlist_of("b01"))


def test_seq_and_comb_agree_on_combinational_circuit():
    netlist = netlist_of("c17")
    faults = collapse_faults(netlist)
    rng = rng_stream(9, "seqcomb")
    patterns = [rng.getrandbits(5) for _ in range(40)]
    comb = CombFaultSimulator(netlist, faults).simulate(patterns)
    seq = SeqFaultSimulator(netlist, faults, lanes=7).simulate(patterns)
    assert comb.detection == seq.detection


def test_seq_lane_chunking_invariance(b01_netlist):
    faults = collapse_faults(b01_netlist)[:50]
    rng = rng_stream(10, "lanes")
    stimuli = [rng.getrandbits(2) for _ in range(64)]
    wide = SeqFaultSimulator(b01_netlist, faults, lanes=64).simulate(stimuli)
    narrow = SeqFaultSimulator(b01_netlist, faults, lanes=5).simulate(stimuli)
    assert wide.detection == narrow.detection


def test_dispatcher_picks_engine(b01_netlist, c17_netlist):
    rng = rng_stream(2, "dispatch")
    seq_result = simulate_stuck_at(
        b01_netlist, [rng.getrandbits(2) for _ in range(16)]
    )
    comb_result = simulate_stuck_at(
        c17_netlist, [rng.getrandbits(5) for _ in range(16)]
    )
    assert seq_result.num_patterns == 16
    assert comb_result.num_patterns == 16


def test_detection_monotone_in_prefix_length(c17net):
    sim = CombFaultSimulator(c17net)
    patterns = list(range(20))
    result = sim.simulate(patterns)
    curve = result.coverage_curve()
    assert all(b >= a for a, b in zip(curve, curve[1:]))
    assert curve[-1] == result.coverage()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=40))
def test_coverage_curve_consistency(patterns):
    netlist = parse_bench(C17_BENCH, "c17")
    result = CombFaultSimulator(netlist).simulate(patterns)
    curve = result.coverage_curve()
    for length in (1, len(patterns) // 2 or 1, len(patterns)):
        assert curve[length - 1] == pytest.approx(result.coverage(length))


def test_length_to_reach(c17net):
    result = CombFaultSimulator(c17net).simulate(list(range(32)))
    full = result.length_to_reach(1.0)
    assert full is not None
    assert result.coverage(full) == 1.0
    assert result.coverage(full - 1) < 1.0 if full > 1 else True
    assert result.length_to_reach(0.0) in (0, 1)


def test_detection_prefix_consistency(c17net):
    """First-detection with the full set matches a shorter run."""
    rng = rng_stream(3, "prefix")
    patterns = [rng.getrandbits(5) for _ in range(30)]
    sim = CombFaultSimulator(c17net)
    full = sim.simulate(patterns)
    half = sim.simulate(patterns[:15])
    for f_full, f_half in zip(full.detection, half.detection):
        if f_full is not None and f_full < 15:
            assert f_half == f_full
        elif f_half is not None:
            assert f_full == f_half


def test_stem_fault_on_output_port(c17net):
    fault = next(
        f for f in generate_faults(c17net)
        if c17net.net_name(f.net) == "23" and f.stuck == 0 and f.is_stem
    )
    result = CombFaultSimulator(c17net, [fault]).simulate(list(range(32)))
    assert result.detection[0] is not None


def test_empty_pattern_list(c17net):
    result = CombFaultSimulator(c17net).simulate([])
    assert result.coverage() == 0.0
    assert result.detected == 0


def test_undetected_faults_listed(b01_netlist):
    result = simulate_stuck_at(b01_netlist, [0, 1, 2, 3])
    undetected = result.undetected_faults()
    assert len(undetected) == result.num_faults - result.detected
