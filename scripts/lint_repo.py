#!/usr/bin/env python
"""Run the repo determinism linter over the source tree.

Thin wrapper over ``repro lint`` (:mod:`repro.analyze.lint`) so CI and
pre-commit hooks have a stable entry point that does not depend on the
package being installed:

    python scripts/lint_repo.py [paths ...]

Defaults to linting ``src`` (and ``scripts``); exits non-zero when any
finding survives, printing one ``path:line: [rule] message`` per line.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analyze.lint import lint_paths  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    paths = (argv if argv is not None else sys.argv[1:]) or [
        str(REPO_ROOT / "src"),
        str(REPO_ROOT / "scripts"),
    ]
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
