#!/usr/bin/env python
"""End-to-end smoke for repro.net: real processes, real sockets.

Drives the full cross-machine story on localhost, the way CI (or a
skeptical human with two terminals) would:

1. ``repro serve`` + two ``repro worker`` subprocesses; a c17+b01
   campaign through ``--grid remote`` must produce a ``--json``
   payload identical to ``--grid serial``.
2. One worker is SIGKILLed mid-run — lease reassignment must finish
   the campaign on the survivor, still bit-identical.  The same run
   records a ``--trace``; the stitched Chrome trace must pass
   ``repro trace --validate`` and contain per-worker span lanes
   (set ``REPRO_SMOKE_TRACE`` to keep it, e.g. as a CI artifact).
3. The coordinator itself is SIGKILLed mid-run; a fresh coordinator
   on the same ``--cache-dir`` plus ``repro run --resume`` must
   complete from the persisted units, still bit-identical.
4. Teardown is clean: every subprocess this script started is gone
   when it exits (no orphans).

Run as ``PYTHONPATH=src python scripts/remote_smoke.py``.  Exits 0 on
success, 1 with a diagnostic on any mismatch.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

PORT = int(os.environ.get("REPRO_SMOKE_PORT", "18752"))
URL = f"http://127.0.0.1:{PORT}"

CONFIG = {
    "circuits": ["c17", "b01"],
    "operators": ["LOR"],
    "strategies": ["random"],
    "random_budget_comb": 256,
    "random_budget_seq": 128,
    "equivalence_budget": 64,
    "max_vectors": 64,
}

PROCS: list[subprocess.Popen] = []


def spawn(*args: str, **kwargs) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env={**os.environ, "PYTHONHASHSEED": "0"},
        **kwargs,
    )
    PROCS.append(proc)
    return proc


def run(*args: str, check: bool = True, **kwargs):
    print(f"+ repro {' '.join(args)}", flush=True)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env={**os.environ, "PYTHONHASHSEED": "0"},
        check=check,
        **kwargs,
    )


def wait_for_coordinator(deadline: float = 30.0) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            with urllib.request.urlopen(f"{URL}/ping", timeout=1.0):
                return
        except OSError:
            time.sleep(0.1)
    raise RuntimeError(f"coordinator at {URL} never came up")


def start_stack(cache_dir: str | None, lease_timeout: float = 3.0):
    serve_args = ["serve", "--port", str(PORT),
                  "--lease-timeout", str(lease_timeout)]
    if cache_dir:
        serve_args += ["--cache-dir", cache_dir]
    coordinator = spawn(*serve_args)
    wait_for_coordinator()
    workers = [
        spawn("worker", URL, "--name", f"smoke-{i}") for i in range(2)
    ]
    return coordinator, workers


def reap(proc: subprocess.Popen, sig=signal.SIGTERM, timeout: float = 15.0):
    if proc.poll() is None:
        proc.send_signal(sig)
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=timeout)


def payload(path: Path) -> list:
    return json.loads(path.read_text())["circuits"]


def probe_metrics() -> None:
    """GET /metrics on the live coordinator and sanity-check its shape."""
    with urllib.request.urlopen(f"{URL}/metrics", timeout=5.0) as response:
        snapshot = json.loads(response.read())
    for key in ("queue_depth", "leased_units", "workers", "metrics"):
        assert key in snapshot, f"/metrics is missing {key!r}"
    counters = snapshot["metrics"].get("counters", {})
    assert counters.get("coordinator.leases.granted", 0) > 0, (
        "coordinator counted no granted leases while units were running"
    )
    print(
        f"OK: /metrics live (queue={snapshot['queue_depth']}, "
        f"leased={snapshot['leased_units']}, "
        f"workers={len(snapshot['workers'])})",
        flush=True,
    )


def run_until_units(args: list[str], units: int) -> subprocess.Popen:
    """Start ``repro run --progress`` and return once ``units`` unit
    completions have been reported (the run keeps going)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *args, "--progress"],
        env={**os.environ, "PYTHONHASHSEED": "0"},
        stderr=subprocess.PIPE,
        text=True,
    )
    PROCS.append(proc)
    seen = threading.Event()

    def watch():
        count = 0
        for line in proc.stderr:
            sys.stderr.write(line)
            if " unit " in line:
                count += 1
                if count >= units:
                    seen.set()
        seen.set()  # stream closed: the run ended either way

    threading.Thread(target=watch, daemon=True).start()
    if not seen.wait(timeout=300):
        raise RuntimeError("run made no visible progress")
    return proc


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-remote-smoke-"))
    config_path = workdir / "campaign.json"
    config_path.write_text(json.dumps(CONFIG))
    serial_json = workdir / "serial.json"
    run("run", str(config_path), "--json", str(serial_json))
    serial = payload(serial_json)

    # -- leg 1+2: remote run, one worker murdered mid-flight -----------------
    coordinator, workers = start_stack(cache_dir=None)
    remote_json = workdir / "remote.json"
    trace_path = Path(
        os.environ.get("REPRO_SMOKE_TRACE") or workdir / "remote-trace.json"
    )
    proc = run_until_units(
        ["run", str(config_path), "--grid", "remote",
         "--coordinator", URL, "--json", str(remote_json),
         "--trace", str(trace_path)],
        units=4,
    )
    probe_metrics()
    print("killing one worker mid-run", flush=True)
    workers[1].kill()
    workers[1].wait()
    if proc.wait(timeout=600) != 0:
        raise RuntimeError("remote run failed after losing a worker")
    assert payload(remote_json) == serial, (
        "remote payload drifted from serial after a worker loss"
    )
    print("OK: remote == serial with a worker killed mid-run", flush=True)
    run("trace", str(trace_path), "--validate")
    lanes = {
        event.get("pid")
        for event in json.loads(trace_path.read_text())["traceEvents"]
    }
    assert any(str(pid).startswith("worker-smoke-") for pid in lanes), (
        f"stitched trace has no worker lanes (lanes: {sorted(lanes)})"
    )
    print(f"OK: stitched trace valid, lanes {sorted(lanes)}", flush=True)
    reap(workers[0])
    reap(coordinator)

    # -- leg 3: coordinator murdered mid-run, resume from its store ----------
    shared = workdir / "shared-cache"
    coordinator, workers = start_stack(cache_dir=str(shared))
    proc = run_until_units(
        ["run", str(config_path), "--grid", "remote",
         "--coordinator", URL, "--cache-dir", str(shared)],
        units=4,
    )
    print("killing the coordinator mid-run", flush=True)
    coordinator.kill()
    coordinator.wait()
    if proc.wait(timeout=600) == 0:
        print("note: run finished before the coordinator died", flush=True)
    stored = len(list(shared.glob("grid-*/*.json")))
    print(f"units persisted by the dead coordinator: {stored}", flush=True)
    assert stored > 0, "the coordinator persisted nothing before dying"
    for worker in workers:  # they point at a corpse; replace them
        reap(worker, sig=signal.SIGKILL)
    coordinator, workers = start_stack(cache_dir=str(shared))
    resumed_json = workdir / "resumed.json"
    result = run(
        "run", str(config_path), "--grid", "remote",
        "--coordinator", URL, "--cache-dir", str(shared),
        "--resume", "--progress", "--json", str(resumed_json),
        stderr=subprocess.PIPE, text=True,
    )
    sys.stderr.write(result.stderr)
    assert payload(resumed_json) == serial, (
        "resumed payload drifted from serial"
    )
    if "(cached)" not in result.stderr:
        print("note: first attempt had finished before the kill", flush=True)
    print("OK: resume after coordinator crash == serial", flush=True)

    # -- teardown: nothing left running --------------------------------------
    for worker in workers:
        reap(worker)
    reap(coordinator)
    leftovers = [p.pid for p in PROCS if p.poll() is None]
    assert not leftovers, f"orphaned processes: {leftovers}"
    print("OK: clean teardown, no orphans", flush=True)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (AssertionError, RuntimeError) as exc:
        print(f"remote smoke FAILED: {exc}", file=sys.stderr)
        sys.exit(1)
    finally:
        for proc in PROCS:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
