"""Pluggable netlist-simulation engines (see :mod:`repro.engine.base`).

Three backends ship with the library:

* ``interp`` — the reference implementation: per-gate
  :func:`repro.netlist.cells.eval_gate` enum dispatch.
* ``compiled`` — per-netlist Python code generation; the default.
* ``vector`` — bit-packed word-parallel evaluation over numpy uint64
  lanes (segmented level kernels, row-parallel fault batching), with a
  pure big-int fallback when numpy is absent.

All are bit-identical by contract; select one by name through
``CampaignConfig(engine=...)``, the ``--engine`` CLI flag, or the
``engine=`` keyword every simulator accepts.  ``repro engines`` lists
the registry.
"""

from repro.engine.base import (
    DEFAULT_ENGINE,
    ENGINES,
    EngineBase,
    InjectionPlan,
    build_engine,
    engine_names,
    get_engine,
    register_engine,
)
from repro.engine.compiled import CompiledEngine
from repro.engine.interp import InterpEngine
from repro.engine.vector import VectorEngine

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "CompiledEngine",
    "EngineBase",
    "InjectionPlan",
    "InterpEngine",
    "VectorEngine",
    "build_engine",
    "engine_names",
    "get_engine",
    "register_engine",
]
