"""The ``compiled`` backend: per-netlist Python code generation.

For each netlist the backend emits topologically ordered straight-line
source — one bitwise expression per gate on local variables — compiles
it once with :func:`compile` and memoizes the resulting function, so
the hot loops pay no dict lookups, no :class:`GateType` dispatch and no
per-gate function calls:

* the *full evaluator* computes every gate of the good machine;
* a *cone evaluator* per fault-origin net re-evaluates only the fault's
  output cone against hoisted good-machine side inputs and returns the
  primary-output difference word directly;
* an *injected evaluator* per fault chunk bakes the chunk's stem and
  branch ``(clear, set)`` masks into the source as integer literals
  (keyed by :meth:`InjectionPlan.injection_key`, so re-simulating the
  same chunk never recompiles).

Every emitted expression mirrors :func:`repro.netlist.cells.eval_gate`
exactly (same operator order, same masking), which is what makes the
backend bit-identical to ``interp`` — the differential property test
holds it to that.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Callable

from repro.engine.base import EngineBase, InjectionPlan, register_engine
from repro.errors import EngineError
from repro.netlist.cells import GateType
from repro.netlist.levelize import topo_gates
from repro.netlist.netlist import Gate, Netlist

#: gate type -> (prefix, operand joiner); expression = prefix(join) & mask.
_OPS = {
    GateType.AND: ("", " & "),
    GateType.OR: ("", " | "),
    GateType.XOR: ("", " ^ "),
    GateType.NAND: ("~", " & "),
    GateType.NOR: ("~", " | "),
    GateType.XNOR: ("~", " ^ "),
}


def _gate_expr(gate_type: GateType, operands: list[str]) -> str:
    """The masked bitwise expression mirroring ``eval_gate``."""
    if gate_type is GateType.CONST0:
        return "0"
    if gate_type is GateType.CONST1:
        return "mask"
    if gate_type is GateType.NOT:
        return f"~{operands[0]} & mask"
    if gate_type is GateType.BUF:
        return f"{operands[0]} & mask"
    try:
        prefix, joiner = _OPS[gate_type]
    except KeyError:
        raise EngineError(
            f"cannot compile gate type {gate_type!r}"
        ) from None
    return f"{prefix}({joiner.join(operands)}) & mask"


def _override_expr(source: str, override: tuple[int, int]) -> str:
    clear, setm = override
    return f"(({source}) & {~clear}) | {setm}"


def _compile_fn(source: str, filename: str) -> Callable:
    namespace: dict = {}
    exec(compile(source, filename, "exec"), namespace)
    return namespace["_run"]


class _CompiledProgram:
    """All compiled artifacts of one netlist (built lazily, cached).

    The netlist is referenced weakly — the engine's program cache must
    not extend its lifetime — and dereferenced only while a caller
    holds the netlist; everything codegen needs repeatedly (topo order,
    port bits, name) is captured eagerly.
    """

    def __init__(self, netlist: Netlist):
        self._netlist_ref = weakref.ref(netlist)
        self.name = netlist.name
        self.order = topo_gates(netlist)
        self.sources = list(netlist.input_bits)
        self.sources.extend(dff.q for dff in netlist.dffs)
        self.outputs = netlist.output_bits
        self.output_set = frozenset(self.outputs)
        self._full_fn: Callable | None = None
        self._cone_fns: dict[int, Callable] = {}
        self._injected_fns: OrderedDict[tuple, Callable] = OrderedDict()
        self._injected_built = 0
        self._fanout: dict[int, list[tuple[Gate, int]]] | None = None

    @property
    def netlist(self) -> Netlist | None:
        return self._netlist_ref()

    # -- full evaluator ------------------------------------------------------

    def full_fn(self) -> Callable:
        if self._full_fn is None:
            self._full_fn = _compile_fn(
                self._emit_eval(stem={}, branch={}),
                f"<engine.compiled {self.name} full>",
            )
        return self._full_fn

    def _emit_eval(self, stem: dict, branch: dict) -> str:
        """Source of a full evaluator, optionally with baked injections."""
        lines = ["def _run(W, mask):"]
        for nid in self.sources:
            load = f"W[{nid}]"
            override = stem.get(nid)
            if override is not None:
                load = _override_expr(load, override)
            lines.append(f"    v{nid} = {load}")
        for gate in self.order:
            operands = []
            for pin, nid in enumerate(gate.inputs):
                operand = f"v{nid}"
                override = branch.get((gate.gid, pin))
                if override is not None:
                    operand = f"({_override_expr(operand, override)})"
                operands.append(operand)
            expr = _gate_expr(gate.gate_type, operands)
            override = stem.get(gate.output)
            if override is not None:
                expr = _override_expr(expr, override)
            lines.append(f"    v{gate.output} = {expr}")
        computed = self.sources + [gate.output for gate in self.order]
        items = ", ".join(f"{nid}: v{nid}" for nid in computed)
        lines.append("    return {**W, %s}" % items)
        return "\n".join(lines) + "\n"

    # -- cone evaluators -----------------------------------------------------

    def cone_fn(self, origin: int) -> Callable:
        fn = self._cone_fns.get(origin)
        if fn is None:
            fn = _compile_fn(
                self._emit_cone(origin),
                f"<engine.compiled {self.name} cone:{origin}>",
            )
            self._cone_fns[origin] = fn
        return fn

    def _emit_cone(self, origin: int) -> str:
        """Source of the faulty-machine evaluator downstream of ``origin``.

        ``_run(G, word, mask)`` takes the good-machine words and the
        origin net's faulty word; cone gates read faulty locals, side
        inputs read hoisted good words, and the return value is the
        primary-output difference word.
        """
        if self._fanout is None:
            self._fanout = self.netlist.fanout_map()
        cone_gids: set[int] = set()
        frontier = [origin]
        seen = {origin}
        while frontier:
            nid = frontier.pop()
            for gate, _pin in self._fanout.get(nid, ()):
                if gate.gid not in cone_gids:
                    cone_gids.add(gate.gid)
                    if gate.output not in seen:
                        seen.add(gate.output)
                        frontier.append(gate.output)
        cone_order = [g for g in self.order if g.gid in cone_gids]
        cone_nets = {origin} | {g.output for g in cone_order}
        side = sorted(
            {n for g in cone_order for n in g.inputs if n not in cone_nets}
        )
        lines = ["def _run(G, word, mask):", f"    v{origin} = word"]
        lines.extend(f"    g{nid} = G[{nid}]" for nid in side)
        for gate in cone_order:
            operands = [
                f"v{n}" if n in cone_nets else f"g{n}" for n in gate.inputs
            ]
            lines.append(
                f"    v{gate.output} = "
                f"{_gate_expr(gate.gate_type, operands)}"
            )
        diffs = [
            f"(v{nid} ^ G[{nid}])" for nid in self.outputs
            if nid in cone_nets
        ]
        if diffs:
            lines.append(f"    return ({' | '.join(diffs)}) & mask")
        else:
            lines.append("    return 0")
        return "\n".join(lines) + "\n"

    # -- injected evaluators -------------------------------------------------

    #: Retained injected evaluators per netlist.  Fault simulators use
    #: one static plan per chunk and revisit chunks in order, so a small
    #: LRU covers them; a caller feeding per-cycle varying plans must
    #: not accumulate compiled code without bound.
    INJECTED_CACHE_MAX = 64

    def injected_fn(self, plan: InjectionPlan) -> Callable:
        key = plan.injection_key()
        fn = self._injected_fns.get(key)
        if fn is None:
            fn = _compile_fn(
                self._emit_eval(stem=plan.stem, branch=plan.branch),
                f"<engine.compiled {self.name} "
                f"chunk:{self._injected_built}>",
            )
            self._injected_built += 1
            self._injected_fns[key] = fn
            while len(self._injected_fns) > self.INJECTED_CACHE_MAX:
                self._injected_fns.popitem(last=False)
        else:
            self._injected_fns.move_to_end(key)
        return fn


@register_engine
class CompiledEngine(EngineBase):
    """Code-generating backend: straight-line bitwise Python per netlist."""

    name = "compiled"

    def _build(self, netlist: Netlist) -> _CompiledProgram:
        return _CompiledProgram(netlist)

    def eval_full(
        self, netlist: Netlist, words: dict[int, int], mask: int
    ) -> dict[int, int]:
        return self._program(netlist).full_fn()(words, mask)

    def _cone_diff(
        self, program: _CompiledProgram, origin: int, word: int,
        good: dict[int, int], mask: int,
    ) -> int:
        return program.cone_fn(origin)(good, word, mask)

    def eval_injected(
        self, netlist: Netlist, plan: InjectionPlan,
        words: dict[int, int], mask: int,
    ) -> dict[int, int]:
        return self._program(netlist).injected_fn(plan)(words, mask)
