"""The ``interp`` backend: per-gate :func:`eval_gate` dispatch.

This is the seed implementation extracted verbatim from the simulators
and kept as the reference every other backend is pinned against: a topo
walk with enum dispatch for good-machine evaluation, an event-driven
level-ordered cone walk (with early exit when the frontier dies out)
for single-fault propagation, and per-gate override lookups for
fault-parallel injected evaluation.
"""

from __future__ import annotations

import heapq
import weakref

from repro.engine.base import EngineBase, InjectionPlan, register_engine
from repro.netlist.cells import eval_gate
from repro.netlist.levelize import levelize, topo_gates
from repro.netlist.netlist import Gate, Netlist


class _InterpProgram:
    """Per-netlist orderings, computed once and shared by every call.

    The netlist is referenced weakly (the engine's program cache must
    not extend its lifetime); the lazy properties dereference it, which
    is always safe because every caller holds the netlist itself.
    """

    def __init__(self, netlist: Netlist):
        self._netlist_ref = weakref.ref(netlist)
        self.order = topo_gates(netlist)
        self.outputs = netlist.output_bits
        self.output_set = frozenset(self.outputs)
        self._levels: dict[int, int] | None = None
        self._fanout: dict[int, list[tuple[Gate, int]]] | None = None

    @property
    def netlist(self) -> Netlist | None:
        return self._netlist_ref()

    @property
    def levels(self) -> dict[int, int]:
        if self._levels is None:
            self._levels = levelize(self.netlist)
        return self._levels

    @property
    def fanout(self) -> dict[int, list[tuple[Gate, int]]]:
        if self._fanout is None:
            self._fanout = self.netlist.fanout_map()
        return self._fanout


@register_engine
class InterpEngine(EngineBase):
    """Reference backend: per-gate enum dispatch (the seed code path)."""

    name = "interp"

    def _build(self, netlist: Netlist) -> _InterpProgram:
        return _InterpProgram(netlist)

    def eval_full(
        self, netlist: Netlist, words: dict[int, int], mask: int
    ) -> dict[int, int]:
        program = self._program(netlist)
        words = dict(words)
        for gate in program.order:
            words[gate.output] = eval_gate(
                gate.gate_type, [words[n] for n in gate.inputs], mask
            )
        return words

    def _cone_diff(
        self, program: _InterpProgram, origin: int, word: int,
        good: dict[int, int], mask: int,
    ) -> int:
        levels, fanout = program.levels, program.fanout
        faulty: dict[int, int] = {origin: word}
        heap: list[tuple[int, int, Gate]] = []
        queued: set[int] = set()

        def enqueue(gate: Gate) -> None:
            if gate.gid not in queued:
                queued.add(gate.gid)
                heapq.heappush(heap, (levels[gate.output], gate.gid, gate))

        for gate, _pin in fanout.get(origin, ()):
            enqueue(gate)

        while heap:
            _level, _gid, gate = heapq.heappop(heap)
            queued.discard(gate.gid)
            inputs = [faulty.get(n, good[n]) for n in gate.inputs]
            out_word = eval_gate(gate.gate_type, inputs, mask)
            previous = faulty.get(gate.output, good[gate.output])
            if out_word == previous:
                continue
            faulty[gate.output] = out_word
            for load, _pin in fanout.get(gate.output, ()):
                enqueue(load)

        detect = 0
        for nid in program.outputs:
            if nid in faulty:
                detect |= faulty[nid] ^ good[nid]
        return detect

    def eval_injected(
        self, netlist: Netlist, plan: InjectionPlan,
        words: dict[int, int], mask: int,
    ) -> dict[int, int]:
        program = self._program(netlist)
        words = dict(words)
        for nid, (clear, setm) in plan.stem.items():
            if nid in words:
                words[nid] = (words[nid] & ~clear) | setm
        branch = plan.branch
        for gate in program.order:
            if branch:
                inputs = []
                for pin, nid in enumerate(gate.inputs):
                    word = words[nid]
                    override = branch.get((gate.gid, pin))
                    if override is not None:
                        clear, setm = override
                        word = (word & ~clear) | setm
                    inputs.append(word)
            else:
                inputs = [words[nid] for nid in gate.inputs]
            out = eval_gate(gate.gate_type, inputs, mask)
            override = plan.stem.get(gate.output)
            if override is not None:
                clear, setm = override
                out = (out & ~clear) | setm
            words[gate.output] = out
        return words
