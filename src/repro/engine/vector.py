"""The ``vector`` backend: bit-packed word-parallel evaluation.

Net words are transposed into fixed-width machine words — numpy
``uint64`` arrays of shape ``(rows, words)`` per net, lane *i* of row
*r* riding bit ``i % 64`` of word ``i // 64``.  Three ideas, in the
spirit of classic parallel-pattern single-fault propagation (PPSFP /
PROOFS), push throughput past the per-netlist codegen of the
``compiled`` backend:

* **Segmented kernels** — ``_build`` levelizes the netlist once and
  groups gates into ``(level, gate type, arity)`` segments with
  precomputed gather/scatter index arrays, so one pass over the design
  costs a handful of numpy calls per segment instead of per-gate
  Python dispatch.
* **Row-parallel fault batching** — ``fault_diff_batch`` evaluates a
  whole chunk of faulty machines in one segmented pass: row *r* is
  fault *r* (stem/branch injections applied as per-row array
  rewrites), lane *i* is pattern *i*, and the primary-output
  difference words of the whole chunk fall out of a single reduction.
  :class:`repro.fault.CombFaultSimulator` feeds its entire collapsed
  fault list through this path.
* **Wide lane words** — ``eval_injected`` packs any number of
  fault-machine lanes into ``ceil(lanes / 64)`` words, and the engine
  advertises :attr:`VectorEngine.lane_batch` so
  :class:`repro.fault.SeqFaultSimulator` batches several chunks of
  ``fault_lanes`` machines into every call, amortizing the per-chunk
  and per-cycle Python overhead.

When numpy is unavailable the backend falls back to the same
algorithms over Python big-ints — batched rows are packed side by side
at a fixed word stride inside one arbitrary-precision integer, so the
word-parallelism survives without the dependency.  Either way every
result is bit-identical to the ``interp`` reference (bitwise gate
functions are lane-local, and lanes beyond the caller's mask are
masked away on extraction); the differential property suite pins it.
"""

from __future__ import annotations

import weakref

from repro.engine.base import EngineBase, InjectionPlan, register_engine
from repro.errors import FaultSimError
from repro.netlist.cells import GateType, eval_gate
from repro.netlist.levelize import levelize, topo_gates
from repro.netlist.netlist import Gate, Netlist

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatched tests
    _np = None

#: Lanes per packed machine word.
WORD_BITS = 64

#: All-ones fill for a stuck-1 row rewrite (extraction masks the tail).
_ONES = (1 << WORD_BITS) - 1

#: uint64 cells (nets x rows x words) per batched numpy pass; bounds the
#: peak size of the value array when chunking a large fault list.
_BATCH_CELLS = 1 << 21

#: Bits per batched big-int pass of the numpy-absent fallback.
_BATCH_BITS = 1 << 16

#: Lane count below which injected evaluation stays on Python big-ints:
#: a handful of 64-bit words per net is faster as one int operation
#: than as a numpy call.  (Wide chunks come from ``lane_batch``.)
_NUMPY_LANES = 512


def _word_count(mask: int) -> int:
    """Packed words needed to hold every lane of ``mask``."""
    return max(1, (mask.bit_length() + WORD_BITS - 1) // WORD_BITS)


def _pack(value: int, width: int):
    """``value`` as a little-endian uint64 array of ``width`` words."""
    return _np.frombuffer(
        value.to_bytes(width * 8, "little"), dtype="<u8"
    )


def _unpack(row) -> int:
    """Inverse of :func:`_pack` for one ``(width,)`` row."""
    return int.from_bytes(row.tobytes(), "little")


def _mask_op(entries, width: int):
    """A bulk ``target[idx] = (target[idx] & ~clear) | set`` rewrite.

    ``entries`` is ``[(index, clear, set), ...]`` with integer lane
    masks; one op rewrites every entry in a single fancy-indexed numpy
    statement, so injection cost does not scale with per-net calls.
    """
    full = (1 << (width * WORD_BITS)) - 1
    idx = _np.array([entry[0] for entry in entries], dtype=_np.intp)
    inv_clear = _np.array(
        [_pack(~entry[1] & full, width) for entry in entries]
    ).reshape(len(entries), 1, width)
    set_arr = _np.array(
        [_pack(entry[2], width) for entry in entries]
    ).reshape(len(entries), 1, width)
    return ("mask", idx, inv_clear, set_arr)


def _fill_op(entries, width: int):
    """A bulk ``target[idx, row] = stuck`` rewrite (one row per fault)."""
    idx = _np.array([entry[0] for entry in entries], dtype=_np.intp)
    rows = _np.array([entry[1] for entry in entries], dtype=_np.intp)
    fills = _np.zeros((len(entries), width), dtype="<u8")
    fills[[bool(entry[2]) for entry in entries]] = _ONES
    return ("fill", idx, rows, fills)


def _dense_op(entries, size: int, width: int):
    """Whole-block ``(target & ~clear) | set`` arrays for one segment.

    Positions without an override keep identity masks, so the rewrite
    is two dense elementwise ops — no fancy indexing in the per-cycle
    hot loop, however many faults are injected.
    """
    full = (1 << (width * WORD_BITS)) - 1
    inv_clear = _np.full((size, 1, width), _ONES, dtype="<u8")
    set_arr = _np.zeros((size, 1, width), dtype="<u8")
    for pos, clear, setm in entries:
        inv_clear[pos, 0, :] = _pack(~clear & full, width)
        set_arr[pos, 0, :] = _pack(setm, width)
    return ("dense", inv_clear, set_arr)


def _apply_op(op, target) -> None:
    """Apply one bulk rewrite in place (``target``: (k, rows, words))."""
    kind = op[0]
    if kind == "dense":
        target &= op[1]
        target |= op[2]
    elif kind == "mask":
        _kind, idx, inv_clear, set_arr = op
        target[idx] = (target[idx] & inv_clear) | set_arr
    else:
        _kind, idx, rows, fills = op
        target[idx, rows] = fills


class _Segment:
    """One ``(level, gate type, arity)`` group of independent gates.

    Gates within a segment share their type and arity and never feed
    each other (same level), so the whole group evaluates as one
    gather / bitwise-reduce / scatter kernel.
    """

    __slots__ = ("gate_type", "arity", "gids", "inputs", "outputs",
                 "np_in", "np_out")

    def __init__(self, gate_type: GateType, arity: int, gates: list[Gate]):
        self.gate_type = gate_type
        self.arity = arity
        self.gids = [gate.gid for gate in gates]
        self.inputs = [gate.inputs for gate in gates]
        self.outputs = [gate.output for gate in gates]
        self.np_in = None
        self.np_out = None

    def index_arrays(self):
        """Gather/scatter index arrays, built on first numpy use."""
        if self.np_out is None:
            self.np_in = _np.array(
                [[ins[pin] for ins in self.inputs]
                 for pin in range(self.arity)],
                dtype=_np.intp,
            ).reshape(self.arity, len(self.outputs))
            self.np_out = _np.array(self.outputs, dtype=_np.intp)
        return self.np_in, self.np_out


class _VectorProgram:
    """Per-netlist precomputation shared by every call.

    The netlist is referenced weakly (the engine's program cache must
    not extend its lifetime); everything the kernels need repeatedly —
    topo order, level segments, source/output index sets — is captured
    eagerly, fanout and per-origin cones lazily.
    """

    def __init__(self, netlist: Netlist):
        self._netlist_ref = weakref.ref(netlist)
        self.name = netlist.name
        self.num_nets = netlist.num_nets
        self.order = topo_gates(netlist)
        self.sources = list(netlist.input_bits)
        self.sources.extend(dff.q for dff in netlist.dffs)
        self.outputs = netlist.output_bits
        self.output_set = frozenset(self.outputs)
        self.computed = [gate.output for gate in self.order]
        levels = levelize(netlist)
        groups: dict[tuple, list[Gate]] = {}
        for gate in self.order:
            key = (levels[gate.output], gate.gate_type.value,
                   len(gate.inputs))
            groups.setdefault(key, []).append(gate)
        self.segments = [
            _Segment(groups[key][0].gate_type, key[2], groups[key])
            for key in sorted(groups)
        ]
        #: net id -> (segment index, position) of its driving gate.
        self.driver_at: dict[int, tuple[int, int]] = {}
        #: gate gid -> (segment index, position within the segment).
        self.gate_seg: dict[int, tuple[int, int]] = {}
        for si, segment in enumerate(self.segments):
            for pos, (gid, out) in enumerate(
                zip(segment.gids, segment.outputs)
            ):
                self.gate_seg[gid] = (si, pos)
                self.driver_at[out] = (si, pos)
        self._np_outputs = None
        self._fanout: dict[int, list[tuple[Gate, int]]] | None = None
        self._cones: dict[int, list[Gate]] = {}

    @property
    def netlist(self) -> Netlist | None:
        return self._netlist_ref()

    def np_outputs(self):
        if self._np_outputs is None:
            self._np_outputs = _np.array(self.outputs, dtype=_np.intp)
        return self._np_outputs

    def cone(self, origin: int) -> list[Gate]:
        """Topo-ordered gates downstream of ``origin`` (cached)."""
        gates = self._cones.get(origin)
        if gates is None:
            if self._fanout is None:
                self._fanout = self.netlist.fanout_map()
            cone_gids: set[int] = set()
            frontier = [origin]
            seen = {origin}
            while frontier:
                nid = frontier.pop()
                for gate, _pin in self._fanout.get(nid, ()):
                    if gate.gid not in cone_gids:
                        cone_gids.add(gate.gid)
                        if gate.output not in seen:
                            seen.add(gate.output)
                            frontier.append(gate.output)
            gates = [g for g in self.order if g.gid in cone_gids]
            self._cones[origin] = gates
        return gates


def _scalar_pass(
    program: _VectorProgram, words: dict[int, int], mask: int,
    stem: dict | None = None, branch: dict | None = None,
) -> dict[int, int]:
    """One big-int pass over the gates, mirroring ``interp`` exactly.

    ``stem``/``branch`` carry ``(clear, set)`` integer mask pairs; the
    batched fallback widens them to row-stride masks so several faulty
    machines ride one arbitrary-precision integer.
    """
    values = dict(words)
    if stem:
        for nid, (clear, setm) in stem.items():
            if nid in values:
                values[nid] = (values[nid] & ~clear) | setm
    for gate in program.order:
        if branch:
            ins = []
            for pin, nid in enumerate(gate.inputs):
                word = values[nid]
                override = branch.get((gate.gid, pin))
                if override is not None:
                    word = (word & ~override[0]) | override[1]
                ins.append(word)
        else:
            ins = [values[nid] for nid in gate.inputs]
        out = eval_gate(gate.gate_type, ins, mask)
        if stem:
            override = stem.get(gate.output)
            if override is not None:
                out = (out & ~override[0]) | override[1]
        values[gate.output] = out
    return values


@register_engine
class VectorEngine(EngineBase):
    """Bit-packed word-parallel backend (numpy lanes, big-int fallback)."""

    name = "vector"

    #: Chunks of ``fault_lanes`` machines the sequential fault simulator
    #: packs into each ``eval_injected`` call (see
    #: :attr:`repro.engine.EngineBase.lane_batch`).
    lane_batch = 8

    def _build(self, netlist: Netlist) -> _VectorProgram:
        return _VectorProgram(netlist)

    # -- segmented numpy kernel ----------------------------------------------

    def _build_ops(self, program: _VectorProgram, stem_items, branch_items,
                   make_seg_op, make_pre_op):
        """Group injection entries into per-segment bulk rewrites.

        ``stem_items`` is ``[(net id, x, y)]`` and ``branch_items``
        ``[((gid, pin), x, y)]`` where ``(x, y)`` is whatever the op
        builders consume (lane clear/set masks, or row/stuck pairs).
        Returns ``(pre_ops, stem_ops, branch_ops)``: ops on the value
        array (net-indexed) for source-net stems before the pass, ops
        on a segment's computed block (position-indexed) applied before
        its scatter, and per-segment ``(pin, op)`` rewrites of gathered
        input views.
        """
        pre: list = []
        seg_stems: dict[int, list] = {}
        for nid, x, y in stem_items:
            at = program.driver_at.get(nid)
            if at is None:
                if 0 <= nid < program.num_nets:
                    pre.append((nid, x, y))
            else:
                si, pos = at
                seg_stems.setdefault(si, []).append((pos, x, y))
        seg_branch: dict[int, dict[int, list]] = {}
        for (gid, pin), x, y in branch_items:
            at = program.gate_seg.get(gid)
            if at is None or not isinstance(pin, int):
                continue
            si, pos = at
            if 0 <= pin < program.segments[si].arity:
                seg_branch.setdefault(si, {}).setdefault(pin, []).append(
                    (pos, x, y)
                )
        pre_ops = [make_pre_op(pre)] if pre else []
        stem_ops = {
            si: [make_seg_op(si, entries)]
            for si, entries in seg_stems.items()
        }
        branch_ops = {
            si: [(pin, make_seg_op(si, entries))
                 for pin, entries in by_pin.items()]
            for si, by_pin in seg_branch.items()
        }
        return pre_ops, stem_ops, branch_ops

    def _run_segments(self, program: _VectorProgram, vals,
                      pre_ops=(), stem_ops=None, branch_ops=None) -> None:
        """Evaluate every segment over ``vals`` (nets x rows x words).

        ``stem_ops[si]`` rewrites segment ``si``'s computed block just
        before it is scattered (``pre_ops`` handle source nets, on the
        value array, before the pass); ``branch_ops[si]`` rewrites
        single gates' gathered views of their inputs only.
        """
        for op in pre_ops:
            _apply_op(op, vals)
        stem_ops = stem_ops or {}
        branch_ops = branch_ops or {}
        for si, segment in enumerate(program.segments):
            np_in, np_out = segment.index_arrays()
            gate_type = segment.gate_type
            if segment.arity == 0:
                ops = stem_ops.get(si)
                fill = _ONES if gate_type is GateType.CONST1 else 0
                if not ops:
                    vals[np_out] = fill
                    continue
                out = _np.full(
                    (len(segment.outputs),) + vals.shape[1:], fill,
                    dtype="<u8",
                )
            else:
                gathered = vals[np_in]
                for pin, op in branch_ops.get(si, ()):
                    _apply_op(op, gathered[pin])
                if gate_type is GateType.AND:
                    out = _np.bitwise_and.reduce(gathered, axis=0)
                elif gate_type is GateType.OR:
                    out = _np.bitwise_or.reduce(gathered, axis=0)
                elif gate_type is GateType.XOR:
                    out = _np.bitwise_xor.reduce(gathered, axis=0)
                elif gate_type is GateType.NAND:
                    out = ~_np.bitwise_and.reduce(gathered, axis=0)
                elif gate_type is GateType.NOR:
                    out = ~_np.bitwise_or.reduce(gathered, axis=0)
                elif gate_type is GateType.XNOR:
                    out = ~_np.bitwise_xor.reduce(gathered, axis=0)
                elif gate_type is GateType.NOT:
                    out = ~gathered[0]
                elif gate_type is GateType.BUF:
                    out = gathered[0]
                else:
                    raise FaultSimError(
                        f"cannot vectorize gate type {gate_type!r}"
                    )
            for op in stem_ops.get(si, ()):
                _apply_op(op, out)
            vals[np_out] = out

    def _fill_sources(self, program: _VectorProgram, rows: int, width: int,
                      words: dict[int, int], mask: int):
        """A zeroed value array with source nets broadcast to every row."""
        vals = _np.zeros((program.num_nets, rows, width), dtype="<u8")
        for nid in program.sources:
            word = words.get(nid)
            if word is not None:
                vals[nid, :, :] = _pack(word & mask, width)
        return vals

    # -- full evaluation -----------------------------------------------------

    def eval_full(
        self, netlist: Netlist, words: dict[int, int], mask: int
    ) -> dict[int, int]:
        program = self._program(netlist)
        if _np is None or mask.bit_length() <= WORD_BITS:
            return _scalar_pass(program, words, mask)
        width = _word_count(mask)
        vals = self._fill_sources(program, 1, width, words, mask)
        self._run_segments(program, vals)
        result = dict(words)
        for nid in program.computed:
            result[nid] = _unpack(vals[nid, 0]) & mask
        return result

    # -- injected evaluation -------------------------------------------------

    def _plan_ops(self, program: _VectorProgram, plan: InjectionPlan,
                  width: int):
        """The plan's packed bulk rewrites (memoized on the plan).

        A chunk is re-simulated every cycle, so the packed arrays are
        built once per ``(plan, lane width)`` and stashed in the plan's
        engine memo.
        """
        cached = plan.memo.get(self.name)
        if cached is not None and cached[0] == width:
            return cached[1]
        ops = self._build_ops(
            program,
            [(nid, clear, setm)
             for nid, (clear, setm) in plan.stem.items()],
            [(key, clear, setm)
             for key, (clear, setm) in plan.branch.items()],
            lambda si, entries: _dense_op(
                entries, len(program.segments[si].outputs), width
            ),
            lambda entries: _mask_op(entries, width),
        )
        plan.memo[self.name] = (width, ops)
        return ops

    def eval_injected(
        self, netlist: Netlist, plan: InjectionPlan,
        words: dict[int, int], mask: int,
    ) -> dict[int, int]:
        program = self._program(netlist)
        if _np is None or mask.bit_length() < _NUMPY_LANES:
            return _scalar_pass(
                program, words, mask, stem=plan.stem, branch=plan.branch
            )
        width = _word_count(mask)
        pre_ops, stem_ops, branch_ops = self._plan_ops(program, plan, width)
        vals = self._fill_sources(program, 1, width, words, mask)
        self._run_segments(program, vals, pre_ops, stem_ops, branch_ops)
        result = dict(words)
        for nid, (clear, setm) in plan.stem.items():
            if nid in result:
                result[nid] = (result[nid] & ~clear) | setm
        for nid in program.computed:
            result[nid] = _unpack(vals[nid, 0]) & mask
        return result

    # -- fault propagation ---------------------------------------------------

    def _cone_diff(
        self, program: _VectorProgram, origin: int, word: int,
        good: dict[int, int], mask: int,
    ) -> int:
        """Single-fault path: big-int evaluation over the cached cone."""
        faulty: dict[int, int] = {origin: word}
        for gate in program.cone(origin):
            ins = [faulty.get(nid, good[nid]) for nid in gate.inputs]
            faulty[gate.output] = eval_gate(gate.gate_type, ins, mask)
        detect = 0
        for nid in program.outputs:
            if nid in faulty:
                detect |= faulty[nid] ^ good[nid]
        return detect & mask

    @staticmethod
    def _check_fault(netlist: Netlist, fault) -> None:
        """Mirror the per-fault validation of ``EngineBase.fault_diff``."""
        if fault.is_stem:
            return
        if fault.gate is None or not 0 <= fault.gate < len(netlist.gates):
            raise FaultSimError(
                f"fault references unknown gate {fault.gate}"
            )

    def fault_diff_batch(
        self, netlist: Netlist, faults: list, good: dict[int, int],
        mask: int,
    ) -> list[int]:
        """Row-parallel fault propagation: one segmented pass per batch.

        Each fault becomes one row of the value array; its injection is
        a per-row rewrite (whole rows forced to the stuck value, which
        is exact because bitwise gate functions are lane-local and the
        caller's mask bounds extraction).  Unlike the cone-walking
        single-fault path, every row re-evaluates the full netlist —
        the batched kernels make that cheaper than per-fault cones.
        """
        if not faults:
            return []
        program = self._program(netlist)
        for fault in faults:
            self._check_fault(netlist, fault)
        if _np is not None and (len(faults) > 1 or mask.bit_length() > 64):
            return self._diff_batch_numpy(program, faults, good, mask)
        return self._diff_batch_scalar(program, faults, good, mask)

    def _diff_batch_numpy(
        self, program: _VectorProgram, faults: list, good: dict[int, int],
        mask: int,
    ) -> list[int]:
        width = _word_count(mask)
        step = max(1, _BATCH_CELLS // max(1, program.num_nets * width))
        good_out = [
            _pack(good[nid] & mask, width) for nid in program.outputs
        ]
        good_arr = _np.array(good_out).reshape(
            len(program.outputs), 1, width
        ) if good_out else None
        detect: list[int] = []
        for start in range(0, len(faults), step):
            chunk = faults[start : start + step]
            if good_arr is None:
                detect.extend(0 for _ in chunk)
                continue
            stem_items = []
            branch_items = []
            for row, fault in enumerate(chunk):
                if fault.is_stem:
                    stem_items.append((fault.net, row, fault.stuck))
                else:
                    branch_items.append(
                        ((fault.gate, fault.pin), row, fault.stuck)
                    )
            pre_ops, stem_ops, branch_ops = self._build_ops(
                program, stem_items, branch_items,
                lambda _si, entries: _fill_op(entries, width),
                lambda entries: _fill_op(entries, width),
            )
            vals = self._fill_sources(
                program, len(chunk), width, good, mask
            )
            self._run_segments(
                program, vals, pre_ops, stem_ops, branch_ops
            )
            diff = _np.bitwise_or.reduce(
                vals[program.np_outputs()] ^ good_arr, axis=0
            )
            detect.extend(
                _unpack(diff[row]) & mask for row in range(len(chunk))
            )
        return detect

    def _diff_batch_scalar(
        self, program: _VectorProgram, faults: list, good: dict[int, int],
        mask: int,
    ) -> list[int]:
        """Numpy-absent fallback: rows packed side by side in one big int."""
        stride = _word_count(mask) * WORD_BITS
        step = max(1, _BATCH_BITS // stride)
        detect: list[int] = []
        for start in range(0, len(faults), step):
            chunk = faults[start : start + step]
            rows = len(chunk)
            replicate = sum(1 << (row * stride) for row in range(rows))
            big_mask = (1 << (rows * stride)) - 1
            stem: dict[int, tuple[int, int]] = {}
            branch: dict[tuple, tuple[int, int]] = {}
            for row, fault in enumerate(chunk):
                key = (
                    fault.net if fault.is_stem
                    else (fault.gate, fault.pin)
                )
                table = stem if fault.is_stem else branch
                clear, setm = table.get(key, (0, 0))
                clear |= mask << (row * stride)
                if fault.stuck:
                    setm |= mask << (row * stride)
                table[key] = (clear, setm)
            words = {
                nid: (good[nid] & mask) * replicate
                for nid in program.sources if nid in good
            }
            values = _scalar_pass(
                program, words, big_mask, stem=stem, branch=branch
            )
            diff = 0
            for nid in program.outputs:
                diff |= values[nid] ^ ((good[nid] & mask) * replicate)
            detect.extend(
                (diff >> (row * stride)) & mask for row in range(rows)
            )
        return detect
