"""The ``Engine`` protocol and the named backend registry.

A netlist-simulation *engine* is the unit every fault-simulation and
logic-simulation front end (:class:`repro.netlist.CombSimulator`,
:class:`repro.fault.CombFaultSimulator`, ...) delegates its hot loops
to.  Engines are pluggable by name — mirroring
:mod:`repro.sampling.registry` — so the campaign pipeline and the CLI
can select a backend from configuration without importing concrete
classes.

An engine implements three operations, all over bit-lane words (lane
*i* of every net word belongs to pattern / fault-machine *i*):

* ``eval_full(netlist, words, mask)`` — evaluate every gate of the good
  machine over input (and DFF state) words; returns the complete
  net-id -> word map, pass-through entries included.
* ``fault_diff(netlist, fault, good, mask)`` — evaluate one faulty
  machine over the fault's output cone against the good words; returns
  the primary-output difference word (bit *i* set iff pattern *i*
  detects the fault).
* ``eval_injected(netlist, plan, words, mask)`` — full evaluation with
  an :class:`InjectionPlan`'s stem/branch overrides applied
  (fault-parallel sequential simulation; one faulty machine per lane).

Determinism contract: for identical inputs every registered engine must
produce **bit-identical** words to the ``interp`` reference backend —
the result cache and the paper's tables may never depend on which
backend computed them.  A differential property test pins each backend
to the reference.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from repro.errors import EngineError, FaultSimError
from repro.obs import metrics as _metrics
from repro.util.registry import Registry

# NOTE: this module must not import repro.netlist at module level — the
# simulators in repro.netlist.simulate import the engine registry, and
# the package __init__ chain would become circular.  Engine *backends*
# (interp, compiled) may: by the time the package __init__ imports
# them, the registry symbols they need are already bound.

#: The backend used when none is selected explicitly.
DEFAULT_ENGINE = "compiled"


@dataclass
class InjectionPlan:
    """Pre-compiled stuck-at injection masks for one chunk of faults.

    Each mask pair ``(clear, set)`` rewrites a word as
    ``(word & ~clear) | set`` — lanes in ``clear`` are forced to their
    lane's stuck value.
    """

    faults: list
    #: net id -> (clear_mask, set_mask) applied after the net is computed
    stem: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: (gate gid, pin) -> (clear_mask, set_mask) on that input view
    branch: dict[tuple[int, int], tuple[int, int]] = field(
        default_factory=dict
    )
    #: dff fid -> (clear_mask, set_mask) on its D input view
    dff_branch: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: Scratch slot engines may use to memoize per-plan precomputation
    #: (e.g. packed mask arrays, keyed by engine name).  Never part of
    #: the plan's identity.
    memo: dict = field(default_factory=dict, repr=False, compare=False)

    def injection_key(self) -> tuple:
        """Hashable identity of the word-rewriting overrides.

        ``dff_branch`` is excluded: it acts at the clock edge, outside
        combinational evaluation, so engines may share work across plans
        that differ only there.
        """
        return (
            tuple(sorted(self.stem.items())),
            tuple(sorted(self.branch.items())),
        )


class EngineBase:
    """Shared per-netlist program cache and fault dispatch.

    Subclasses provide ``_build(netlist)`` returning a program object
    (whatever per-netlist precomputation the backend needs; it must
    expose ``netlist`` and ``output_set`` attributes) and
    ``_cone_diff(program, origin, word, good, mask)`` evaluating the
    faulty machine downstream of ``origin`` seeded with ``word``.
    """

    name: str = ""

    #: How many chunks of the configured ``fault_lanes`` width the
    #: backend wants packed into one ``eval_injected`` call.  Word-wide
    #: backends raise this so :class:`repro.fault.SeqFaultSimulator`
    #: amortizes its per-chunk work over more fault machines; results
    #: are lane-layout independent by contract.
    lane_batch: int = 1

    def __init__(self) -> None:
        # Keyed by id(); programs hold their netlist only weakly and a
        # finalizer evicts the entry when the netlist dies, so a shared
        # engine instance never pins netlists (or their compiled
        # programs) beyond their own lifetime.
        self._programs: dict[int, object] = {}

    def _program(self, netlist: Netlist):
        key = id(netlist)
        program = self._programs.get(key)
        if program is None or program.netlist is not netlist:
            # Builds are the rare event worth counting on this hot
            # lookup path (per-call counters live in the fault sims).
            m = _metrics.active()
            if m.enabled:
                with m.time(f"engine.{self.name}.program_build.seconds"):
                    program = self._build(netlist)
                m.counter(f"engine.{self.name}.program_builds")
            else:
                program = self._build(netlist)
            self._programs[key] = program
            weakref.finalize(netlist, self._programs.pop, key, None)
        return program

    def _build(self, netlist: Netlist):
        raise NotImplementedError

    def _cone_diff(self, program, origin: int, word: int,
                   good: dict[int, int], mask: int) -> int:
        raise NotImplementedError

    def eval_full(
        self, netlist: Netlist, words: dict[int, int], mask: int
    ) -> dict[int, int]:
        raise NotImplementedError

    def eval_injected(
        self, netlist: Netlist, plan: InjectionPlan,
        words: dict[int, int], mask: int,
    ) -> dict[int, int]:
        raise NotImplementedError

    def fault_diff(
        self, netlist: Netlist, fault, good: dict[int, int], mask: int
    ) -> int:
        """Forward-propagate one fault; returns the PO difference word."""
        from repro.netlist.cells import eval_gate

        program = self._program(netlist)
        stuck_word = mask if fault.stuck else 0
        if fault.is_stem:
            if good.get(fault.net) == stuck_word:
                return 0  # fault never activated anywhere
            origin, word = fault.net, stuck_word
        else:
            # Branch fault: only one gate sees the stuck value.
            gates = netlist.gates
            if fault.gate is None or not 0 <= fault.gate < len(gates):
                raise FaultSimError(
                    f"fault references unknown gate {fault.gate}"
                )
            target = gates[fault.gate]
            inputs = []
            for pin, nid in enumerate(target.inputs):
                view = good[nid]
                if pin == fault.pin:
                    view = stuck_word
                inputs.append(view)
            word = eval_gate(target.gate_type, inputs, mask)
            if word == good[target.output]:
                return 0
            origin = target.output
        detect = self._cone_diff(program, origin, word, good, mask)
        # A stem fault directly on an output net detects wherever the
        # good value differs from the stuck value.
        if fault.is_stem and fault.net in program.output_set:
            detect |= good[fault.net] ^ stuck_word
        return detect & mask

    def fault_diff_batch(
        self, netlist: Netlist, faults: list, good: dict[int, int],
        mask: int,
    ) -> list[int]:
        """PO difference words for ``faults``, one per fault.

        The default simply loops :meth:`fault_diff`; backends that can
        evaluate many faulty machines per pass (the ``vector`` backend
        batches one fault per row word) override it.  The per-fault
        words must be identical to the looped reference either way.
        """
        return [
            self.fault_diff(netlist, fault, good, mask) for fault in faults
        ]


# -- registry ----------------------------------------------------------------

#: name -> engine class.
ENGINES: dict[str, type] = {}


#: Shared instance per registered name (see :func:`build_engine`).
_SHARED: dict[str, object] = {}


_REGISTRY = Registry(
    "simulation engine", EngineError, entries=ENGINES,
    # A replaced backend's shared instance (and its program caches)
    # must not outlive its registration.
    on_replace=lambda name: _SHARED.pop(name, None),
)


def register_engine(cls: type | None = None, *, replace: bool = False):
    """Class decorator adding ``cls`` to the registry under ``cls.name``.

    Registering a *different* class under an already-taken name raises
    :class:`EngineError` — a silent overwrite would let a plug-in
    hijack a built-in backend by accident.  Pass ``replace=True``
    (``register_engine(cls, replace=True)``) to overwrite explicitly;
    re-registering the same class is always a no-op, so module
    re-imports stay idempotent (and the shared instance survives).
    """
    return _REGISTRY.register(cls, replace=replace)


def get_engine(name: str) -> type:
    """Look up a registered engine class by name."""
    return _REGISTRY.get(name)


def engine_names() -> tuple[str, ...]:
    return _REGISTRY.names()


def build_engine(engine=None):
    """Resolve an engine selection into an engine instance.

    ``None`` means :data:`DEFAULT_ENGINE`.  A string resolves to one
    *shared* instance per name, so every simulator in the process reuses
    the same per-netlist program cache — the compiled backend compiles a
    netlist once no matter how many simulators run it.  (Cache entries
    reference their netlist weakly and are evicted when it is
    collected, so the shared instance never extends netlist lifetimes.)
    Anything else is assumed to already be an engine instance and
    passed through, giving callers a private cache when they want one.
    """
    if engine is None:
        engine = DEFAULT_ENGINE
    if isinstance(engine, str):
        instance = _SHARED.get(engine)
        if instance is None:
            instance = get_engine(engine)()
            _SHARED[engine] = instance
        return instance
    return engine
