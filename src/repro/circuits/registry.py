"""Circuit registry: metadata + lazy parsing/elaboration with caching."""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits import iscas85, itc99
from repro.errors import ConfigError
from repro.hdl import load_design
from repro.hdl.design import Design


@dataclass(frozen=True)
class CircuitInfo:
    """Static description of one benchmark circuit."""

    name: str
    family: str            # "itc99" / "iscas85"
    sequential: bool
    has_constants: bool    # whether the CR operator applies (paper, sec. 3)
    description: str
    source: str


_CIRCUITS: dict[str, CircuitInfo] = {}


def _register(info: CircuitInfo) -> None:
    _CIRCUITS[info.name] = info


_register(
    CircuitInfo(
        name="b01",
        family="itc99",
        sequential=True,
        has_constants=True,
        description="serial flow comparator / adder FSM (8 states)",
        source=itc99.B01_SOURCE,
    )
)
_register(
    CircuitInfo(
        name="b02",
        family="itc99",
        sequential=True,
        has_constants=False,
        description="serial BCD-digit recogniser FSM (enum states)",
        source=itc99.B02_SOURCE,
    )
)
_register(
    CircuitInfo(
        name="b03",
        family="itc99",
        sequential=True,
        has_constants=True,
        description="rotating-priority resource arbiter",
        source=itc99.B03_SOURCE,
    )
)
_register(
    CircuitInfo(
        name="b06",
        family="itc99",
        sequential=True,
        has_constants=False,
        description="interrupt-handler control FSM",
        source=itc99.B06_SOURCE,
    )
)
_register(
    CircuitInfo(
        name="c17",
        family="iscas85",
        sequential=False,
        has_constants=False,
        description="six-NAND toy circuit",
        source=iscas85.C17_SOURCE,
    )
)
_register(
    CircuitInfo(
        name="c432",
        family="iscas85",
        sequential=False,
        has_constants=True,
        description="27-channel interrupt controller",
        source=iscas85.C432_SOURCE,
    )
)
_register(
    CircuitInfo(
        name="c499",
        family="iscas85",
        sequential=False,
        has_constants=True,
        description="32-bit single-error-correction circuit",
        source=iscas85.C499_SOURCE,
    )
)

_DESIGN_CACHE: dict[str, Design] = {}


def circuit_names() -> list[str]:
    """All registered benchmark names, ITC'99 first."""
    return sorted(
        _CIRCUITS, key=lambda n: (_CIRCUITS[n].family != "itc99", n)
    )


def get_circuit(name: str) -> CircuitInfo:
    try:
        return _CIRCUITS[name]
    except KeyError:
        known = ", ".join(circuit_names())
        raise ConfigError(
            f"unknown circuit {name!r}; known circuits: {known}"
        ) from None


def load_circuit(name: str) -> Design:
    """Parse + analyze a benchmark (cached — the Design is shared).

    Mutation uses patch tables and never modifies the tree, so sharing
    one elaborated Design between callers is safe.
    """
    if name not in _DESIGN_CACHE:
        info = get_circuit(name)
        _DESIGN_CACHE[name] = load_design(info.source, name)
    return _DESIGN_CACHE[name]
