"""ITC'99-style sequential benchmark sources (behavioural re-creations).

Each design follows the ITC'99 interface conventions: a ``clock`` input,
an active-high asynchronous ``reset``, and registered outputs driven from
a single clocked process.  The state machines are functional
re-implementations (originals are not redistributable); they preserve
the benchmarks' character — serial-flow FSMs with named integer-state
constants (b01), enumeration-state recognisers (b02), a rotating
arbiter with counters (b03) and an interrupt-style handler (b06) — which
is what the mutation operators act on.
"""

B01_SOURCE = """
-- b01: serial flow comparator / adder FSM (behavioural re-creation).
entity b01 is
  port (
    line1   : in bit;
    line2   : in bit;
    reset   : in bit;
    clock   : in bit;
    outp    : out bit;
    overflw : out bit
  );
end entity b01;

architecture behav of b01 is
  constant st_sum    : integer := 0;
  constant st_carry  : integer := 1;
  constant st_ovf    : integer := 2;
  constant st_drain  : integer := 3;
  constant limit     : integer := 6;
  signal stato : integer range 0 to 7;
  signal cnt   : integer range 0 to 7;
begin
  fsm : process (clock, reset)
  begin
    if reset = '1' then
      stato   <= st_sum;
      cnt     <= 0;
      outp    <= '0';
      overflw <= '0';
    elsif rising_edge(clock) then
      overflw <= '0';
      case stato is
        when 0 =>
          outp <= line1 xor line2;
          if line1 = '1' and line2 = '1' then
            stato <= st_carry;
          else
            stato <= st_sum;
          end if;
          cnt <= 0;
        when 1 =>
          outp <= line1 xnor line2;
          if line1 = '0' and line2 = '0' then
            stato <= st_sum;
          else
            stato <= st_carry;
          end if;
          if cnt < limit then
            cnt <= cnt + 1;
          else
            stato <= st_ovf;
            cnt <= 0;
          end if;
        when 2 =>
          overflw <= '1';
          outp    <= '0';
          stato   <= st_drain;
        when 3 =>
          outp <= '0';
          if line1 = '0' and line2 = '0' then
            stato <= st_sum;
          else
            stato <= st_drain;
          end if;
        when others =>
          stato <= st_sum;
          outp  <= '0';
      end case;
    end if;
  end process fsm;
end architecture behav;
"""

B02_SOURCE = """
-- b02: serial BCD-digit recogniser FSM (behavioural re-creation).
entity b02 is
  port (
    linea : in bit;
    reset : in bit;
    clock : in bit;
    u     : out bit
  );
end entity b02;

architecture behav of b02 is
  type state_t is (s_a, s_b, s_c, s_d, s_e, s_f, s_g);
  signal stato : state_t;
begin
  fsm : process (clock, reset)
  begin
    if reset = '1' then
      stato <= s_a;
      u     <= '0';
    elsif rising_edge(clock) then
      u <= '0';
      case stato is
        when s_a =>
          if linea = '1' then
            stato <= s_b;
          else
            stato <= s_a;
          end if;
        when s_b =>
          if linea = '1' then
            stato <= s_d;
          else
            stato <= s_c;
          end if;
        when s_c =>
          if linea = '1' then
            stato <= s_e;
          else
            stato <= s_f;
          end if;
        when s_d =>
          stato <= s_f;
        when s_e =>
          if linea = '1' then
            stato <= s_g;
          else
            stato <= s_f;
          end if;
        when s_f =>
          u <= '1';
          stato <= s_a;
        when s_g =>
          u <= '1';
          if linea = '1' then
            stato <= s_b;
          else
            stato <= s_a;
          end if;
      end case;
    end if;
  end process fsm;
end architecture behav;
"""

B03_SOURCE = """
-- b03: rotating-priority resource arbiter (behavioural re-creation).
entity b03 is
  port (
    req   : in bit_vector(3 downto 0);
    reset : in bit;
    clock : in bit;
    grant : out bit_vector(3 downto 0);
    busy  : out bit
  );
end entity b03;

architecture behav of b03 is
  constant burst : integer := 2;
  signal turn   : integer range 0 to 3;
  signal owner  : integer range 0 to 3;
  signal timer  : integer range 0 to 3;
  signal active : bit;
begin
  arb : process (clock, reset)
    variable slot   : integer range 0 to 7;
    variable chosen : boolean;
  begin
    if reset = '1' then
      turn   <= 0;
      owner  <= 0;
      timer  <= 0;
      active <= '0';
      grant  <= (others => '0');
      busy   <= '0';
    elsif rising_edge(clock) then
      grant <= (others => '0');
      if active = '1' then
        busy <= '1';
        if timer = 0 then
          active <= '0';
          busy   <= '0';
          turn   <= (owner + 1) mod 4;
        else
          timer <= timer - 1;
          grant(owner) <= '1';
        end if;
      end if;
      if active = '0' then
        chosen := false;
        for i in 0 to 3 loop
          slot := (turn + i) mod 4;
          if not chosen then
            if req(slot) = '1' then
              owner  <= slot;
              active <= '1';
              timer  <= burst;
              grant(slot) <= '1';
              chosen := true;
            end if;
          end if;
        end loop;
        busy <= '0';
      end if;
    end if;
  end process arb;
end architecture behav;
"""

B06_SOURCE = """
-- b06: interrupt-handler control FSM (behavioural re-creation).
entity b06 is
  port (
    cont_eql : in bit;
    cc_mux   : in bit;
    reset    : in bit;
    clock    : in bit;
    uscite   : out bit_vector(1 downto 0);
    enable   : out bit
  );
end entity b06;

architecture behav of b06 is
  type state_t is (s_init, s_wait, s_enin, s_enin_w, s_intr, s_intr_w);
  signal stato : state_t;
begin
  fsm : process (clock, reset)
  begin
    if reset = '1' then
      stato  <= s_init;
      uscite <= "00";
      enable <= '0';
    elsif rising_edge(clock) then
      case stato is
        when s_init =>
          uscite <= "00";
          enable <= '0';
          stato  <= s_wait;
        when s_wait =>
          if cont_eql = '1' then
            stato  <= s_intr;
            uscite <= "01";
          elsif cc_mux = '1' then
            stato  <= s_enin;
            uscite <= "10";
          else
            stato  <= s_wait;
            uscite <= "00";
          end if;
          enable <= '0';
        when s_enin =>
          enable <= '1';
          uscite <= "10";
          if cc_mux = '0' then
            stato <= s_enin_w;
          else
            stato <= s_enin;
          end if;
        when s_enin_w =>
          enable <= '0';
          uscite <= "11";
          stato  <= s_wait;
        when s_intr =>
          enable <= '1';
          uscite <= "01";
          if cont_eql = '0' then
            stato <= s_intr_w;
          else
            stato <= s_intr;
          end if;
        when s_intr_w =>
          enable <= '0';
          uscite <= "11";
          stato  <= s_wait;
      end case;
    end if;
  end process fsm;
end architecture behav;
"""
