"""Benchmark circuit library.

Behavioural re-implementations (in the supported VHDL subset) of the
benchmarks the paper evaluates: ITC'99-style sequential FSMs (b01, b02,
b03, b06) and ISCAS'85-style combinational circuits (c17, c432, c499).
The historical sources/netlists are not redistributable, so these are
functional reconstructions with the documented I/O of each benchmark;
see DESIGN.md section 2 for the substitution rationale.
"""

from repro.circuits.registry import (
    CircuitInfo,
    circuit_names,
    get_circuit,
    load_circuit,
)

__all__ = ["CircuitInfo", "circuit_names", "get_circuit", "load_circuit"]
