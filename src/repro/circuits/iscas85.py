"""ISCAS'85-style combinational benchmark sources.

* ``c17`` — the six-NAND toy circuit, written exactly as its netlist.
* ``c432`` — 27-channel interrupt controller (behavioural reconstruction
  after Hansen/Yalcin/Hayes' reverse-engineered description): three 9-bit
  request buses with bus priority A > B > C, per-channel enables, a
  grant flag per bus and the 4-bit number of the selected channel.
* ``c499`` — 32-bit single-error-correction circuit: 8 syndrome bits
  over a Hamming-style code (6 position bits + 2 half-parity bits),
  conditional correction of the matching data bit.

``c432``/``c499`` sources are generated programmatically so the XOR
trees and the 32 correction matchers stay consistent with the code
tables used by the tests.
"""

from __future__ import annotations

C17_SOURCE = """
-- c17: the classic six-NAND ISCAS'85 toy circuit.
entity c17 is
  port (
    i1, i2, i3, i6, i7 : in bit;
    o22, o23           : out bit
  );
end entity c17;

architecture structural of c17 is
  signal n10, n11, n16, n19 : bit;
begin
  n10 <= i1 nand i3;
  n11 <= i3 nand i6;
  n16 <= i2 nand n11;
  n19 <= n11 nand i7;
  o22 <= n10 nand n16;
  o23 <= n16 nand n19;
end architecture structural;
"""


def hamming_data_positions(count: int = 32) -> list[int]:
    """First ``count`` Hamming code positions that carry data bits.

    Positions are 1-based; powers of two are check-bit positions and are
    skipped (classic (39,32) Hamming layout).
    """
    positions: list[int] = []
    candidate = 1
    while len(positions) < count:
        if candidate & (candidate - 1) != 0:  # not a power of two
            positions.append(candidate)
        candidate += 1
    return positions


def build_c432_source() -> str:
    """27-channel interrupt controller, one combinational process."""
    lines = [
        "-- c432: 27-channel interrupt controller (behavioural"
        " reconstruction).",
        "entity c432 is",
        "  port (",
        "    a    : in bit_vector(8 downto 0);",
        "    b    : in bit_vector(8 downto 0);",
        "    c    : in bit_vector(8 downto 0);",
        "    e    : in bit_vector(8 downto 0);",
        "    pa   : out bit;",
        "    pb   : out bit;",
        "    pc   : out bit;",
        "    chan : out bit_vector(3 downto 0)",
        "  );",
        "end entity c432;",
        "",
        "architecture behav of c432 is",
        "begin",
        "  prio : process (a, b, c, e)",
        "    variable any_a, any_b, any_c : boolean;",
        "    variable ch : integer range 0 to 15;",
        "  begin",
        "    any_a := false;",
        "    any_b := false;",
        "    any_c := false;",
        "    ch := 15;",
        "    for i in 0 to 8 loop",
        "      if a(i) = '1' and e(i) = '1' then",
        "        any_a := true;",
        "      end if;",
        "      if b(i) = '1' and e(i) = '1' then",
        "        any_b := true;",
        "      end if;",
        "      if c(i) = '1' and e(i) = '1' then",
        "        any_c := true;",
        "      end if;",
        "    end loop;",
        "    if any_a then",
        "      pa <= '1';",
        "      for i in 0 to 8 loop",
        "        if a(i) = '1' and e(i) = '1' and ch = 15 then",
        "          ch := i;",
        "        end if;",
        "      end loop;",
        "    else",
        "      pa <= '0';",
        "    end if;",
        "    if any_b and not any_a then",
        "      pb <= '1';",
        "      for i in 0 to 8 loop",
        "        if b(i) = '1' and e(i) = '1' and ch = 15 then",
        "          ch := i;",
        "        end if;",
        "      end loop;",
        "    else",
        "      pb <= '0';",
        "    end if;",
        "    if any_c and not any_a and not any_b then",
        "      pc <= '1';",
        "      for i in 0 to 8 loop",
        "        if c(i) = '1' and e(i) = '1' and ch = 15 then",
        "          ch := i;",
        "        end if;",
        "      end loop;",
        "    else",
        "      pc <= '0';",
        "    end if;",
        "    case ch is",
    ]
    for value in range(16):
        lines.append(f"      when {value} =>")
        lines.append(f'        chan <= "{value:04b}";')
    lines += [
        "    end case;",
        "  end process prio;",
        "end architecture behav;",
    ]
    return "\n".join(lines)


def build_c499_source() -> str:
    """32-bit single-error-correction circuit (XOR-tree dominated)."""
    positions = hamming_data_positions(32)
    lines = [
        "-- c499: 32-bit single-error corrector (behavioural"
        " reconstruction).",
        "entity c499 is",
        "  port (",
        "    id  : in bit_vector(31 downto 0);",
        "    ic  : in bit_vector(7 downto 0);",
        "    cor : in bit;",
        "    od  : out bit_vector(31 downto 0)",
        "  );",
        "end entity c499;",
        "",
        "architecture behav of c499 is",
        "begin",
        "  sec : process (id, ic, cor)",
        "    variable syn : bit_vector(7 downto 0);",
        "  begin",
    ]
    # Six positional syndrome bits: parity of data bits whose Hamming
    # position has bit j set, xor the received check bit.
    for j in range(6):
        terms = [
            f"id({i})"
            for i, pos in enumerate(positions)
            if pos & (1 << j)
        ]
        expr = " xor ".join(terms + [f"ic({j})"])
        lines.append(f"    syn({j}) := {expr};")
    # Two half-parity bits make the halves' check bits observable and
    # guard the correction (a real single error flips its half parity).
    low_half = " xor ".join(f"id({i})" for i in range(16))
    high_half = " xor ".join(f"id({i})" for i in range(16, 32))
    lines.append(f"    syn(6) := {low_half} xor ic(6);")
    lines.append(f"    syn(7) := {high_half} xor ic(7);")
    lines.append("    od <= id;")
    lines.append("    if cor = '1' then")
    for i, pos in enumerate(positions):
        guard = "syn(6)" if i < 16 else "syn(7)"
        code = format(pos, "06b")
        lines.append(
            f'      if syn(5 downto 0) = "{code}" and {guard} = \'1\' then'
        )
        lines.append(f"        od({i}) <= not id({i});")
        lines.append("      end if;")
    lines += [
        "    end if;",
        "  end process sec;",
        "end architecture behav;",
    ]
    return "\n".join(lines)


C432_SOURCE = build_c432_source()
C499_SOURCE = build_c499_source()
