"""The coordinator: unit broker, lease tracker, campaign service.

Three layers, separable on purpose:

* :class:`CoordinatorCore` — the pure, lock-protected state machine:
  worker registry with heartbeat deadlines, the shared unit queue,
  wave bookkeeping (submission → completion log), campaign-service
  bookkeeping (event buffers, results), and job-store persistence.
  It knows nothing about HTTP, so every correctness property —
  lease expiry and reassignment, at-least-once idempotent
  completion — is testable with an injected clock and no sockets.
* :class:`CoordinatorServer` — a stdlib :class:`ThreadingHTTPServer`
  translating the endpoints of :mod:`repro.net.protocol` into core
  calls.  One server is both the grid broker (``repro run --grid
  remote``) and the campaign-as-a-service front door (``repro
  submit``).
* :class:`CampaignService` — a daemon thread draining submitted
  :class:`~repro.campaign.CampaignConfig` payloads one at a time.
  Each service campaign runs through the ordinary
  :class:`~repro.campaign.Campaign` pipeline with ``grid="remote"``
  pointed back at the coordinator's own loopback URL, so the heavy
  units execute on whatever workers are attached, and every
  progress hook is recorded as a sequence-numbered envelope
  (:class:`repro.campaign.events.RecordingEvents`) that polling
  clients stream as JSON lines, resumable from any ``since``.  With a
  ``cache_dir`` each campaign's stream is also journaled to disk
  (:mod:`repro.obs.journal`) together with its submission metadata,
  so a restarted coordinator recovers every campaign, serves the same
  ``seq`` numbers with no gaps or duplicates, and re-queues the ones
  that never finished.

Delivery semantics: **at-least-once**.  A unit leased to a worker
that goes silent past ``lease_timeout`` is reassigned; if the dead
worker was merely slow and completes late, the duplicate completion
is accepted and deduplicated — work units are pure functions of
their spec, so both copies are bit-identical, and the campaign-side
merges are order-independent unions, so replays can never skew a
result.  Completed units are persisted into the shared
:class:`~repro.grid.store.JobStore` (write-then-rename) when the
coordinator has a ``cache_dir``, which is what makes ``repro run
--resume`` work unchanged after a coordinator crash.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import re
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigError, NetError, ReproError
from repro.grid.store import JobStore
from repro.grid.units import WorkUnit
from repro.net.protocol import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_POLL_INTERVAL,
    PROTOCOL_VERSION,
    ProtocolError,
    dump_event_lines,
    dump_message,
    error_payload,
    load_message,
    require,
)
from repro.obs.journal import Journal
from repro.obs.metrics import Metrics


class UnknownWorker(NetError):
    """The worker id is not (or no longer) registered — re-register."""


class NotFound(NetError):
    """No such wave / campaign / endpoint."""


# -- core state --------------------------------------------------------------


@dataclass
class _Job:
    """One enqueued work unit instance."""

    jid: int
    wave: str
    index: int                      #: position inside its wave
    unit: WorkUnit
    state: str = "pending"          #: pending|leased|done|failed|canceled
    worker: str | None = None
    seconds: float = 0.0
    result: dict | None = None
    error: str | None = None
    reassignments: int = 0


@dataclass
class _Wave:
    """One submitted batch of units sharing a campaign config."""

    wid: str
    config_data: dict
    config: object                  #: the validated CampaignConfig
    jobs: list[int] = field(default_factory=list)
    #: Completion log in completion order; ``wave_status(since=N)``
    #: returns ``log[N:]`` so clients poll incrementally.
    log: list[dict] = field(default_factory=list)
    canceled: bool = False


@dataclass
class _WorkerState:
    wid: str
    name: str
    expires_at: float
    jobs: set[int] = field(default_factory=set)
    leased_total: int = 0
    completed_total: int = 0


@dataclass
class _ServiceCampaign:
    """One submitted campaign-as-a-service run."""

    cid: str
    config_data: dict
    status: str = "queued"          #: queued|running|done|failed
    #: Sequence-numbered event envelopes; ``events[n]["seq"] == n``,
    #: so a client that saw up to seq ``k`` resumes with ``since=k+1``.
    events: list[dict] = field(default_factory=list)
    result: dict | None = None
    error: str | None = None
    #: The on-disk :class:`repro.obs.journal.Journal` mirroring
    #: ``events`` when the coordinator has a ``cache_dir`` — the
    #: persistent campaign ledger restarts recover from.
    journal: Journal | None = None


class CoordinatorCore:
    """Thread-safe coordinator state; every public method is atomic."""

    def __init__(
        self,
        cache_dir: str | None = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        clock=time.monotonic,
        stream=None,
        tracer=None,
    ):
        if lease_timeout <= 0:
            raise NetError(
                f"lease timeout must be positive, got {lease_timeout}"
            )
        self.cache_dir = cache_dir
        self.lease_timeout = float(lease_timeout)
        self.poll_interval = float(poll_interval)
        self._clock = clock
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._workers: dict[str, _WorkerState] = {}
        self._jobs: dict[int, _Job] = {}
        self._queue: list[int] = []          # FIFO of jids (lazy cleanup)
        self._waves: dict[str, _Wave] = {}
        self._campaigns: dict[str, _ServiceCampaign] = {}
        #: Drained by the CampaignService thread.
        self.campaign_queue: queue.SimpleQueue = queue.SimpleQueue()
        self._stores: dict[str, JobStore] = {}
        #: The coordinator's own always-on registry: broker-level
        #: counters plus every metrics snapshot workers push with their
        #: completions.  Private to this core (not the process-global
        #: active registry) so a coordinator embedded in a test run
        #: never leaks counts into the host's telemetry.
        self.metrics = Metrics()
        #: Optional :class:`repro.obs.Tracer` the coordinator stitches
        #: worker span buffers into (``repro serve --trace``); span
        #: buffers are relayed in the wave log either way so the
        #: submitting parent can stitch its own trace.
        self.tracer = tracer
        if self.cache_dir:
            self._recover_campaigns()

    # -- logging -------------------------------------------------------------

    def _log(self, message: str) -> None:
        print(f"coordinator: {message}", file=self._stream, flush=True)

    # -- reaping -------------------------------------------------------------

    def _reap(self) -> None:
        """Requeue the units of every worker past its deadline."""
        now = self._clock()
        for wid in [
            w for w, state in self._workers.items()
            if state.expires_at <= now
        ]:
            state = self._workers.pop(wid)
            requeued = 0
            for jid in sorted(state.jobs):
                job = self._jobs[jid]
                if job.state == "leased":
                    job.state = "pending"
                    job.worker = None
                    job.reassignments += 1
                    # Front of the queue: a reassigned unit is the
                    # oldest outstanding work, so it should not wait
                    # behind the whole backlog again.
                    self._queue.insert(0, jid)
                    requeued += 1
            self.metrics.counter("coordinator.leases.expired")
            self.metrics.counter(
                "coordinator.units.reassigned", requeued
            )
            self._log(
                f"worker {wid} ({state.name}) missed its heartbeat "
                f"deadline; reassigned {requeued} unit(s)"
            )

    # -- workers -------------------------------------------------------------

    def register_worker(self, name: str = "") -> dict:
        with self._lock:
            self._reap()
            wid = f"w{next(self._ids)}"
            self._workers[wid] = _WorkerState(
                wid=wid,
                name=str(name) or wid,
                expires_at=self._clock() + self.lease_timeout,
            )
            self._log(f"worker {wid} ({name or wid}) registered")
            return {
                "worker": wid,
                "lease_timeout": self.lease_timeout,
                "poll_interval": self.poll_interval,
                "protocol": PROTOCOL_VERSION,
            }

    def _worker(self, wid: str) -> _WorkerState:
        try:
            return self._workers[wid]
        except KeyError:
            raise UnknownWorker(
                f"unknown worker {wid!r} (lease expired? re-register)"
            ) from None

    def heartbeat(self, wid: str) -> dict:
        with self._lock:
            self._reap()
            worker = self._worker(wid)
            worker.expires_at = self._clock() + self.lease_timeout
            return {"ok": True}

    def lease(self, wid: str) -> dict:
        """Hand the next pending unit to ``wid`` (or report idle)."""
        with self._lock:
            self._reap()
            worker = self._worker(wid)
            worker.expires_at = self._clock() + self.lease_timeout
            while self._queue:
                jid = self._queue.pop(0)
                job = self._jobs[jid]
                if job.state != "pending":
                    continue            # completed late or canceled
                job.state = "leased"
                job.worker = wid
                worker.jobs.add(jid)
                worker.leased_total += 1
                self.metrics.counter("coordinator.leases.granted")
                wave = self._waves[job.wave]
                return {
                    "job": jid,
                    "wave": job.wave,
                    "unit": job.unit.to_dict(),
                    "config": wave.config_data,
                }
            self.metrics.counter("coordinator.leases.idle")
            return {"idle": True, "poll": self.poll_interval}

    def complete(self, wid: str, payload: dict) -> dict:
        """Accept one unit result (idempotent, at-least-once safe).

        Accepted even from a worker that was reaped meanwhile (its
        result is just as valid — determinism makes every copy
        bit-identical); a unit that already completed elsewhere is
        acknowledged with ``duplicate: true`` and changes nothing.
        """
        with self._lock:
            self._reap()
            jid = require(payload, "job", int)
            seconds = float(payload.get("seconds") or 0.0)
            error = payload.get("error")
            try:
                job = self._jobs[jid]
            except KeyError:
                raise NotFound(f"unknown job {jid}") from None
            worker = self._workers.get(wid)
            if worker is not None:
                worker.expires_at = self._clock() + self.lease_timeout
                worker.jobs.discard(jid)
            if job.state in ("done", "failed"):
                self.metrics.counter("coordinator.completions.duplicate")
                return {"ok": True, "duplicate": True}
            if job.worker is not None:
                holder = self._workers.get(job.worker)
                if holder is not None and holder is not worker:
                    holder.jobs.discard(jid)
            job.worker = wid
            wave = self._waves[job.wave]
            if error is not None:
                job.state = "failed"
                job.error = str(error)
                self.metrics.counter("coordinator.completions.failed")
                wave.log.append({
                    "index": job.index,
                    "uid": job.unit.uid,
                    "worker": wid,
                    "error": job.error,
                })
                self._log(
                    f"unit {job.unit.uid} failed on worker {wid}: "
                    f"{job.error}"
                )
            else:
                result = require(payload, "result", dict)
                job.state = "done"
                job.result = result
                job.seconds = seconds
                if worker is not None:
                    worker.completed_total += 1
                self.metrics.counter("coordinator.completions.ok")
                self.metrics.observe("coordinator.unit.seconds", seconds)
                record = {
                    "index": job.index,
                    "uid": job.unit.uid,
                    "worker": wid,
                    "seconds": seconds,
                    "result": result,
                }
                # A worker-side telemetry snapshot rides the completion:
                # fold it into the coordinator's registry and relay it in
                # the wave log so the submitting parent folds it too.
                snapshot = payload.get("metrics")
                if snapshot:
                    self.metrics.merge(snapshot)
                    record["metrics"] = snapshot
                # Same for a worker-side trace buffer: stitched into
                # the coordinator's tracer (when one is installed) and
                # relayed so the submitting parent stitches its own.
                spans = payload.get("spans")
                if spans:
                    if self.tracer is not None:
                        absorbed = self.tracer.absorb(spans)
                        self.metrics.counter(
                            "coordinator.trace.spans", absorbed
                        )
                    record["spans"] = spans
                wave.log.append(record)
                self._persist(wave, job)
            return {"ok": True, "duplicate": False}

    # -- persistence ---------------------------------------------------------

    def _persist(self, wave: _Wave, job: _Job) -> None:
        """Write one finished unit into the shared job store.

        Best-effort: the in-memory completion already reached the wave
        log, so a full disk must not fail the worker's push — the unit
        would only be recomputed on a resume that never happens.
        """
        if not self.cache_dir:
            return
        key = wave.config.fingerprint()
        try:
            store = self._stores.get(key)
            if store is None:
                store = JobStore(self.cache_dir, wave.config)
                self._stores[key] = store
            store.store(job.unit, job.result, job.seconds)
        except Exception as exc:
            self._log(
                f"could not persist unit {job.unit.uid}: "
                f"{type(exc).__name__}: {exc}"
            )

    # -- waves ---------------------------------------------------------------

    def submit_wave(self, payload: dict) -> dict:
        from repro.campaign.config import CampaignConfig

        config_data = require(payload, "config", dict)
        unit_dicts = require(payload, "units", list)
        config = CampaignConfig.from_dict(config_data)
        units = [WorkUnit.from_dict(data) for data in unit_dicts]
        with self._lock:
            wid = f"v{next(self._ids)}"
            wave = _Wave(wid=wid, config_data=config_data, config=config)
            self._waves[wid] = wave
            for index, unit in enumerate(units):
                jid = next(self._ids)
                self._jobs[jid] = _Job(
                    jid=jid, wave=wid, index=index, unit=unit
                )
                wave.jobs.append(jid)
                self._queue.append(jid)
            self._log(f"wave {wid}: {len(units)} unit(s) queued")
            return {"wave": wid, "units": len(units)}

    def _wave(self, wid: str) -> _Wave:
        try:
            return self._waves[wid]
        except KeyError:
            raise NotFound(f"unknown wave {wid!r}") from None

    def wave_status(self, wid: str, since: int = 0) -> dict:
        with self._lock:
            self._reap()
            wave = self._wave(wid)
            since = max(0, int(since))
            pending = sum(
                1 for jid in wave.jobs
                if self._jobs[jid].state in ("pending", "leased")
            )
            return {
                "log": wave.log[since:],
                "next": len(wave.log),
                "pending": pending,
                "total": len(wave.jobs),
                "canceled": wave.canceled,
            }

    def cancel_wave(self, wid: str) -> dict:
        """Drop a wave's pending units (in-flight ones may still land)."""
        with self._lock:
            wave = self._wave(wid)
            wave.canceled = True
            dropped = 0
            for jid in wave.jobs:
                job = self._jobs[jid]
                if job.state == "pending":
                    job.state = "canceled"
                    dropped += 1
            self._log(f"wave {wid} canceled ({dropped} pending dropped)")
            return {"ok": True, "dropped": dropped}

    # -- campaign service ----------------------------------------------------

    def _campaign_dir(self, cid: str) -> str:
        return os.path.join(self.cache_dir, "service", cid)

    def _open_journal(self, cid: str) -> Journal | None:
        """The campaign's persistent event ledger (``cache_dir`` only)."""
        if not self.cache_dir:
            return None
        try:
            return Journal(os.path.join(self._campaign_dir(cid), "journal"))
        except OSError as exc:
            self._log(
                f"campaign {cid}: cannot open journal "
                f"({type(exc).__name__}: {exc}); events stay in memory"
            )
            return None

    def _persist_campaign(self, campaign: _ServiceCampaign) -> None:
        """Write the campaign's metadata next to its journal.

        Best-effort (like job-store persistence): the in-memory state
        is authoritative for this process's lifetime; the file exists
        so a restarted coordinator can rebuild the campaign table.
        """
        if not self.cache_dir:
            return
        directory = self._campaign_dir(campaign.cid)
        try:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, "campaign.json")
            tmp = f"{path}.{os.getpid()}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({
                    "campaign": campaign.cid,
                    "config": campaign.config_data,
                    "status": campaign.status,
                    "result": campaign.result,
                    "error": campaign.error,
                }, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError as exc:
            self._log(
                f"could not persist campaign {campaign.cid}: "
                f"{type(exc).__name__}: {exc}"
            )

    def _recover_campaigns(self) -> None:
        """Rebuild the campaign table from ``cache_dir`` on startup.

        Called from ``__init__`` (single-threaded).  Every persisted
        campaign's event journal is reopened so ``?since=N`` streaming
        resumes exactly where the dead coordinator stopped — same
        ``seq`` numbers, no gaps, no duplicates.  Campaigns that never
        finished are re-queued behind a ``service-recovered`` event;
        their work units resume from the shared job store.
        """
        root = os.path.join(self.cache_dir, "service")
        try:
            cids = sorted(os.listdir(root))
        except OSError:
            return
        recovered_max = 0
        for cid in cids:
            meta_path = os.path.join(root, cid, "campaign.json")
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, ValueError):
                continue
            config_data = meta.get("config")
            if not isinstance(config_data, dict):
                continue
            campaign = _ServiceCampaign(
                cid=cid,
                config_data=config_data,
                status=str(meta.get("status") or "queued"),
                result=meta.get("result"),
                error=meta.get("error"),
                journal=self._open_journal(cid),
            )
            if campaign.journal is not None:
                campaign.events = campaign.journal.read()
            self._campaigns[cid] = campaign
            suffix = cid[1:] if cid[:1] == "c" else ""
            if suffix.isdigit():
                recovered_max = max(recovered_max, int(suffix))
            if campaign.status in ("queued", "running"):
                campaign.status = "queued"
                self._append_event(campaign, {"event": "service-recovered"})
                self._persist_campaign(campaign)
                self.campaign_queue.put(cid)
                self._log(f"campaign {cid} recovered and re-queued")
            else:
                self._log(
                    f"campaign {cid} recovered ({campaign.status}, "
                    f"{len(campaign.events)} event(s))"
                )
        if recovered_max:
            # Keep every id family (workers/waves/jobs/campaigns share
            # the counter) above the recovered campaigns so a reborn
            # coordinator never reissues a persisted campaign id.
            self._ids = itertools.count(recovered_max + 1)

    def submit_campaign(self, payload: dict) -> dict:
        from repro.campaign.config import CampaignConfig

        config_data = require(payload, "config", dict)
        # Validate *now* so a bad submission is the client's 400, not a
        # service-thread failure discovered by polling.
        CampaignConfig.from_dict(config_data)
        with self._lock:
            cid = f"c{next(self._ids)}"
            campaign = _ServiceCampaign(
                cid=cid,
                config_data=config_data,
                journal=self._open_journal(cid),
            )
            self._campaigns[cid] = campaign
            self._append_event(campaign, {"event": "service-queued"})
            self._persist_campaign(campaign)
        self.campaign_queue.put(cid)
        self._log(f"campaign {cid} submitted")
        return {"campaign": cid}

    def _campaign(self, cid: str) -> _ServiceCampaign:
        try:
            return self._campaigns[cid]
        except KeyError:
            raise NotFound(f"unknown campaign {cid!r}") from None

    def _append_event(self, campaign: _ServiceCampaign, envelope: dict):
        if campaign.journal is not None:
            # The journal assigns the seq (and makes it durable before
            # we expose it); on recovery ``events`` is rebuilt from the
            # journal, so the two stay aligned by construction.
            stamped = campaign.journal.append(envelope)
        else:
            stamped = dict(envelope)
            stamped["seq"] = len(campaign.events)
        campaign.events.append(stamped)

    def record_campaign_event(self, cid: str, envelope: dict) -> None:
        with self._lock:
            self._append_event(self._campaign(cid), envelope)

    def start_campaign(self, cid: str) -> dict:
        """The service thread took ``cid``; returns its config data."""
        with self._lock:
            campaign = self._campaign(cid)
            campaign.status = "running"
            self._append_event(campaign, {"event": "service-running"})
            self._persist_campaign(campaign)
            return campaign.config_data

    def finish_campaign(self, cid: str, result: dict) -> None:
        with self._lock:
            campaign = self._campaign(cid)
            campaign.status = "done"
            campaign.result = result
            self._append_event(campaign, {"event": "service-done"})
            self._persist_campaign(campaign)
        self._log(f"campaign {cid} done")

    def fail_campaign(self, cid: str, error: str) -> None:
        with self._lock:
            campaign = self._campaign(cid)
            campaign.status = "failed"
            campaign.error = error
            self._append_event(
                campaign, {"event": "service-failed", "error": error}
            )
            self._persist_campaign(campaign)
        self._log(f"campaign {cid} failed: {error}")

    def close(self) -> None:
        """Release per-campaign journal handles (idempotent)."""
        with self._lock:
            for campaign in self._campaigns.values():
                if campaign.journal is not None:
                    campaign.journal.close()

    def campaign_status(self, cid: str) -> dict:
        with self._lock:
            campaign = self._campaign(cid)
            status = {
                "campaign": cid,
                "status": campaign.status,
                "events": len(campaign.events),
            }
            if campaign.error is not None:
                status["error"] = campaign.error
            if campaign.result is not None:
                status["result"] = campaign.result
            return status

    def campaign_events(self, cid: str, since: int = 0) -> list[dict]:
        with self._lock:
            campaign = self._campaign(cid)
            return list(campaign.events[max(0, int(since)):])

    # -- introspection -------------------------------------------------------

    def status(self) -> dict:
        with self._lock:
            self._reap()
            now = self._clock()
            states = [job.state for job in self._jobs.values()]
            return {
                "protocol": PROTOCOL_VERSION,
                "lease_timeout": self.lease_timeout,
                "workers": [
                    {
                        "worker": state.wid,
                        "name": state.name,
                        "leased": sorted(state.jobs),
                        "completed": state.completed_total,
                        "expires_in": round(state.expires_at - now, 3),
                    }
                    for state in self._workers.values()
                ],
                "units": {
                    state: states.count(state)
                    for state in (
                        "pending", "leased", "done", "failed", "canceled"
                    )
                },
                "waves": len(self._waves),
                "campaigns": [
                    {"campaign": c.cid, "status": c.status}
                    for c in self._campaigns.values()
                ],
            }

    def metrics_snapshot(self) -> dict:
        """The ``GET /metrics`` payload: live gauges plus the registry.

        Live numbers (queue depth, leased units, per-worker totals,
        campaign event-log lengths) are computed from current state;
        ``metrics`` is the coordinator's own registry — broker
        counters plus everything workers pushed with completions.
        """
        with self._lock:
            self._reap()
            now = self._clock()
            states = [job.state for job in self._jobs.values()]
            return {
                "protocol": PROTOCOL_VERSION,
                "queue_depth": states.count("pending"),
                "leased_units": states.count("leased"),
                "waves": len(self._waves),
                "workers": [
                    {
                        "worker": state.wid,
                        "name": state.name,
                        "leased": len(state.jobs),
                        "leased_total": state.leased_total,
                        "completed_total": state.completed_total,
                        "expires_in": round(state.expires_at - now, 3),
                    }
                    for state in self._workers.values()
                ],
                "campaigns": [
                    {
                        "campaign": c.cid,
                        "status": c.status,
                        "events": len(c.events),
                    }
                    for c in self._campaigns.values()
                ],
                "metrics": self.metrics.snapshot(),
            }


# -- the campaign service thread ---------------------------------------------


class CampaignService(threading.Thread):
    """Drains submitted campaigns, one at a time, onto the grid.

    Each campaign runs in this thread through the ordinary
    :class:`~repro.campaign.Campaign` pipeline with the grid pointed
    back at the coordinator's own URL, so its units execute on the
    attached workers.  With a coordinator ``cache_dir`` the config's
    cache directory is overridden to the shared one, making the result
    cache and job store multi-tenant: two tenants submitting the same
    science hit the same entries.
    """

    def __init__(self, core: CoordinatorCore, url: str):
        super().__init__(name="repro-campaign-service", daemon=True)
        self._core = core
        self._url = url
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.is_set():
            try:
                cid = self._core.campaign_queue.get(timeout=0.2)
            except queue.Empty:
                continue
            self._run_campaign(cid)

    def _run_campaign(self, cid: str) -> None:
        from repro.campaign.config import CampaignConfig
        from repro.campaign.events import RecordingEvents
        from repro.campaign.runner import Campaign

        try:
            config_data = self._core.start_campaign(cid)
            config = CampaignConfig.from_dict(config_data)
            overrides = {"grid": "remote", "coordinator": self._url}
            if self._core.cache_dir:
                overrides["cache_dir"] = self._core.cache_dir
            config = config.replace(**overrides)
            events = RecordingEvents(
                lambda envelope: self._core.record_campaign_event(
                    cid, envelope
                )
            )
            result = Campaign(config, events).run(
                resume=bool(config.cache_dir)
            )
            self._core.finish_campaign(cid, result.to_dict())
        except Exception as exc:
            # The service outlives any one bad campaign.
            self._core.fail_campaign(
                cid, f"{type(exc).__name__}: {exc}"
            )


# -- HTTP layer --------------------------------------------------------------

_WORKER_ROUTE = re.compile(r"^/workers/([^/]+)/(heartbeat|lease|complete)$")
_WAVE_ROUTE = re.compile(r"^/waves/([^/]+)(/cancel)?$")
_CAMPAIGN_ROUTE = re.compile(r"^/campaigns/([^/]+)(/events)?$")


class _Handler(BaseHTTPRequestHandler):
    """Translates protocol endpoints into :class:`CoordinatorCore` calls."""

    protocol_version = "HTTP/1.1"

    @property
    def core(self) -> CoordinatorCore:
        return self.server.core          # type: ignore[attr-defined]

    # The default handler logs every request to stderr; the
    # coordinator logs meaningful transitions itself instead.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, payload: dict, status: int = 200) -> None:
        body = dump_message(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_events(self, events: list[dict]) -> None:
        body = dump_event_lines(events)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        return load_message(self.rfile.read(length)) if length else {}

    def _fail(self, exc: Exception) -> None:
        if isinstance(exc, UnknownWorker):
            status = 410
        elif isinstance(exc, NotFound):
            status = 404
        elif isinstance(exc, (ProtocolError, ConfigError, ReproError)):
            status = 400
        else:
            status = 500
        self._send(error_payload(str(exc) or type(exc).__name__), status)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            url = urlparse(self.path)
            query = parse_qs(url.query)
            since = int(query.get("since", ["0"])[0])
            if url.path == "/ping":
                self._send({
                    "ok": True,
                    "protocol": PROTOCOL_VERSION,
                    "service": getattr(self.server, "service_enabled",
                                       False),
                })
            elif url.path == "/status":
                self._send(self.core.status())
            elif url.path == "/metrics":
                self._send(self.core.metrics_snapshot())
            elif match := _WAVE_ROUTE.match(url.path):
                if match.group(2):
                    raise NotFound(f"no GET {url.path}")
                self._send(self.core.wave_status(match.group(1), since))
            elif match := _CAMPAIGN_ROUTE.match(url.path):
                cid = match.group(1)
                if match.group(2):       # /events
                    self._send_events(self.core.campaign_events(cid, since))
                else:
                    self._send(self.core.campaign_status(cid))
            else:
                raise NotFound(f"no GET {url.path}")
        except Exception as exc:
            self._fail(exc)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            path = urlparse(self.path).path
            if path == "/workers":
                body = self._body()
                self._send(
                    self.core.register_worker(str(body.get("name") or ""))
                )
            elif match := _WORKER_ROUTE.match(path):
                wid, action = match.group(1), match.group(2)
                if action == "heartbeat":
                    self._send(self.core.heartbeat(wid))
                elif action == "lease":
                    self._send(self.core.lease(wid))
                else:
                    self._send(self.core.complete(wid, self._body()))
            elif path == "/waves":
                self._send(self.core.submit_wave(self._body()))
            elif match := _WAVE_ROUTE.match(path):
                if not match.group(2):
                    raise NotFound(f"no POST {path}")
                self._send(self.core.cancel_wave(match.group(1)))
            elif path == "/campaigns":
                if not getattr(self.server, "service_enabled", False):
                    raise NotFound(
                        "this coordinator runs without the campaign "
                        "service (start it with `repro serve`)"
                    )
                self._send(self.core.submit_campaign(self._body()))
            else:
                raise NotFound(f"no POST {path}")
        except Exception as exc:
            self._fail(exc)


class CoordinatorServer:
    """One HTTP server fronting a :class:`CoordinatorCore`.

    ``service=True`` (the ``repro serve`` default) additionally starts
    the :class:`CampaignService` thread and accepts ``POST
    /campaigns`` submissions; ``service=False`` is a pure unit broker.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | None = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        service: bool = True,
        verbose: bool = False,
        stream=None,
        clock=time.monotonic,
        tracer=None,
    ):
        self.core = CoordinatorCore(
            cache_dir=cache_dir,
            lease_timeout=lease_timeout,
            poll_interval=poll_interval,
            clock=clock,
            stream=stream,
            tracer=tracer,
        )
        try:
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        except OSError as exc:
            raise NetError(
                f"cannot bind coordinator to {host}:{port}: {exc}"
            ) from exc
        self._httpd.daemon_threads = True
        self._httpd.core = self.core                   # type: ignore
        self._httpd.verbose = verbose                  # type: ignore
        self._httpd.service_enabled = service          # type: ignore
        bound_host, bound_port = self._httpd.server_address[:2]
        self.url = f"http://{bound_host}:{bound_port}"
        self._service = CampaignService(self.core, self.url) if (
            service
        ) else None
        self._thread: threading.Thread | None = None

    def start(self) -> "CoordinatorServer":
        """Serve in a background thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-coordinator",
            daemon=True,
        )
        self._thread.start()
        if self._service is not None:
            self._service.start()
        return self

    def serve_forever(self) -> None:
        """Serve in the foreground (the ``repro serve`` CLI path)."""
        if self._service is not None:
            self._service.start()
        try:
            self._httpd.serve_forever()
        finally:
            self.close()

    def close(self) -> None:
        if self._service is not None:
            self._service.stop()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.core.close()
