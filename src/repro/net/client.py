"""HTTP client for the repro.net coordinator (stdlib ``urllib``).

One thin method per protocol endpoint, all returning the decoded JSON
payload.  Error responses (``{"error": ...}`` with a 4xx/5xx status)
are raised as exceptions: :class:`WorkerGone` for ``410`` (the
coordinator reaped this worker's lease — re-register and continue),
:class:`repro.net.protocol.ProtocolError` for ``400``,
:class:`repro.errors.NetError` for everything else, including refused
connections, so callers never see raw ``urllib`` exceptions.
"""

from __future__ import annotations

import urllib.error
import urllib.request

from repro.errors import NetError
from repro.net.protocol import (
    ProtocolError,
    check_version,
    dump_message,
    load_event_lines,
    load_message,
)

#: Per-request timeout: every endpoint answers from in-memory state,
#: so a slow response means a wedged coordinator, not a slow unit.
DEFAULT_REQUEST_TIMEOUT = 30.0


class WorkerGone(NetError):
    """The coordinator reaped this worker id (``410``) — re-register."""


class CoordinatorClient:
    """Talk to one coordinator at ``url`` (e.g. ``http://host:8752``)."""

    def __init__(self, url: str, timeout: float = DEFAULT_REQUEST_TIMEOUT):
        if not str(url).startswith(("http://", "https://")):
            raise NetError(
                f"coordinator URL must start with http:// or https://, "
                f"got {url!r}"
            )
        self.url = str(url).rstrip("/")
        self.timeout = float(timeout)

    # -- transport -----------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> bytes:
        request = urllib.request.Request(
            self.url + path,
            method=method,
            data=dump_message(payload) if payload is not None else None,
            headers=(
                {"Content-Type": "application/json"}
                if payload is not None else {}
            ),
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                message = load_message(body).get("error") or str(exc)
            except ProtocolError:
                message = str(exc)
            if exc.code == 410:
                raise WorkerGone(message) from None
            if exc.code == 400:
                raise ProtocolError(message) from None
            raise NetError(
                f"coordinator rejected {method} {path}: "
                f"{exc.code} {message}"
            ) from None
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            reason = getattr(exc, "reason", None) or exc
            raise NetError(
                f"cannot reach coordinator at {self.url}: {reason}"
            ) from None

    def _call(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        return load_message(self._request(method, path, payload))

    # -- liveness ------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness check; refuses a protocol-version mismatch."""
        payload = self._call("GET", "/ping")
        check_version(payload, f"coordinator at {self.url}")
        return payload

    def status(self) -> dict:
        return self._call("GET", "/status")

    def metrics(self) -> dict:
        """The coordinator's live telemetry snapshot (``GET /metrics``)."""
        return self._call("GET", "/metrics")

    # -- worker endpoints ----------------------------------------------------

    def register_worker(self, name: str = "") -> dict:
        payload = self._call("POST", "/workers", {"name": name})
        check_version(payload, f"coordinator at {self.url}")
        return payload

    def heartbeat(self, wid: str) -> dict:
        return self._call("POST", f"/workers/{wid}/heartbeat", {})

    def lease(self, wid: str) -> dict:
        return self._call("POST", f"/workers/{wid}/lease", {})

    def complete(self, wid: str, payload: dict) -> dict:
        return self._call("POST", f"/workers/{wid}/complete", payload)

    # -- wave endpoints (the remote scheduler's side) ------------------------

    def submit_wave(self, units: list[dict], config_data: dict) -> dict:
        return self._call(
            "POST", "/waves", {"units": units, "config": config_data}
        )

    def wave_status(self, wid: str, since: int = 0) -> dict:
        return self._call("GET", f"/waves/{wid}?since={int(since)}")

    def cancel_wave(self, wid: str) -> dict:
        return self._call("POST", f"/waves/{wid}/cancel", {})

    # -- campaign-service endpoints ------------------------------------------

    def submit_campaign(self, config_data: dict) -> dict:
        return self._call("POST", "/campaigns", {"config": config_data})

    def campaign_status(self, cid: str) -> dict:
        return self._call("GET", f"/campaigns/{cid}")

    def campaign_events(self, cid: str, since: int = 0) -> list[dict]:
        return load_event_lines(
            self._request("GET", f"/campaigns/{cid}/events?since={int(since)}")
        )
