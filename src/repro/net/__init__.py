"""repro.net — cross-machine grid dispatch and campaign-as-a-service.

The grid's fourth scheduler backend, stretched over HTTP: a
:class:`CoordinatorServer` owns the unit queue, worker daemons
(:class:`WorkerDaemon`, ``repro worker``) pull units and push results,
and the ``remote`` scheduler (:class:`repro.grid.RemoteScheduler`)
submits waves from an ordinary ``repro run --grid remote``.  The same
coordinator doubles as a campaign service (``repro serve`` / ``repro
submit``): submitted configs run server-side on the attached workers
and stream sequence-numbered event envelopes back to polling clients.

Everything is stdlib (``http.server`` + ``urllib``), everything on the
wire is JSON (:mod:`repro.net.protocol`), and at-least-once delivery
with lease-based reassignment is safe because work units are pure
functions of their spec and all merges are order-independent — remote
execution is bit-identical to ``--grid serial`` by construction.
"""

from repro.net.client import CoordinatorClient, WorkerGone
from repro.net.coordinator import (
    CampaignService,
    CoordinatorCore,
    CoordinatorServer,
    NotFound,
    UnknownWorker,
)
from repro.net.protocol import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_POLL_INTERVAL,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.net.worker import WorkerDaemon, default_worker_name

__all__ = [
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_POLL_INTERVAL",
    "PROTOCOL_VERSION",
    "CampaignService",
    "CoordinatorClient",
    "CoordinatorCore",
    "CoordinatorServer",
    "NotFound",
    "ProtocolError",
    "UnknownWorker",
    "WorkerDaemon",
    "WorkerGone",
    "default_worker_name",
]
