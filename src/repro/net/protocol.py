"""Wire protocol of the repro.net coordinator: JSON over HTTP.

Everything on the wire is a plain JSON object; this module is the
single place that defines the message shapes, so the coordinator,
the worker daemon and the client stay in lockstep.  The protocol is
deliberately boring — stdlib ``http.server`` on one side,
``urllib.request`` on the other, no streaming sockets, no new
dependencies — because the correctness story lives elsewhere:
work-unit merges are order-independent unions (see
:mod:`repro.grid.units`), so at-least-once delivery with lease-based
reassignment is safe by construction.

Endpoints (all request/response bodies are JSON objects unless noted):

======  ==============================  =======================================
method  path                            meaning
======  ==============================  =======================================
GET     ``/ping``                       liveness + protocol version
GET     ``/status``                     coordinator snapshot (queues, workers)
GET     ``/metrics``                    telemetry snapshot (queue depth,
                                        leased units, per-worker totals,
                                        merged worker metrics)
POST    ``/workers``                    register; -> worker id + timeouts
POST    ``/workers/<wid>/heartbeat``    refresh the worker's lease deadline
POST    ``/workers/<wid>/lease``        pull one unit (or ``{"idle": true}``)
POST    ``/workers/<wid>/complete``     push one unit result (idempotent)
POST    ``/waves``                      submit a wave of units + their config
GET     ``/waves/<id>?since=N``         completion log from sequence ``N``
POST    ``/waves/<id>/cancel``          drop the wave's pending units
POST    ``/campaigns``                  submit a CampaignConfig (service mode)
GET     ``/campaigns/<id>``             status + final result when done
GET     ``/campaigns/<id>/events``      event envelopes from ``?since=N``
                                        as JSON lines (NDJSON)
======  ==============================  =======================================

Lease/heartbeat semantics: a worker's single deadline covers all its
leased units.  ``register``, ``heartbeat``, ``lease`` and ``complete``
each push the deadline ``lease_timeout`` seconds into the future; a
worker silent for longer is reaped and every unit it held goes back on
the queue (units are *reassigned*, never lost).  A reaped worker that
comes back gets ``410 gone`` and re-registers; a late completion of a
reassigned unit is accepted and deduplicated (``duplicate: true``) —
results are deterministic, so both copies are bit-identical.

Error responses carry ``{"error": <message>}`` with a 4xx/5xx status;
:func:`error_payload` / :class:`ProtocolError` translate both ways.
"""

from __future__ import annotations

import json

from repro.errors import NetError

#: Bump on incompatible message-shape changes; ``/ping`` reports it
#: and both sides refuse to talk across a mismatch.
PROTOCOL_VERSION = 1

#: Default lease timeout: how long a worker may stay silent before its
#: units are reassigned.  Generous by default (units can be slow);
#: tests and the CI smoke shrink it.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Interval hint the coordinator hands to idle workers and polling
#: clients (seconds between pulls).
DEFAULT_POLL_INTERVAL = 0.2


class ProtocolError(NetError):
    """A malformed or version-incompatible protocol message."""


def dump_message(payload: dict) -> bytes:
    """Serialize one message body (compact, sorted, UTF-8)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def load_message(raw: bytes) -> dict:
    """Parse one message body; raises :class:`ProtocolError` on junk."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed message body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"message body must be an object, got "
            f"{type(payload).__name__}"
        )
    return payload


def error_payload(message: str) -> dict:
    return {"error": str(message)}


def require(payload: dict, key: str, kind=None):
    """``payload[key]``, type-checked; :class:`ProtocolError` if absent."""
    try:
        value = payload[key]
    except KeyError:
        raise ProtocolError(f"message is missing {key!r}") from None
    if kind is not None and not isinstance(value, kind):
        name = kind[0].__name__ if isinstance(kind, tuple) else kind.__name__
        raise ProtocolError(
            f"message field {key!r} must be {name}, got "
            f"{type(value).__name__}"
        )
    return value


def check_version(payload: dict, side: str) -> None:
    """Refuse to talk across protocol versions."""
    version = payload.get("protocol")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{side} speaks protocol {version!r}, this side speaks "
            f"{PROTOCOL_VERSION} — upgrade one of them"
        )


def dump_event_lines(events: list[dict]) -> bytes:
    """Event envelopes as NDJSON (one JSON object per line)."""
    return b"".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        ) + b"\n"
        for event in events
    )


def load_event_lines(raw: bytes) -> list[dict]:
    """Parse an NDJSON event stream body."""
    events = []
    for line in raw.splitlines():
        if not line.strip():
            continue
        event = json.loads(line.decode("utf-8"))
        if not isinstance(event, dict):
            raise ProtocolError("event stream line is not an object")
        events.append(event)
    return events
