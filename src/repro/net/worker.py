"""The worker daemon behind ``repro worker <coordinator-url>``.

A worker is a pull loop: register, then lease one unit at a time,
execute it through the exact same :func:`repro.grid.worker.execute_unit`
every local scheduler uses, and push the result back.  A background
thread heartbeats while a unit is executing, so slow units (the whole
point of distributing) never look like a dead worker.

Failure duties are split with the coordinator: if the *worker* dies
mid-unit, the coordinator reaps its lease and reassigns the unit; if
the *coordinator* restarts, the worker's id comes back ``410 gone``
and it simply re-registers and keeps pulling.  A unit that raises is
reported as a failed completion (the wave's client turns that into a
:class:`~repro.errors.GridError`), not retried — a deterministic unit
that raised once will raise again.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time

from repro.errors import NetError
from repro.grid.units import WorkUnit
from repro.grid.worker import execute_unit
from repro.net.client import CoordinatorClient, WorkerGone
from repro.net.protocol import require


def default_worker_name() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class WorkerDaemon:
    """One pull-execute-push loop against a coordinator.

    ``max_units`` / ``max_idle`` bound the run (tests, CI smoke);
    both default to unbounded, the daemon shape.  ``run()`` returns
    the number of units completed.
    """

    #: Consecutive unreachable-coordinator leases tolerated before the
    #: worker gives up (the coordinator may be restarting; one glitch
    #: must not kill a fleet).
    MAX_NET_FAILURES = 30

    def __init__(
        self,
        url: str,
        name: str = "",
        max_units: int | None = None,
        max_idle: float | None = None,
        stream=None,
        client: CoordinatorClient | None = None,
    ):
        self._client = client if client is not None else (
            CoordinatorClient(url)
        )
        self.name = name or default_worker_name()
        self.max_units = max_units
        self.max_idle = max_idle
        self._stream = stream if stream is not None else sys.stderr
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._wid: str | None = None
        self._lease_timeout = 60.0
        self._poll = 0.2
        self.completed = 0

    def _log(self, message: str) -> None:
        print(f"worker {self.name}: {message}", file=self._stream, flush=True)

    def stop(self) -> None:  # lint: allow(lock-discipline)
        """Ask the loop to exit after the unit in flight (thread-safe
        via the Event itself — no lock needed)."""
        self._stop.set()

    # -- registration / heartbeat --------------------------------------------

    def _register(self) -> None:
        payload = self._client.register_worker(self.name)
        with self._lock:
            self._wid = require(payload, "worker", str)
            self._lease_timeout = float(
                payload.get("lease_timeout") or self._lease_timeout
            )
            self._poll = float(payload.get("poll_interval") or self._poll)
        self._log(f"registered as {self._wid}")

    def _heartbeat_loop(self, done: threading.Event) -> None:
        """Beats while a unit executes; a unit outliving the lease
        timeout must not get its worker reaped mid-computation."""
        interval = max(self._lease_timeout / 4.0, 0.05)
        while not done.wait(interval):
            if self._stop.is_set():
                return
            with self._lock:
                wid = self._wid
            try:
                if wid is not None:
                    self._client.heartbeat(wid)
            except (WorkerGone, NetError):
                # The lease loop discovers and handles both cases
                # (re-register / retry); the beat just goes quiet.
                return

    # -- the loop ------------------------------------------------------------

    # The loop is the lone writer of everything but _wid (whose writes
    # happen in _register, under the lock); its lock-free reads of the
    # Event and the client are deliberate.
    def run(self) -> int:  # lint: allow(lock-discipline)
        self._register()
        idle_since: float | None = None
        net_failures = 0
        while not self._stop.is_set():
            if self.max_units is not None and (
                self.completed >= self.max_units
            ):
                self._log(f"done: {self.completed} unit(s), exiting")
                break
            try:
                lease = self._client.lease(self._wid)
                net_failures = 0
            except WorkerGone:
                self._log("coordinator dropped our lease; re-registering")
                self._register()
                continue
            except NetError as exc:
                net_failures += 1
                if net_failures >= self.MAX_NET_FAILURES:
                    raise NetError(
                        f"coordinator unreachable after {net_failures} "
                        f"attempts: {exc}"
                    ) from exc
                self._stop.wait(self._poll)
                continue
            if lease.get("idle"):
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif self.max_idle is not None and (
                    now - idle_since >= self.max_idle
                ):
                    self._log(
                        f"idle for {self.max_idle:.1f}s, exiting"
                    )
                    break
                self._stop.wait(float(lease.get("poll") or self._poll))
                continue
            idle_since = None
            self._run_unit(lease)
        return self.completed

    def _run_unit(self, lease: dict) -> None:
        from repro.campaign.config import CampaignConfig

        jid = require(lease, "job", int)
        unit = WorkUnit.from_dict(require(lease, "unit", dict))
        config = CampaignConfig.from_dict(require(lease, "config", dict))
        self._log(f"unit {unit.uid} leased (job {jid})")
        done = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(done,),
            name="repro-worker-heartbeat",
            daemon=True,
        )
        beat.start()
        started = time.monotonic()
        try:
            if config.telemetry or config.trace:
                from contextlib import ExitStack

                from repro.obs import metrics as _metrics
                from repro.obs import trace as _trace

                # Collect per-unit and attach the snapshot/spans to
                # the completion: the coordinator folds them into its
                # own registry/tracer and relays them to the
                # submitting parent.
                registry = None
                tracer = None
                with ExitStack() as stack:
                    if config.telemetry:
                        registry = stack.enter_context(
                            _metrics.collecting()
                        )
                    if config.trace:
                        tracer = stack.enter_context(_trace.tracing(
                            _trace.Tracer(pid=f"worker-{self.name}")
                        ))
                        stack.enter_context(tracer.span(
                            f"unit:{unit.kind}", "unit",
                            {"uid": unit.uid, "circuit": unit.circuit,
                             "stage": unit.stage},
                        ))
                    result = execute_unit(unit, config)
                completion = {
                    "job": jid,
                    "seconds": time.monotonic() - started,
                    "result": result,
                }
                if registry is not None and not registry.is_empty():
                    completion["metrics"] = registry.snapshot()
                if tracer is not None and len(tracer):
                    completion["spans"] = tracer.export_buffer()
            else:
                result = execute_unit(unit, config)
                completion = {
                    "job": jid,
                    "seconds": time.monotonic() - started,
                    "result": result,
                }
        except Exception as exc:
            # Deterministic units fail deterministically: report, do
            # not retry.  The submitting client raises GridError.
            completion = {
                "job": jid,
                "seconds": time.monotonic() - started,
                "error": f"{type(exc).__name__}: {exc}",
            }
            self._log(f"unit {unit.uid} failed: {completion['error']}")
        finally:
            done.set()
        self._push(jid, unit, completion)
        beat.join(timeout=2.0)

    def _push(self, jid: int, unit: WorkUnit, completion: dict) -> None:
        """Deliver one completion (re-registering if we were reaped)."""
        for attempt in range(self.MAX_NET_FAILURES):
            with self._lock:
                wid = self._wid
            try:
                ack = self._client.complete(wid, completion)
            except WorkerGone:
                self._register()
                continue
            except NetError:
                if self._stop.wait(self._poll):
                    return
                continue
            if "error" not in completion:
                self.completed += 1
            note = " (duplicate)" if ack.get("duplicate") else ""
            self._log(
                f"unit {unit.uid} pushed (job {jid}){note}"
            )
            return
        raise NetError(
            f"could not deliver unit {unit.uid} after "
            f"{self.MAX_NET_FAILURES} attempts"
        )
