"""Live campaign progress folded from recorded event envelopes.

A :class:`ProgressTracker` consumes the envelope stream produced by
:class:`repro.campaign.events.RecordingEvents` — the same stream
``repro submit`` tails and the run journal persists — and folds it
into running aggregates: units done / cached / known-total, the kill
curve (mutants killed so far), fault-coverage counters, per-circuit
state, and an ETA extrapolated from the observed completion rate.

Envelopes deliberately carry only identities, timings, and count
summaries (never result payloads), so the tracker works identically
on a live coordinator stream, a journal read back from disk, and the
stderr of a local run.  Unknown event types are counted and ignored,
which keeps old trackers safe on newer streams.
"""

from __future__ import annotations

import time


class ProgressTracker:
    """Folds event envelopes into a live progress snapshot."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._started: float | None = None
        self._state = "pending"
        self._fingerprint: str | None = None
        self._circuits_total = 0
        self._circuits_done = 0
        self._units_done = 0
        self._units_cached = 0
        self._unit_seconds = 0.0
        #: (circuit, stage, key) -> declared unit count for that op.
        self._unit_totals: dict[tuple, int] = {}
        self._killed = 0
        self._survivors = 0
        self._faults = 0
        self._detected = 0
        self._events = 0
        self._ignored = 0
        self._last_seq = -1

    # -- folding -------------------------------------------------------------

    def feed(self, envelope: dict) -> None:
        """Fold one event envelope into the aggregates."""
        if not isinstance(envelope, dict):
            self._ignored += 1
            return
        self._events += 1
        seq = envelope.get("seq")
        if isinstance(seq, int):
            self._last_seq = max(self._last_seq, seq)
        event = envelope.get("event")
        if event == "campaign-start":
            self._state = "running"
            self._started = self._clock()
            self._fingerprint = envelope.get("fingerprint")
            circuits = envelope.get("circuits")
            if isinstance(circuits, (list, tuple)):
                self._circuits_total = len(circuits)
        elif event == "campaign-end":
            self._state = "done"
        elif event == "circuit-done":
            self._circuits_done += 1
        elif event in ("unit-start", "unit-done"):
            self._note_unit(envelope.get("unit"))
            if event == "unit-done":
                self._units_done += 1
                if envelope.get("cached"):
                    self._units_cached += 1
                try:
                    self._unit_seconds += float(
                        envelope.get("seconds") or 0.0
                    )
                except (TypeError, ValueError):
                    pass
        elif event == "unit-result":
            self._note_unit(envelope.get("unit"))
            self._note_summary(envelope.get("summary"))
        elif event in (
            "circuit-start", "stage-start", "stage-end",
            "service-queued", "service-running", "service-done",
            "service-failed", "service-recovered",
        ):
            pass
        else:
            self._ignored += 1

    def feed_all(self, envelopes) -> None:
        for envelope in envelopes:
            self.feed(envelope)

    def _note_unit(self, unit) -> None:
        if not isinstance(unit, dict):
            return
        key = (unit.get("circuit"), unit.get("stage"), unit.get("key"))
        try:
            total = int(unit.get("total") or 0)
        except (TypeError, ValueError):
            return
        if total > 0:
            self._unit_totals[key] = max(
                self._unit_totals.get(key, 0), total
            )

    def _note_summary(self, summary) -> None:
        if not isinstance(summary, dict):
            return
        for field, attr in (
            ("killed", "_killed"), ("survivors", "_survivors"),
            ("faults", "_faults"), ("detected", "_detected"),
        ):
            try:
                value = int(summary.get(field) or 0)
            except (TypeError, ValueError):
                continue
            setattr(self, attr, getattr(self, attr) + value)

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> dict:
        """The current aggregates as a plain JSON-native dict."""
        units_total = sum(self._unit_totals.values())
        remaining = max(0, units_total - self._units_done)
        elapsed = (
            self._clock() - self._started
            if self._started is not None else 0.0
        )
        eta = None
        fresh_done = self._units_done - self._units_cached
        if (
            self._state == "running"
            and remaining > 0
            and fresh_done > 0
            and elapsed > 0.0
        ):
            eta = remaining * (elapsed / fresh_done)
        coverage_pct = (
            100.0 * self._detected / self._faults if self._faults else None
        )
        return {
            "state": self._state,
            "fingerprint": self._fingerprint,
            "events": self._events,
            "ignored": self._ignored,
            "last_seq": self._last_seq,
            "circuits": {
                "total": self._circuits_total,
                "done": self._circuits_done,
            },
            "units": {
                "done": self._units_done,
                "cached": self._units_cached,
                "total_known": units_total,
                "remaining": remaining,
            },
            "kills": {
                "killed": self._killed,
                "survivors": self._survivors,
            },
            "coverage": {
                "faults": self._faults,
                "detected": self._detected,
                "pct": coverage_pct,
            },
            "seconds": {
                "elapsed": elapsed,
                "units": self._unit_seconds,
            },
            "eta_seconds": eta,
        }


def summarize_result(unit_kind: str, result: dict) -> dict:
    """Count-only summary of a work-unit result for event envelopes.

    This is the only place unit results touch the event stream, and it
    ships *counts*, never payload data — the stream stays safe to
    persist, relay, and print.
    """
    summary = {"kind": unit_kind}
    if not isinstance(result, dict):
        return summary
    detection = result.get("detection")
    if isinstance(detection, list):
        summary["faults"] = len(detection)
        summary["detected"] = sum(
            1 for entry in detection if entry is not None
        )
    killed = result.get("killed")
    if isinstance(killed, list):
        summary["killed"] = len(killed)
    kill_cycle = result.get("kill_cycle")
    if isinstance(kill_cycle, dict):
        # Survivors carry a None cycle; only real kills count.
        summary["killed"] = sum(
            1 for cycle in kill_cycle.values() if cycle is not None
        )
    survivors = result.get("survivors")
    if isinstance(survivors, list):
        summary["survivors"] = len(survivors)
    return summary


def format_status(snapshot: dict) -> list[str]:
    """Render a progress snapshot as human-readable lines.

    Shared by ``repro status`` and the ``repro top`` campaign pane.
    """
    lines = []
    state = snapshot.get("state", "?")
    fingerprint = snapshot.get("fingerprint")
    head = f"campaign: {state}"
    if fingerprint:
        head += f" (fingerprint {fingerprint})"
    lines.append(head)
    circuits = snapshot.get("circuits") or {}
    units = snapshot.get("units") or {}
    lines.append(
        "circuits: {done}/{total} done · units: {udone} done"
        " ({cached} cached), {known} known, {remaining} remaining".format(
            done=circuits.get("done", 0),
            total=circuits.get("total", 0),
            udone=units.get("done", 0),
            cached=units.get("cached", 0),
            known=units.get("total_known", 0),
            remaining=units.get("remaining", 0),
        )
    )
    kills = snapshot.get("kills") or {}
    coverage = snapshot.get("coverage") or {}
    kill_line = (
        f"kills: {kills.get('killed', 0)} mutants killed, "
        f"{kills.get('survivors', 0)} survivors"
    )
    if coverage.get("faults"):
        pct = coverage.get("pct")
        kill_line += (
            f" · fault coverage: {coverage.get('detected', 0)}"
            f"/{coverage.get('faults', 0)}"
        )
        if pct is not None:
            kill_line += f" ({pct:.1f}%)"
    lines.append(kill_line)
    seconds = snapshot.get("seconds") or {}
    timing = (
        f"elapsed: {seconds.get('elapsed', 0.0):.1f}s · "
        f"unit time: {seconds.get('units', 0.0):.1f}s"
    )
    eta = snapshot.get("eta_seconds")
    if eta is not None:
        timing += f" · eta: {eta:.1f}s"
    lines.append(timing)
    lines.append(
        f"events: {snapshot.get('events', 0)}"
        f" (last seq {snapshot.get('last_seq', -1)})"
    )
    return lines
