"""Persistent, append-only run journal: sequence-numbered JSONL.

A :class:`Journal` is a directory of JSONL segments holding one
campaign's event stream.  Each line is a schema-versioned wrapper
``{"v": 1, "record": {...}}`` around one event envelope; the journal
assigns the envelope's ``seq`` (a dense 0-based sequence number) on
append, so a stream read back from disk is indistinguishable from one
that never left memory — which is what lets ``repro serve`` answer
``?since=N`` across coordinator restarts with no gaps or duplicate
``seq`` numbers.

Durability model:

* **Appends** go to the active segment (``active.jsonl``) and are
  flushed per record.  A crash mid-write leaves at most one truncated
  trailing line, which readers (and recovery) drop — the sequence
  simply continues from the last complete record.
* **Rotation** seals a full active segment by *renaming* it to
  ``segment-<first seq, zero-padded>.jsonl`` (``os.replace``, atomic
  on POSIX) and starting a fresh active segment.  Sealed segments are
  never rewritten, so a reader concurrent with rotation sees every
  record exactly once.
* **Recovery** (``Journal(directory)`` on an existing directory)
  scans the last sealed segment and the active segment to restore the
  next sequence number.

:func:`read_records` reads a journal directory without opening it for
append — the shape ``repro status <journal>`` uses.
"""

from __future__ import annotations

import json
import os
import threading

#: Schema version stamped on every journal line.
JOURNAL_VERSION = 1

#: Records per segment before the active segment is sealed.
DEFAULT_SEGMENT_SIZE = 512

_ACTIVE = "active.jsonl"
_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:010d}{_SEGMENT_SUFFIX}"


def _sealed_segments(directory: str) -> list[str]:
    """Sealed segment paths in sequence order."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    picked = [
        name for name in names
        if name.startswith(_SEGMENT_PREFIX)
        and name.endswith(_SEGMENT_SUFFIX)
    ]
    # Zero-padded first-seq names sort lexicographically in seq order.
    return [os.path.join(directory, name) for name in sorted(picked)]


def _read_lines(path: str) -> list[dict]:
    """Parse one segment file; drops a truncated/corrupt tail.

    Parsing stops at the first bad line: everything after a torn write
    is unreachable by construction (appends are sequential), so a bad
    line can only be the torn tail itself.
    """
    records: list[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    wrapper = json.loads(line)
                except ValueError:
                    break
                if (
                    not isinstance(wrapper, dict)
                    or wrapper.get("v") != JOURNAL_VERSION
                    or not isinstance(wrapper.get("record"), dict)
                ):
                    break
                records.append(wrapper["record"])
    except OSError:
        return []
    return records


def read_records(directory: str, since: int = 0) -> list[dict]:
    """All records with ``seq >= since``, oldest first.

    Read-only: safe on a journal another process is appending to
    (sealed segments are immutable; the active segment's torn tail,
    if any, is dropped).
    """
    records: list[dict] = []
    for path in _sealed_segments(directory):
        records.extend(_read_lines(path))
    active = os.path.join(directory, _ACTIVE)
    if os.path.exists(active):
        records.extend(_read_lines(active))
    since = max(0, int(since))
    return [r for r in records if int(r.get("seq", -1)) >= since]


class Journal:
    """An append-only, seq-stamping event journal in one directory."""

    def __init__(self, directory: str,
                 segment_size: int = DEFAULT_SEGMENT_SIZE) -> None:
        if segment_size < 1:
            raise ValueError("segment_size must be >= 1")
        self._dir = directory
        self._segment_size = int(segment_size)
        self._lock = threading.Lock()
        self._handle = None
        os.makedirs(directory, exist_ok=True)
        self._recover()

    # -- write path ----------------------------------------------------------

    def append(self, record: dict) -> dict:
        """Stamp ``seq`` on a copy of ``record``, persist it, return it.

        The line is flushed before returning, so once a caller holds
        the stamped record the journal survives a crash with it.
        """
        with self._lock:
            stamped = dict(record)
            stamped["seq"] = self._next_seq
            line = json.dumps(
                {"v": JOURNAL_VERSION, "record": stamped}, sort_keys=True
            )
            if self._handle is None:
                self._open_active()
            self._handle.write(line + "\n")
            self._handle.flush()
            self._next_seq += 1
            self._active_count += 1
            if self._active_count >= self._segment_size:
                self._rotate()
            return stamped

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- read path -----------------------------------------------------------

    def read(self, since: int = 0) -> list[dict]:
        """All records with ``seq >= since``, oldest first."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
        return read_records(self._dir, since)

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._next_seq

    def __len__(self) -> int:
        return self.next_seq

    # -- internals -----------------------------------------------------------

    def _open_active(self) -> None:
        self._handle = open(
            os.path.join(self._dir, _ACTIVE), "a", encoding="utf-8"
        )

    def _rotate(self) -> None:
        """Seal the active segment under its first-seq name."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        first = self._next_seq - self._active_count
        os.replace(
            os.path.join(self._dir, _ACTIVE),
            os.path.join(self._dir, _segment_name(first)),
        )
        self._active_count = 0

    def _recover(self) -> None:
        """Restore ``next_seq`` and the active count from disk.

        A torn trailing line in the active segment is truncated away
        here so the re-opened append handle writes after the last
        *complete* record rather than glueing onto the torn one.
        """
        next_seq = 0
        sealed = _sealed_segments(self._dir)
        if sealed:
            last = _read_lines(sealed[-1])
            if last:
                next_seq = int(last[-1].get("seq", -1)) + 1
        active_path = os.path.join(self._dir, _ACTIVE)
        active = _read_lines(active_path)
        if active:
            next_seq = int(active[-1].get("seq", -1)) + 1
        if os.path.exists(active_path):
            self._truncate_torn_tail(active_path, len(active))
        self._active_count = len(active)
        self._next_seq = next_seq

    def _truncate_torn_tail(self, path: str, keep: int) -> None:
        """Rewrite the active segment to its first ``keep`` lines.

        Only acts when a torn tail is present.  The rewrite goes
        through a temp file + ``os.replace`` so recovery itself cannot
        tear the segment further.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = [ln for ln in handle.read().splitlines() if ln]
        except OSError:
            return
        if len(lines) <= keep:
            return
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for line in lines[:keep]:
                handle.write(line + "\n")
        os.replace(tmp, path)
