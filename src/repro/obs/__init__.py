"""repro.obs — zero-dependency telemetry: metrics and trace spans.

Off by default.  :mod:`repro.obs.metrics` owns the process-local
instrument registry (counters / gauges / histograms, mergeable across
workers); :mod:`repro.obs.trace` owns hierarchical spans exported as
Chrome trace-event JSON.  Both keep an *active* singleton that starts
as a null no-op object, so instrumentation sites cost one attribute
read when telemetry is disabled.  Telemetry never feeds config
fingerprints or result payloads.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Metrics,
    NullMetrics,
    NULL_METRICS,
    collecting,
)
from .metrics import active as active_metrics
from .metrics import disable as disable_metrics
from .metrics import enable as enable_metrics
from .metrics import enabled as metrics_enabled
from .trace import (
    NullTracer,
    NULL_TRACER,
    Tracer,
    summarize,
    tracing,
)
from .trace import active as active_tracer
from .trace import disable as disable_tracer
from .trace import enable as enable_tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "active_metrics",
    "active_tracer",
    "collecting",
    "disable_metrics",
    "disable_tracer",
    "enable_metrics",
    "enable_tracer",
    "metrics_enabled",
    "summarize",
    "tracing",
]
