"""repro.obs — zero-dependency telemetry: metrics, traces, journal.

Off by default.  :mod:`repro.obs.metrics` owns the process-local
instrument registry (counters / gauges / histograms with quantile
estimates, mergeable across workers); :mod:`repro.obs.trace` owns
hierarchical spans exported as Chrome trace-event JSON and stitched
across processes via serialized span buffers; :mod:`repro.obs.journal`
persists sequence-numbered event streams as rotating JSONL segments;
:mod:`repro.obs.progress` folds event envelopes into live campaign
progress; :mod:`repro.obs.benchdiff` gates benchmark trajectories on
regressions.  The metrics and trace modules keep an *active* singleton
that starts as a null no-op object, so instrumentation sites cost one
attribute read when telemetry is disabled.  Telemetry never feeds
config fingerprints or result payloads.
"""

from .benchdiff import compare_trajectories, diff_rows
from .journal import JOURNAL_VERSION, Journal, read_records
from .metrics import (
    DEFAULT_BUCKETS,
    Metrics,
    NullMetrics,
    NULL_METRICS,
    collecting,
    estimate_quantiles,
)
from .metrics import active as active_metrics
from .metrics import disable as disable_metrics
from .metrics import enable as enable_metrics
from .metrics import enabled as metrics_enabled
from .progress import ProgressTracker, format_status, summarize_result
from .trace import (
    NullTracer,
    NULL_TRACER,
    Tracer,
    summarize,
    tracing,
    validate_trace,
)
from .trace import active as active_tracer
from .trace import disable as disable_tracer
from .trace import enable as enable_tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "JOURNAL_VERSION",
    "Journal",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "NullTracer",
    "NULL_TRACER",
    "ProgressTracker",
    "Tracer",
    "active_metrics",
    "active_tracer",
    "collecting",
    "compare_trajectories",
    "diff_rows",
    "disable_metrics",
    "disable_tracer",
    "enable_metrics",
    "enable_tracer",
    "estimate_quantiles",
    "format_status",
    "metrics_enabled",
    "read_records",
    "summarize",
    "summarize_result",
    "tracing",
    "validate_trace",
]
