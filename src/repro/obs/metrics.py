"""Process-local metrics registry: counters, gauges, histograms.

One :class:`Metrics` instance is a named bag of three instrument
kinds, all behind a single lock:

* **counters** — monotonically increasing integers (``counter``);
* **gauges** — last-write-wins floats (``gauge``);
* **histograms** — fixed-bucket distributions (``observe`` /
  ``time``), stored as upper-edge -> count maps so two snapshots
  taken with different bucket layouts still merge by key union.

``snapshot()`` renders the registry as a plain JSON-native dict and
``merge(snapshot)`` folds such a dict back in — counters and bucket
counts sum, gauges overwrite — which is how worker-side registries
travel home inside grid/net result envelopes.  Both operations are
associative and order-insensitive for counters and histograms, so
at-least-once delivery and arbitrary completion order cannot skew
the totals.

The module also owns the *active* registry every instrumentation
point reads through :func:`active`.  It defaults to
:data:`NULL_METRICS`, whose every method is a no-op and whose
``enabled`` flag lets hot paths skip even argument construction::

    m = active()
    if m.enabled:
        m.counter("engine.compiled.passes")

Telemetry is execution-only by design: nothing in this module feeds
config fingerprints, result payloads, or random streams.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

#: Default histogram upper edges, in seconds — spans engine calls
#: (sub-millisecond) to whole circuits (minutes).  The overflow bucket
#: is keyed ``"inf"``.
DEFAULT_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)

_INF = "inf"


class Metrics:
    """A thread-safe named-instrument registry."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        #: name -> {"count": int, "sum": float, "buckets": {edge: int}}
        self._histograms: dict[str, dict] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str, value: int = 1) -> None:
        """Add ``value`` (default 1) to the counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float,
                buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        """Record ``value`` into the fixed-bucket histogram ``name``."""
        value = float(value)
        key = _INF
        for edge in buckets:
            if value <= edge:
                key = _edge_key(edge)
                break
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = {"count": 0, "sum": 0.0, "buckets": {}}
                self._histograms[name] = hist
            hist["count"] += 1
            hist["sum"] += value
            hist["buckets"][key] = hist["buckets"].get(key, 0) + 1

    @contextmanager
    def time(self, name: str):
        """Context manager observing the block's wall time into ``name``."""
        started = time.monotonic()
        try:
            yield
        finally:
            self.observe(name, time.monotonic() - started)

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict:
        """The whole registry as a plain JSON-native dict."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "count": hist["count"],
                        "sum": hist["sum"],
                        "buckets": dict(hist["buckets"]),
                    }
                    for name, hist in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters and histogram buckets sum (key union); gauges
        overwrite.  Tolerates partial snapshots (missing sections) so
        hand-built dicts and older envelopes merge cleanly.
        """
        if not isinstance(snapshot, dict):
            return
        counters = snapshot.get("counters") or {}
        gauges = snapshot.get("gauges") or {}
        histograms = snapshot.get("histograms") or {}
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = (
                    self._counters.get(name, 0) + int(value)
                )
            for name, value in gauges.items():
                self._gauges[name] = float(value)
            for name, incoming in histograms.items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = {"count": 0, "sum": 0.0, "buckets": {}}
                    self._histograms[name] = hist
                hist["count"] += int(incoming.get("count") or 0)
                hist["sum"] += float(incoming.get("sum") or 0.0)
                for key, count in (incoming.get("buckets") or {}).items():
                    hist["buckets"][key] = (
                        hist["buckets"].get(key, 0) + int(count)
                    )

    def is_empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._histograms)


def _edge_key(edge: float) -> str:
    """Stable JSON-key rendering of a bucket's upper edge."""
    text = repr(float(edge))
    return text[:-2] if text.endswith(".0") else text


class NullMetrics(Metrics):
    """The disabled registry: every method is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_timer = _NullTimer()

    def counter(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name, value, buckets=DEFAULT_BUCKETS) -> None:
        pass

    def time(self, name: str):
        return self._null_timer

    def merge(self, snapshot: dict) -> None:
        pass


class _NullTimer:
    """A reusable no-op context manager (no per-call allocation)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


#: The shared disabled registry; :func:`active` returns it by default.
NULL_METRICS = NullMetrics()

_active: Metrics = NULL_METRICS
_active_lock = threading.Lock()


def active() -> Metrics:
    """The registry instrumentation points write to (never ``None``)."""
    return _active


def enabled() -> bool:
    """Whether a real (non-null) registry is installed."""
    return _active.enabled


def enable(registry: Metrics | None = None) -> Metrics:
    """Install ``registry`` (default: a fresh one) as the active one."""
    global _active
    with _active_lock:
        _active = registry if registry is not None else Metrics()
        return _active


def disable() -> Metrics:
    """Restore the null registry; returns the one that was active."""
    global _active
    with _active_lock:
        previous = _active
        _active = NULL_METRICS
        return previous


@contextmanager
def collecting(registry: Metrics | None = None):
    """Scope a registry as active; restores the previous one on exit.

    The worker-side shape: ``with collecting() as m: ...;
    envelope["metrics"] = m.snapshot()``.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = registry if registry is not None else Metrics()
        current = _active
    try:
        yield current
    finally:
        with _active_lock:
            _active = previous
