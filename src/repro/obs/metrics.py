"""Process-local metrics registry: counters, gauges, histograms.

One :class:`Metrics` instance is a named bag of three instrument
kinds, all behind a single lock:

* **counters** — monotonically increasing integers (``counter``);
* **gauges** — last-write-wins floats (``gauge``);
* **histograms** — fixed-bucket distributions (``observe`` /
  ``time``), stored as upper-edge -> count maps so two snapshots
  taken with different bucket layouts still merge by key union.

``snapshot()`` renders the registry as a plain JSON-native dict and
``merge(snapshot)`` folds such a dict back in — counters and bucket
counts sum, gauges overwrite — which is how worker-side registries
travel home inside grid/net result envelopes.  Both operations are
associative and order-insensitive for counters and histograms, so
at-least-once delivery and arbitrary completion order cannot skew
the totals.

The module also owns the *active* registry every instrumentation
point reads through :func:`active`.  It defaults to
:data:`NULL_METRICS`, whose every method is a no-op and whose
``enabled`` flag lets hot paths skip even argument construction::

    m = active()
    if m.enabled:
        m.counter("engine.compiled.passes")

Telemetry is execution-only by design: nothing in this module feeds
config fingerprints, result payloads, or random streams.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

#: Default histogram upper edges, in seconds — spans engine calls
#: (sub-millisecond) to whole circuits (minutes).  The overflow bucket
#: is keyed ``"inf"``.
DEFAULT_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)

_INF = "inf"

#: Quantiles estimated in every histogram snapshot.
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def estimate_quantiles(buckets: dict, qs=QUANTILES) -> dict:
    """Upper-edge interpolated quantile estimates for a bucket map.

    ``buckets`` is the snapshot shape: ``{edge_key: count}`` with the
    overflow keyed ``"inf"``.  Each quantile is linearly interpolated
    inside the bucket its rank falls in, between the previous finite
    edge (0.0 below the first) and the bucket's upper edge.  Ranks
    landing in the overflow bucket report the largest finite edge —
    a deliberate lower bound, since the overflow has no upper edge.
    Returns ``{}`` for empty or unparseable bucket maps.
    """
    edges: list[tuple[float, int]] = []
    overflow = 0
    try:
        for key, count in buckets.items():
            n = int(count)
            if n <= 0:
                continue
            if key == _INF:
                overflow += n
            else:
                edges.append((float(key), n))
    except (TypeError, ValueError, AttributeError):
        return {}
    edges.sort()
    total = sum(n for _, n in edges) + overflow
    if not total:
        return {}
    top_edge = edges[-1][0] if edges else 0.0
    out = {}
    for label, q in qs:
        rank = q * total
        lower = 0.0
        seen = 0
        value = top_edge
        for edge, n in edges:
            if rank <= seen + n:
                fraction = (rank - seen) / n
                value = lower + (edge - lower) * fraction
                break
            seen += n
            lower = edge
        out[label] = value
    return out


class Metrics:
    """A thread-safe named-instrument registry."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        #: name -> {"count": int, "sum": float, "buckets": {edge: int}}
        self._histograms: dict[str, dict] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str, value: int = 1) -> None:
        """Add ``value`` (default 1) to the counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float,
                buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        """Record ``value`` into the fixed-bucket histogram ``name``."""
        value = float(value)
        key = _INF
        for edge in buckets:
            if value <= edge:
                key = _edge_key(edge)
                break
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = {"count": 0, "sum": 0.0, "buckets": {}}
                self._histograms[name] = hist
            hist["count"] += 1
            hist["sum"] += value
            hist["buckets"][key] = hist["buckets"].get(key, 0) + 1

    @contextmanager
    def time(self, name: str):
        """Context manager observing the block's wall time into ``name``."""
        started = time.monotonic()
        try:
            yield
        finally:
            self.observe(name, time.monotonic() - started)

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict:
        """The whole registry as a plain JSON-native dict.

        Each histogram additionally carries ``"quantiles"`` — p50/p95/
        p99 estimates interpolated from the bucket edges.  They are
        derived data: :meth:`merge` ignores them and recomputes from
        the summed buckets, so quantiles never skew across workers.
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "count": hist["count"],
                        "sum": hist["sum"],
                        "buckets": dict(hist["buckets"]),
                        "quantiles": estimate_quantiles(hist["buckets"]),
                    }
                    for name, hist in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters and histogram buckets sum (key union); gauges
        overwrite; derived ``"quantiles"`` entries are ignored (they
        are recomputed at the next snapshot).  Tolerates partial
        snapshots (missing sections) and skips individually corrupt
        entries — a worker envelope mangled in transit must never
        take the parent registry down, so every unparseable value is
        dropped and counted under ``metrics.merge_skipped``.
        """
        if not isinstance(snapshot, dict):
            return
        counters = snapshot.get("counters")
        gauges = snapshot.get("gauges")
        histograms = snapshot.get("histograms")
        skipped = 0
        with self._lock:
            for name, value in (
                counters.items() if isinstance(counters, dict) else ()
            ):
                try:
                    self._counters[name] = (
                        self._counters.get(name, 0) + int(value)
                    )
                except (TypeError, ValueError):
                    skipped += 1
            for name, value in (
                gauges.items() if isinstance(gauges, dict) else ()
            ):
                try:
                    self._gauges[name] = float(value)
                except (TypeError, ValueError):
                    skipped += 1
            for name, incoming in (
                histograms.items() if isinstance(histograms, dict) else ()
            ):
                if not isinstance(incoming, dict):
                    skipped += 1
                    continue
                merged = self._histograms.get(name)
                fresh = merged is None
                if fresh:
                    merged = {"count": 0, "sum": 0.0, "buckets": {}}
                try:
                    count = int(incoming.get("count") or 0)
                    total = float(incoming.get("sum") or 0.0)
                    buckets = incoming.get("buckets") or {}
                    deltas = {
                        key: int(n) for key, n in buckets.items()
                    } if isinstance(buckets, dict) else {}
                except (TypeError, ValueError):
                    skipped += 1
                    continue
                merged["count"] += count
                merged["sum"] += total
                for key, n in deltas.items():
                    merged["buckets"][key] = (
                        merged["buckets"].get(key, 0) + n
                    )
                if fresh:
                    self._histograms[name] = merged
            if skipped:
                self._counters["metrics.merge_skipped"] = (
                    self._counters.get("metrics.merge_skipped", 0) + skipped
                )

    def is_empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._histograms)


def _edge_key(edge: float) -> str:
    """Stable JSON-key rendering of a bucket's upper edge."""
    text = repr(float(edge))
    return text[:-2] if text.endswith(".0") else text


class NullMetrics(Metrics):
    """The disabled registry: every method is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_timer = _NullTimer()

    def counter(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name, value, buckets=DEFAULT_BUCKETS) -> None:
        pass

    def time(self, name: str):
        return self._null_timer

    def merge(self, snapshot: dict) -> None:
        pass


class _NullTimer:
    """A reusable no-op context manager (no per-call allocation)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


#: The shared disabled registry; :func:`active` returns it by default.
NULL_METRICS = NullMetrics()

_active: Metrics = NULL_METRICS
_active_lock = threading.Lock()


def active() -> Metrics:
    """The registry instrumentation points write to (never ``None``)."""
    return _active


def enabled() -> bool:
    """Whether a real (non-null) registry is installed."""
    return _active.enabled


def enable(registry: Metrics | None = None) -> Metrics:
    """Install ``registry`` (default: a fresh one) as the active one."""
    global _active
    with _active_lock:
        _active = registry if registry is not None else Metrics()
        return _active


def disable() -> Metrics:
    """Restore the null registry; returns the one that was active."""
    global _active
    with _active_lock:
        previous = _active
        _active = NULL_METRICS
        return previous


@contextmanager
def collecting(registry: Metrics | None = None):
    """Scope a registry as active; restores the previous one on exit.

    The worker-side shape: ``with collecting() as m: ...;
    envelope["metrics"] = m.snapshot()``.
    """
    global _active
    with _active_lock:
        previous = _active
        _active = registry if registry is not None else Metrics()
        current = _active
    try:
        yield current
    finally:
        with _active_lock:
            _active = previous
