"""Benchmark regression gating over committed BENCH_*.json trajectories.

``benchmarks/run_benchmarks.py`` appends one run (a list of plain row
dicts) per invocation to a trajectory file.  This module compares two
runs row-by-row and reports regressions, for the ``repro bench-diff``
command and its CI gate:

* **Row identity** is every non-metric field except ``cpus`` —
  circuit, engine/backend, style, knobs, and deterministic outputs
  (pattern/fault/candidate counts).  Rows whose identities match in
  both runs are compared; identities present in only one run are
  reported as unmatched (a bench matrix change, not a perf verdict).
* **Metrics** carry a direction: ``seconds_per_*`` regress upward,
  throughput (``*_per_sec``, ``kills_per_candidate``) regresses
  downward.  A metric regresses when it is worse than baseline by
  more than ``tolerance`` (a fraction — 0.5 means "more than 50%
  worse").  Timing on shared runners is noisy, so the default is
  deliberately loose; tighten it on quiet hardware.
* **cpus-aware**: a matched pair measured on different core counts is
  *skipped*, not judged — the committed trajectories come from a
  single-core box and CI runs multi-core, and comparing those as if
  equal would gate on the machine, not the code.
"""

from __future__ import annotations

import json

#: Metric fields where a larger fresh value is a regression.
LOWER_IS_BETTER = frozenset({"seconds_per_pass", "seconds_per_run"})

#: Metric fields where a smaller fresh value is a regression.
HIGHER_IS_BETTER = frozenset({
    "patterns_per_sec",
    "faults_per_sec",
    "candidates_per_sec",
    "kills_per_candidate",
})

_METRICS = LOWER_IS_BETTER | HIGHER_IS_BETTER

#: Fraction of allowed degradation before a metric counts as regressed.
DEFAULT_TOLERANCE = 0.5


def load_trajectory(path: str) -> dict:
    """Parse a trajectory file; raises ValueError when malformed."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
        raise ValueError(f"{path}: not a benchmark trajectory")
    return doc


def run_rows(doc: dict, index: int = -1) -> list[dict]:
    """The row list of one run (default: the latest)."""
    runs = doc.get("runs") or []
    if not runs:
        return []
    run = runs[index]
    rows = run.get("rows")
    return [row for row in rows if isinstance(row, dict)] if rows else []


def row_identity(row: dict) -> tuple:
    """Hashable identity of a row: non-metric fields minus ``cpus``."""
    return tuple(sorted(
        (key, value) for key, value in row.items()
        if key not in _METRICS and key != "cpus"
    ))


def diff_rows(baseline: list[dict], fresh: list[dict],
              tolerance: float = DEFAULT_TOLERANCE) -> dict:
    """Compare two row lists; returns the full report dict.

    ``{"regressions": [...], "improved": [...], "ok": int,
    "skipped": [...], "unmatched": int}`` — each regression entry
    names the row identity, metric, both values, and the ratio.
    """
    base_by_id = {row_identity(row): row for row in baseline}
    fresh_by_id = {row_identity(row): row for row in fresh}
    regressions: list[dict] = []
    improved: list[dict] = []
    skipped: list[dict] = []
    ok = 0
    matched = 0
    for identity in sorted(base_by_id):
        if identity not in fresh_by_id:
            continue
        matched += 1
        base_row = base_by_id[identity]
        fresh_row = fresh_by_id[identity]
        label = ", ".join(f"{k}={v}" for k, v in identity)
        if base_row.get("cpus") != fresh_row.get("cpus"):
            skipped.append({
                "row": label,
                "reason": (
                    f"cpus differ (baseline={base_row.get('cpus')}, "
                    f"fresh={fresh_row.get('cpus')})"
                ),
            })
            continue
        for metric in sorted(_METRICS):
            if metric not in base_row or metric not in fresh_row:
                continue
            try:
                base_value = float(base_row[metric])
                fresh_value = float(fresh_row[metric])
            except (TypeError, ValueError):
                skipped.append({
                    "row": label,
                    "reason": f"non-numeric {metric}",
                })
                continue
            if base_value <= 0.0:
                skipped.append({
                    "row": label,
                    "reason": f"zero baseline {metric}",
                })
                continue
            entry = {
                "row": label,
                "metric": metric,
                "baseline": base_value,
                "fresh": fresh_value,
                "ratio": fresh_value / base_value,
            }
            if metric in LOWER_IS_BETTER:
                degraded = fresh_value > base_value * (1.0 + tolerance)
                better = fresh_value < base_value
            else:
                degraded = fresh_value < base_value * (1.0 - tolerance)
                better = fresh_value > base_value
            if degraded:
                regressions.append(entry)
            elif better:
                improved.append(entry)
                ok += 1
            else:
                ok += 1
    unmatched = (
        len(base_by_id) - matched + len(fresh_by_id) - matched
    )
    return {
        "regressions": regressions,
        "improved": improved,
        "ok": ok,
        "skipped": skipped,
        "unmatched": unmatched,
    }


def compare_trajectories(fresh_path: str, baseline_path: str | None = None,
                         tolerance: float = DEFAULT_TOLERANCE) -> dict:
    """Diff two trajectory files, or a file's latest run vs its previous.

    One-path mode is the CI shape: the bench smoke appends a fresh run
    to the committed trajectory, then the gate compares that appended
    run against the run before it.  Returns the :func:`diff_rows`
    report plus a ``"note"`` when there is nothing to compare.
    """
    fresh_doc = load_trajectory(fresh_path)
    if baseline_path is None:
        runs = fresh_doc.get("runs") or []
        if len(runs) < 2:
            return {
                "regressions": [], "improved": [], "ok": 0,
                "skipped": [], "unmatched": 0,
                "note": (
                    f"{fresh_path}: only {len(runs)} run(s) in the "
                    "trajectory, nothing to diff against"
                ),
            }
        baseline = run_rows(fresh_doc, -2)
        fresh = run_rows(fresh_doc, -1)
    else:
        baseline = run_rows(load_trajectory(baseline_path), -1)
        fresh = run_rows(fresh_doc, -1)
    return diff_rows(baseline, fresh, tolerance)
