"""Hierarchical trace spans exported as Chrome trace-event JSON.

A :class:`Tracer` collects timing events in the Chrome trace-event
format (the ``chrome://tracing`` / Perfetto JSON flavour): each event
carries ``ph`` (phase), ``ts`` (microseconds since the tracer was
created), ``pid``, ``tid``, and ``name``.  Three event shapes cover
the campaign hierarchy:

* **duration spans** (``ph: "B"``/``"E"``) — strictly nested per
  ``tid``; used for campaign, circuit, and stage scopes, and for
  engine calls (one ``tid`` per thread).
* **async spans** (``ph: "b"``/``"e"`` with an ``id``) — may overlap
  freely; used for work units, whose start/done events interleave
  arbitrarily under parallel schedulers.
* **instants** (``ph: "i"``) — zero-duration marks; used for events
  without a matching begin, e.g. cache-served circuits and units.

Timestamps are stamped when the event is *recorded* from a single
``time.monotonic()`` origin, so ``ts`` is monotone within any tid by
construction.  ``export()`` returns the ``{"traceEvents": [...]}``
container that Perfetto loads directly, and :func:`summarize` folds
an exported trace back into per-name self-time totals for the
``repro trace`` command.

Like the metrics registry, the module keeps an *active* tracer that
defaults to :data:`NULL_TRACER` (all methods no-ops), so the
disabled path costs one attribute read.

Traces stitch across processes and machines: every tracer records a
wall-clock *epoch* alongside its monotonic origin, workers ship their
events home as an :meth:`Tracer.export_buffer` dict riding the same
completion envelopes worker metrics snapshots use, and the parent
stitches each buffer in with :meth:`Tracer.absorb` — rebasing
timestamps onto its own origin via the epoch delta and keeping the
worker's ``pid`` so each worker gets its own lane in the merged
Chrome trace.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

_PID = "repro"

#: Schema version stamped on worker span buffers; the parent skips
#: buffers from a future schema instead of mis-stitching them.
BUFFER_VERSION = 1


class Tracer:
    """Collects Chrome trace events; thread-safe."""

    enabled = True

    def __init__(self, pid: str = _PID) -> None:
        self._pid = pid
        self._t0 = time.monotonic()
        # Wall-clock anchor of the monotonic origin: buffers from other
        # processes/machines rebase onto this tracer's timeline by epoch
        # delta, the only clock shared across process boundaries.
        self._epoch = time.time()  # lint: allow(bare-random)
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self._next_id = 0

    def _now_us(self) -> float:
        return (time.monotonic() - self._t0) * 1e6

    def _emit(self, event: dict) -> None:
        event["ts"] = self._now_us()
        event["pid"] = self._pid
        with self._lock:
            self._events.append(event)

    # -- duration spans (strictly nested per tid) ----------------------------

    def begin(self, name: str, tid: str, args: dict | None = None) -> None:
        event = {"ph": "B", "name": name, "tid": tid}
        if args:
            event["args"] = args
        self._emit(event)

    def end(self, name: str, tid: str, args: dict | None = None) -> None:
        event = {"ph": "E", "name": name, "tid": tid}
        if args:
            event["args"] = args
        self._emit(event)

    @contextmanager
    def span(self, name: str, tid: str, args: dict | None = None):
        self.begin(name, tid, args)
        try:
            yield
        finally:
            self.end(name, tid)

    # -- async spans (may overlap) -------------------------------------------

    def async_begin(self, name: str, span_id: str,
                    cat: str = "unit", args: dict | None = None) -> None:
        event = {"ph": "b", "name": name, "tid": cat,
                 "cat": cat, "id": span_id}
        if args:
            event["args"] = args
        self._emit(event)

    def async_end(self, name: str, span_id: str,
                  cat: str = "unit", args: dict | None = None) -> None:
        event = {"ph": "e", "name": name, "tid": cat,
                 "cat": cat, "id": span_id}
        if args:
            event["args"] = args
        self._emit(event)

    # -- instants -------------------------------------------------------------

    def instant(self, name: str, tid: str, args: dict | None = None) -> None:
        event = {"ph": "i", "name": name, "tid": tid, "s": "t"}
        if args:
            event["args"] = args
        self._emit(event)

    # -- export ---------------------------------------------------------------

    def export(self) -> dict:
        """The Perfetto-loadable ``{"traceEvents": [...]}`` container.

        Events are sorted by timestamp (stable, so same-``ts`` events
        keep emission order): absorbed buffers land in completion
        order, and epoch-rebased timestamps from a reused worker can
        overlap the previous unit's by the wall-vs-monotonic clock
        skew, so append order alone is not time order.
        """
        with self._lock:
            events = sorted(self._events, key=lambda e: e["ts"])
            return {
                "traceEvents": [dict(e) for e in events],
                "displayTimeUnit": "ms",
            }

    def export_buffer(self) -> dict:
        """This tracer's events as a serializable cross-process buffer.

        The worker-side half of trace stitching: the returned dict
        rides a completion envelope (next to the worker's metrics
        snapshot) and is folded into the parent's timeline with
        :meth:`absorb`.
        """
        with self._lock:
            return {
                "version": BUFFER_VERSION,
                "pid": self._pid,
                "epoch": self._epoch,
                "events": [dict(e) for e in self._events],
            }

    def absorb(self, buffer: dict) -> int:
        """Stitch a worker's :meth:`export_buffer` into this tracer.

        Timestamps are rebased onto this tracer's origin using the
        wall-clock epoch delta (then clamped at zero, so a buffer
        whose epoch predates this tracer cannot go negative); every
        event keeps the worker's ``pid``
        so each worker renders as its own process lane.  Buffers from
        an unknown schema version or with no events are skipped.
        Returns the number of events absorbed.
        """
        if not isinstance(buffer, dict):
            return 0
        if buffer.get("version") != BUFFER_VERSION:
            return 0
        events = buffer.get("events")
        if not isinstance(events, list) or not events:
            return 0
        try:
            offset_us = (float(buffer["epoch"]) - self._epoch) * 1e6
        except (KeyError, TypeError, ValueError):
            return 0
        pid = buffer.get("pid") or _PID
        absorbed = []
        for event in events:
            if not isinstance(event, dict):
                continue
            stitched = dict(event)
            try:
                stitched["ts"] = max(
                    0.0, float(event.get("ts") or 0.0) + offset_us
                )
            except (TypeError, ValueError):
                continue
            stitched["pid"] = pid
            absorbed.append(stitched)
        with self._lock:
            self._events.extend(absorbed)
        return len(absorbed)

    def write(self, path: str) -> None:
        """Atomically write :meth:`export` as JSON to ``path``."""
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.export(), fh)
        os.replace(tmp, path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class NullTracer(Tracer):
    """The disabled tracer: every method is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_span = _NullSpan()

    def _emit(self, event: dict) -> None:
        pass

    def span(self, name, tid, args=None):
        return self._null_span

    def export_buffer(self) -> dict:
        return {}

    def absorb(self, buffer: dict) -> int:
        return 0


class _NullSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


NULL_TRACER = NullTracer()

_active: Tracer = NULL_TRACER
_active_lock = threading.Lock()


def active() -> Tracer:
    """The tracer instrumentation points write to (never ``None``)."""
    return _active


def enable(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (default: a fresh one) as the active one."""
    global _active
    with _active_lock:
        _active = tracer if tracer is not None else Tracer()
        return _active


def disable() -> Tracer:
    """Restore the null tracer; returns the one that was active."""
    global _active
    with _active_lock:
        previous = _active
        _active = NULL_TRACER
        return previous


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Scope a tracer as active; restores the previous one on exit."""
    global _active
    with _active_lock:
        previous = _active
        _active = tracer if tracer is not None else Tracer()
        current = _active
    try:
        yield current
    finally:
        with _active_lock:
            _active = previous


#: Chrome trace-event phases this module emits.
_PHASES = frozenset({"B", "E", "b", "e", "i"})


def validate_trace(trace: dict) -> int:
    """Check an exported trace against the schema this module emits.

    The one validator shared by the test suite and the CI trace
    smokes (``repro trace --validate``).  Raises :class:`ValueError`
    naming the first offending event; returns the event count.
    Checks: the ``traceEvents`` container, required keys per event,
    known phases, numeric non-negative timestamps monotone within
    each ``(pid, tid)`` lane, ``cat``/``id`` on async events, and the
    instant scope field.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace is not a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace has no traceEvents list")
    if not events:
        raise ValueError("trace is empty")
    last: dict[tuple, float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for key in ("ph", "ts", "pid", "tid", "name"):
            if key not in event:
                raise ValueError(f"event {index} is missing {key!r}")
        ph = event["ph"]
        if ph not in _PHASES:
            raise ValueError(f"event {index} has unknown phase {ph!r}")
        try:
            ts = float(event["ts"])
        except (TypeError, ValueError):
            raise ValueError(f"event {index} has a non-numeric ts")
        if ts < 0.0:
            raise ValueError(f"event {index} has a negative ts")
        lane = (event["pid"], event["tid"])
        if ts < last.get(lane, 0.0):
            raise ValueError(
                f"event {index} goes back in time within lane {lane}"
            )
        last[lane] = ts
        if ph in ("b", "e"):
            if "id" not in event or "cat" not in event:
                raise ValueError(
                    f"async event {index} is missing id/cat"
                )
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            raise ValueError(f"instant {index} has a bad scope")
    return len(events)


def summarize(trace: dict, top: int = 15) -> list[dict]:
    """Per-name self-time totals from an exported trace, descending.

    Duration spans (``B``/``E``) are matched with a per-``(pid, tid)``
    stack; a span's self time is its duration minus the durations of
    its direct children.  Async spans (``b``/``e``) are matched by
    ``(cat, id, name)`` and treated as leaves (their whole duration is
    self time), since work-unit execution happens in another process.
    Returns up to ``top`` rows of ``{"name", "count", "total_us",
    "self_us"}``.
    """
    events = trace.get("traceEvents") or []
    totals: dict[str, dict] = {}

    def row(name: str) -> dict:
        entry = totals.get(name)
        if entry is None:
            entry = {"name": name, "count": 0,
                     "total_us": 0.0, "self_us": 0.0}
            totals[name] = entry
        return entry

    stacks: dict[tuple, list] = {}
    open_async: dict[tuple, float] = {}
    for event in events:
        ph = event.get("ph")
        ts = float(event.get("ts") or 0.0)
        name = event.get("name", "?")
        if ph == "B":
            key = (event.get("pid"), event.get("tid"))
            stacks.setdefault(key, []).append(
                {"name": name, "ts": ts, "children_us": 0.0})
        elif ph == "E":
            key = (event.get("pid"), event.get("tid"))
            stack = stacks.get(key)
            if not stack:
                continue
            frame = stack.pop()
            duration = max(0.0, ts - frame["ts"])
            entry = row(frame["name"])
            entry["count"] += 1
            entry["total_us"] += duration
            entry["self_us"] += max(0.0, duration - frame["children_us"])
            if stack:
                stack[-1]["children_us"] += duration
        elif ph == "b":
            open_async[(event.get("cat"), event.get("id"), name)] = ts
        elif ph == "e":
            start = open_async.pop(
                (event.get("cat"), event.get("id"), name), None)
            if start is None:
                continue
            duration = max(0.0, ts - start)
            entry = row(name)
            entry["count"] += 1
            entry["total_us"] += duration
            entry["self_us"] += duration
        elif ph == "i":
            entry = row(name)
            entry["count"] += 1
    rows = sorted(totals.values(),
                  key=lambda r: (-r["self_us"], -r["total_us"], r["name"]))
    return rows[: max(0, int(top))]
