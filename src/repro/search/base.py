"""Search strategy protocol, budget, and named registry.

A *search strategy* proposes candidate stimulus vectors for the
mutation-adequate generator and learns from the evaluation feedback
(how many live mutants each candidate killed).  The blind pseudo-random
draw of the paper's section 2 is the ``random`` strategy — the pinned
baseline — while the coverage-guided strategies (``bitflip``,
``genetic``, ``anneal``) evolve new candidates from corpus vectors that
already killed mutants.

The contract mirrors the other registries (:mod:`repro.sampling.registry`,
:mod:`repro.engine`): a strategy class needs

* a non-empty class attribute ``name`` (the registry key),
* ``propose(count) -> list[int]`` returning ``count`` packed stimulus
  integers in ``[0, 2**width)``,
* ``feedback(vectors, scores)`` accepting the per-vector kill counts of
  the last proposals (may be a no-op),

and must be **deterministic**: every random draw comes from labelled
streams derived via :func:`repro.util.rng.spawn` from the constructor's
``(seed, labels)``, so repeated runs — serial or process-parallel — are
bit-identical.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.errors import SearchError
from repro.search.corpus import Corpus
from repro.util.registry import Registry
from repro.util.rng import LabelledRandom, rng_stream, spawn


@dataclass(frozen=True)
class SearchBudget:
    """Caps on one search run.

    ``max_candidates`` bounds the total number of proposed vectors;
    ``max_stale_rounds`` bounds consecutive rounds without progress
    (tightening the generator's own ``stall_rounds`` when smaller).
    ``None`` leaves the corresponding dimension uncapped.
    """

    max_candidates: int | None = None
    max_stale_rounds: int | None = None

    def __post_init__(self) -> None:
        if self.max_candidates is not None and self.max_candidates < 1:
            raise SearchError(
                f"max_candidates must be >= 1, got {self.max_candidates}"
            )
        if self.max_stale_rounds is not None and self.max_stale_rounds < 1:
            raise SearchError(
                f"max_stale_rounds must be >= 1, got {self.max_stale_rounds}"
            )

    def exhausted(self, candidates_tried: int, stale_rounds: int) -> bool:
        if (
            self.max_candidates is not None
            and candidates_tried >= self.max_candidates
        ):
            return True
        return (
            self.max_stale_rounds is not None
            and stale_rounds >= self.max_stale_rounds
        )

    def clamp(self, count: int, candidates_tried: int) -> int:
        """``count`` trimmed so the candidate cap is never overshot."""
        if self.max_candidates is None:
            return count
        return min(count, self.max_candidates - candidates_tried)


class SearchStrategy:
    """Base class: labelled root stream, shared corpus, the protocol.

    ``labels`` is the stream identity (the generator passes
    ``(design_name, "mutation-testgen")``); subclasses derive all
    randomness from ``self._rng`` or per-round/per-individual children
    via :func:`repro.util.rng.spawn`, never from global state.
    """

    name: str = ""

    def __init__(
        self,
        width: int,
        seed: int,
        labels: tuple[str, ...] = (),
        field_widths: tuple[int, ...] | None = None,
        corpus: Corpus | None = None,
        cycles: int = 1,
    ):
        """``width`` is the per-cycle stimulus width; ``cycles`` > 1
        makes each proposal a packed multi-cycle chunk (cycle 0 in the
        most significant bits), so sequential searches mutate whole
        input *sequences* instead of single cycles."""
        if width < 1:
            raise SearchError(f"vector width must be >= 1, got {width}")
        if cycles < 1:
            raise SearchError(f"cycles must be >= 1, got {cycles}")
        per_cycle = tuple(field_widths or (width,))
        if sum(per_cycle) != width:
            raise SearchError(
                f"field widths {per_cycle} do not sum to the "
                f"vector width {width}"
            )
        self._cycle_width = width
        self._cycles = cycles
        self._width = width * cycles
        self._mask = (1 << self._width) - 1
        self._field_widths = per_cycle * cycles
        self._rng: LabelledRandom = rng_stream(seed, *labels)
        self.corpus = corpus if corpus is not None else Corpus()
        self._round = 0

    @property
    def width(self) -> int:
        """Total proposal width (per-cycle width × cycles)."""
        return self._width

    @property
    def cycles(self) -> int:
        return self._cycles

    def propose(self, count: int) -> list[int]:
        """The next ``count`` candidate vectors."""
        raise NotImplementedError

    def feedback(self, vectors: list[int], scores: list[int]) -> None:
        """Record evaluation results: ``scores[i]`` live kills of
        ``vectors[i]``.  Default: feed the shared corpus."""
        for vector, score in zip(vectors, scores):
            self.corpus.add(vector, score)

    # -- helpers for subclasses ---------------------------------------------

    def _uniform(self, rng) -> int:
        return rng.getrandbits(self._width)

    def _round_rng(self) -> LabelledRandom:
        """A fresh labelled stream for the current round."""
        return spawn(self._rng, "round", str(self._round))

    def _individual_rng(self, index: int) -> LabelledRandom:
        """A fresh labelled stream for one individual of this round."""
        return spawn(self._rng, "round", str(self._round), "ind", str(index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} width={self._width}>"


# -- registry ----------------------------------------------------------------

#: name -> strategy class.
SEARCH_STRATEGIES: dict[str, type[SearchStrategy]] = {}

#: The pinned baseline (the paper's blind pseudo-random draw).
DEFAULT_SEARCH = "random"


_REGISTRY = Registry("search strategy", SearchError,
                     entries=SEARCH_STRATEGIES)


def register_search_strategy(cls: type[SearchStrategy] | None = None, *,
                             replace: bool = False):
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    return _REGISTRY.register(cls, replace=replace)


def get_search_strategy(name: str) -> type[SearchStrategy]:
    """Look up a registered search strategy class by name."""
    return _REGISTRY.get(name)


def search_strategy_names() -> tuple[str, ...]:
    return _REGISTRY.names()


def build_search_strategy(
    name: str,
    width: int,
    seed: int,
    labels: tuple[str, ...] = (),
    field_widths: tuple[int, ...] | None = None,
    cycles: int = 1,
    knobs: dict | None = None,
) -> SearchStrategy:
    """Instantiate a registered strategy with per-strategy ``knobs``.

    Knob names are validated against the constructor signature so a
    typo in a config file fails loudly instead of being ignored.
    """
    cls = get_search_strategy(name)
    parameters = inspect.signature(cls.__init__).parameters
    extra = dict(knobs or {})
    # Builder-owned parameters are not knobs: naming one must fail the
    # same loud way an unknown name does, not TypeError mid-campaign.
    reserved = {
        "self", "width", "seed", "labels", "field_widths", "corpus",
        "cycles",
    }
    bad = sorted((set(extra) - set(parameters)) | (set(extra) & reserved))
    if bad:
        accepted = sorted(p for p in parameters if p not in reserved)
        raise SearchError(
            f"unknown knobs for search strategy {name!r}: "
            f"{', '.join(bad)} (accepted: {', '.join(accepted) or 'none'})"
        )
    return cls(
        width, seed, labels=tuple(labels), field_widths=field_widths,
        cycles=cycles, **extra,
    )
