"""Structure-aware bit mutations over packed stimulus vectors.

The mutation vocabulary the coverage-guided strategies share.  A packed
stimulus is one unsigned integer; ``field_widths`` (MSB-first, from
:attr:`repro.sim.testbench.StimulusEncoder.field_widths`) describes the
input-port fields inside it, so mutators can either treat the vector as
an opaque bit string (AFL's "dumb" flips) or respect the port structure
(randomize / step one field at a time).
"""

from __future__ import annotations


def field_spans(
    width: int, field_widths: tuple[int, ...]
) -> list[tuple[int, int]]:
    """``(shift, width)`` of every field, MSB-first packing order."""
    spans = []
    shift = width
    for field_width in field_widths:
        shift -= field_width
        spans.append((shift, field_width))
    return spans


def flip_one(vector: int, width: int, rng) -> int:
    """Flip a single random bit."""
    return vector ^ (1 << rng.randrange(width))


def flip_many(vector: int, width: int, rng) -> int:
    """Flip 2..4 distinct random bits."""
    count = min(width, rng.randrange(2, 5))
    for position in rng.sample(range(width), count):
        vector ^= 1 << position
    return vector


def swap_windows(vector: int, width: int, rng) -> int:
    """Swap two non-overlapping equal-size bit windows (byte shuffle).

    Window size adapts to narrow vectors: 8 bits when they fit twice,
    otherwise half the vector.
    """
    size = 8 if width >= 16 else max(1, width // 2)
    if width < 2 * size:
        return flip_one(vector, width, rng)
    first = rng.randrange(width - 2 * size + 1)
    second = first + size + rng.randrange(width - first - 2 * size + 1)
    mask = (1 << size) - 1
    a = (vector >> first) & mask
    b = (vector >> second) & mask
    vector &= ~((mask << first) | (mask << second))
    return vector | (b << first) | (a << second)


def randomize_field(
    vector: int, spans: list[tuple[int, int]], rng
) -> int:
    """Replace one input field with a fresh uniform value."""
    shift, size = spans[rng.randrange(len(spans))]
    mask = (1 << size) - 1
    return (vector & ~(mask << shift)) | (rng.getrandbits(size) << shift)


def step_field(vector: int, spans: list[tuple[int, int]], rng) -> int:
    """Add ±1 to one input field, wrapping inside the field."""
    shift, size = spans[rng.randrange(len(spans))]
    mask = (1 << size) - 1
    value = (vector >> shift) & mask
    value = (value + (1 if rng.random() < 0.5 else -1)) & mask
    return (vector & ~(mask << shift)) | (value << shift)


def havoc(
    vector: int, width: int, spans: list[tuple[int, int]], rng
) -> int:
    """A stacked run of 2..4 random primitive mutations."""
    for _ in range(rng.randrange(2, 5)):
        vector = mutate(vector, width, spans, rng)
    return vector


def mutate(
    vector: int, width: int, spans: list[tuple[int, int]], rng
) -> int:
    """One primitive mutation, chosen uniformly from the vocabulary."""
    choice = rng.randrange(5)
    if choice == 0:
        return flip_one(vector, width, rng)
    if choice == 1:
        return flip_many(vector, width, rng)
    if choice == 2:
        return swap_windows(vector, width, rng)
    if choice == 3:
        return randomize_field(vector, spans, rng)
    return step_field(vector, spans, rng)
