"""repro.search — coverage-guided stochastic search for test vectors.

The mutation-adequate generator (:mod:`repro.testgen.mutation_gen`)
needs candidate stimulus vectors; this package decides *which*
candidates to try.  The paper's blind pseudo-random draw is the
``random`` strategy, and the coverage-guided strategies (``bitflip``,
``genetic``, ``anneal``) evolve candidates from a :class:`Corpus` of
vectors that already killed mutants — fitness is evaluated through the
injected engine, so the compiled backend's speed directly buys search
depth.

::

    from repro.search import SearchBudget, build_search_strategy

    strategy = build_search_strategy(
        "bitflip", width=8, seed=7, labels=("c17", "mutation-testgen"),
    )
    batch = strategy.propose(64)          # candidate vectors
    strategy.feedback(batch, scores)      # kills per candidate

Select a strategy campaign-wide with ``CampaignConfig(search=...)`` or
``--search`` on the CLI; ``repro strategies`` lists the registry.
Every strategy is bit-reproducible from labelled RNG streams, so runs
are identical across repetitions and ``--jobs`` layouts.
"""

from repro.search.base import (
    DEFAULT_SEARCH,
    SEARCH_STRATEGIES,
    SearchBudget,
    SearchStrategy,
    build_search_strategy,
    get_search_strategy,
    register_search_strategy,
    search_strategy_names,
)
from repro.search.corpus import Corpus, CorpusEntry
from repro.search.strategies import (
    AnnealSearch,
    BitflipSearch,
    GeneticSearch,
    RandomSearch,
)

__all__ = [
    "AnnealSearch",
    "BitflipSearch",
    "Corpus",
    "CorpusEntry",
    "DEFAULT_SEARCH",
    "GeneticSearch",
    "RandomSearch",
    "SEARCH_STRATEGIES",
    "SearchBudget",
    "SearchStrategy",
    "build_search_strategy",
    "get_search_strategy",
    "register_search_strategy",
    "search_strategy_names",
]
