"""The corpus: scored seed vectors with an energy schedule.

Every coverage-guided strategy draws its mutation seeds from a
:class:`Corpus` — vectors that killed at least one live mutant when
they were evaluated, each carrying its kill count as *score*.  Seed
selection is energy-weighted (an AFL-style power schedule): a seed's
energy is ``1 + score``, decayed every time it is picked so the search
rotates through the corpus instead of hammering the single best seed.

Everything is deterministic: insertion order breaks ties, eviction is
by ``(score, recency)``, and :meth:`pick` draws from the caller's
labelled stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CorpusEntry:
    """One scored seed vector."""

    vector: int
    score: int                 #: live mutants killed when evaluated
    age: int                   #: insertion sequence number
    picks: int = field(default=0)  #: times chosen as a mutation seed

    @property
    def energy(self) -> float:
        """Power-schedule weight: score-proportional, decayed per pick."""
        return (1.0 + self.score) / (1.0 + self.picks)


class Corpus:
    """A bounded, deduplicated pool of scored seed vectors."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"corpus capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: dict[int, CorpusEntry] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def entries(self) -> list[CorpusEntry]:
        """Entries in insertion order (stable across runs)."""
        return sorted(self._entries.values(), key=lambda e: e.age)

    def add(self, vector: int, score: int) -> bool:
        """Admit ``vector`` when it scored; returns True if kept.

        Re-adding a known vector keeps the higher score.  When full,
        the weakest entry — lowest ``(score, age)``, i.e. oldest among
        the worst — is evicted, but never in favour of a weaker newcomer.
        """
        if score < 1:
            return False
        known = self._entries.get(vector)
        if known is not None:
            if score > known.score:
                known.score = score
            return True
        if len(self._entries) >= self._capacity:
            weakest = min(
                self._entries.values(), key=lambda e: (e.score, e.age)
            )
            if weakest.score >= score:
                return False
            del self._entries[weakest.vector]
        self._entries[vector] = CorpusEntry(vector, score, self._counter)
        self._counter += 1
        return True

    def pick(self, rng) -> int:
        """Energy-weighted seed selection from the caller's stream."""
        entries = self.entries
        if not entries:
            raise IndexError("pick from an empty corpus")
        total = sum(entry.energy for entry in entries)
        point = rng.random() * total
        cumulative = 0.0
        chosen = entries[-1]
        for entry in entries:
            cumulative += entry.energy
            if point < cumulative:
                chosen = entry
                break
        chosen.picks += 1
        return chosen.vector

    def best(self) -> CorpusEntry:
        """The highest-scoring entry (earliest wins ties).

        Raises the same domain error as :meth:`pick` when the corpus is
        empty, instead of ``max()``'s bare ``ValueError``.
        """
        entries = self.entries
        if not entries:
            raise IndexError("best of an empty corpus")
        return max(entries, key=lambda e: (e.score, -e.age))
