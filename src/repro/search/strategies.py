"""The built-in search strategies.

* ``random``  — the pinned baseline: blind uniform draws, bit-identical
  to the pre-search :class:`repro.testgen.RandomVectorGenerator` stream.
* ``bitflip`` — AFL-style hill climbing: corpus seeds picked by energy,
  mutated by single/multi bit flips, window shuffles and
  input-field-aware edits, with an exploration fraction of fresh
  uniform draws so the search never starves on a stale corpus.
* ``genetic`` — a population (the corpus) evolved by tournament
  selection, uniform/one-point crossover and low-rate bit mutation;
  fitness is the kill count.
* ``anneal``  — simulated annealing over vector edits: neighbourhood
  radius and acceptance both follow a geometric temperature schedule.

Every draw comes from per-round / per-individual labelled streams
(:func:`repro.util.rng.spawn`), so proposals are a pure function of
``(seed, labels, feedback history)`` — independent of wall clock,
process layout and hash seeds.
"""

from __future__ import annotations

import math

from repro.search import mutators
from repro.search.base import SearchStrategy, register_search_strategy
from repro.search.corpus import Corpus, CorpusEntry
from repro.util.rng import spawn


@register_search_strategy
class RandomSearch(SearchStrategy):
    """Blind uniform sampling (the paper's baseline, pinned)."""

    name = "random"

    def propose(self, count: int) -> list[int]:
        # Straight off the root stream, one draw per cycle: the exact
        # vector sequence of RandomVectorGenerator(width, seed, *labels)
        # for any chunking.
        out = []
        for _ in range(count):
            packed = 0
            for _ in range(self._cycles):
                packed = (packed << self._cycle_width) | (
                    self._rng.getrandbits(self._cycle_width)
                )
            out.append(packed)
        return out

    def feedback(self, vectors: list[int], scores: list[int]) -> None:
        """The baseline learns nothing — that is the point."""


class _GuidedSearch(SearchStrategy):
    """Shared plumbing for the corpus-driven strategies.

    Exploration is adaptive: every feedback *signal* in which no
    proposal killed anything widens the uniform-draw fraction one
    notch, and any scoring signal resets the ramp.  Combinational
    generation sends one signal per batch; sequential generation sends
    one per candidate chunk, so a dead sequential round saturates
    exploration within the round — deliberate: each dead chunk is
    independent evidence the corpus neighbourhood is exhausted for the
    *current* machine state, and the very next kill snaps exploration
    back.  A strategy whose guidance has gone stale (tiny input spaces,
    all easy mutants dead) thus degrades toward the blind baseline
    instead of grinding on an exhausted neighbourhood.
    """

    def __init__(
        self,
        width: int,
        seed: int,
        labels: tuple[str, ...] = (),
        field_widths: tuple[int, ...] | None = None,
        corpus: Corpus | None = None,
        cycles: int = 1,
        explore: float = 0.25,
    ):
        super().__init__(
            width, seed, labels=labels, field_widths=field_widths,
            corpus=corpus, cycles=cycles,
        )
        self._explore = float(explore)
        self._stale_feedback = 0
        self._proposed: set[int] = set()
        self._spans = mutators.field_spans(self._width, self._field_widths)

    def _begin_round(self) -> None:
        self._round += 1
        # Chunked (sequential) proposals are evaluated against the
        # committed prefix state, which moves between rounds — a chunk
        # that scored nothing last round may kill now, so the novelty
        # memory only holds within a round.  Combinational evaluations
        # are stateless, so there the memory is global.
        if self._cycles > 1:
            self._proposed.clear()

    def _explore_now(self) -> float:
        return min(1.0, self._explore * (1 + self._stale_feedback))

    def _novelize(self, vector: int, rng) -> int:
        """Nudge an already-tried proposal until it is novel.

        Re-proposing a vector whose evaluation cannot have changed is
        pure waste, so duplicates are mutated away — a few attempts,
        then accepted as-is.  The blind baseline deliberately has no
        such memory.
        """
        for _ in range(4):
            if vector not in self._proposed:
                break
            vector = mutators.mutate(vector, self._width, self._spans, rng)
        self._proposed.add(vector)
        return vector

    def feedback(self, vectors: list[int], scores: list[int]) -> None:
        super().feedback(vectors, scores)
        if vectors:
            if max(scores) > 0:
                self._stale_feedback = 0
            else:
                self._stale_feedback += 1


@register_search_strategy
class BitflipSearch(_GuidedSearch):
    """AFL-style hill climbing over corpus seeds."""

    name = "bitflip"

    def __init__(
        self,
        width: int,
        seed: int,
        labels: tuple[str, ...] = (),
        field_widths: tuple[int, ...] | None = None,
        corpus: Corpus | None = None,
        cycles: int = 1,
        explore: float = 0.25,
        havoc_fraction: float = 0.5,
    ):
        super().__init__(
            width, seed, labels=labels, field_widths=field_widths,
            corpus=corpus, cycles=cycles, explore=explore,
        )
        self._havoc_fraction = float(havoc_fraction)

    def propose(self, count: int) -> list[int]:
        self._begin_round()
        out = []
        for index in range(count):
            rng = self._individual_rng(index)
            if not self.corpus or rng.random() < self._explore_now():
                out.append(self._novelize(self._uniform(rng), rng))
                continue
            seed_vector = self.corpus.pick(rng)
            if rng.random() < self._havoc_fraction:
                candidate = mutators.havoc(
                    seed_vector, self._width, self._spans, rng
                )
            else:
                candidate = mutators.mutate(
                    seed_vector, self._width, self._spans, rng
                )
            out.append(self._novelize(candidate, rng))
        return out


@register_search_strategy
class GeneticSearch(_GuidedSearch):
    """Population search: tournament selection + crossover + mutation."""

    name = "genetic"

    def __init__(
        self,
        width: int,
        seed: int,
        labels: tuple[str, ...] = (),
        field_widths: tuple[int, ...] | None = None,
        corpus: Corpus | None = None,
        cycles: int = 1,
        explore: float = 0.2,
        population_size: int = 32,
        tournament: int = 3,
        # Mutation-heavy by default: crossover of similar parents keeps
        # reproducing near-duplicates in narrow (chunked) input spaces,
        # so most offspring get a primitive mutation on top.
        mutation_rate: float = 0.8,
    ):
        super().__init__(
            width, seed, labels=labels, field_widths=field_widths,
            corpus=(
                corpus if corpus is not None
                else Corpus(capacity=population_size)
            ),
            cycles=cycles, explore=explore,
        )
        self._tournament = max(1, int(tournament))
        self._mutation_rate = float(mutation_rate)

    def _select(self, entries: list[CorpusEntry], rng) -> int:
        best = None
        for _ in range(self._tournament):
            entry = entries[rng.randrange(len(entries))]
            if best is None or (entry.score, -entry.age) > (
                best.score, -best.age
            ):
                best = entry
        return best.vector

    def _crossover(self, a: int, b: int, rng) -> int:
        if rng.random() < 0.5:
            mask = rng.getrandbits(self._width)
            return (a & mask) | (b & ~mask & self._mask)
        point = rng.randrange(1, self._width) if self._width > 1 else 0
        high = self._mask ^ ((1 << point) - 1)
        return (a & high) | (b & ((1 << point) - 1))

    def propose(self, count: int) -> list[int]:
        self._begin_round()
        entries = self.corpus.entries
        out = []
        for index in range(count):
            rng = self._individual_rng(index)
            if len(entries) < 2 or rng.random() < self._explore_now():
                out.append(self._novelize(self._uniform(rng), rng))
                continue
            child = self._crossover(
                self._select(entries, rng), self._select(entries, rng), rng
            )
            if rng.random() < self._mutation_rate:
                child = mutators.mutate(child, self._width, self._spans, rng)
            out.append(self._novelize(child, rng))
        return out


@register_search_strategy
class AnnealSearch(_GuidedSearch):
    """Simulated annealing over edits of a current best vector."""

    name = "anneal"

    def __init__(
        self,
        width: int,
        seed: int,
        labels: tuple[str, ...] = (),
        field_widths: tuple[int, ...] | None = None,
        corpus: Corpus | None = None,
        cycles: int = 1,
        explore: float = 0.15,
        initial_temp: float = 3.0,
        cooling: float = 0.9,
        min_temp: float = 0.05,
    ):
        super().__init__(
            width, seed, labels=labels, field_widths=field_widths,
            corpus=corpus, cycles=cycles, explore=explore,
        )
        self._temp = float(initial_temp)
        self._cooling = float(cooling)
        self._min_temp = float(min_temp)
        self._current: tuple[int, float] | None = None  # (vector, score)
        self._feedbacks = 0

    def propose(self, count: int) -> list[int]:
        self._begin_round()
        out = []
        for index in range(count):
            rng = self._individual_rng(index)
            if self._current is None or rng.random() < self._explore_now():
                out.append(self._novelize(self._uniform(rng), rng))
                continue
            vector = self._current[0]
            edits = 1 + int(rng.random() * self._temp)
            for _ in range(edits):
                vector = mutators.mutate(
                    vector, self._width, self._spans, rng
                )
            out.append(self._novelize(vector, rng))
        return out

    def feedback(self, vectors: list[int], scores: list[int]) -> None:
        super().feedback(vectors, scores)
        if not vectors:
            return
        self._feedbacks += 1
        best_index = max(
            range(len(vectors)), key=lambda i: (scores[i], -i)
        )
        candidate = (vectors[best_index], float(scores[best_index]))
        if self._current is None:
            self._current = candidate
        else:
            delta = candidate[1] - self._current[1]
            if delta >= 0:
                self._current = candidate
            else:
                # Feedback arrives several times per round (once per
                # sequential candidate chunk), so the acceptance stream
                # is labelled by the feedback counter, not the round —
                # every Metropolis decision gets an independent draw.
                accept = spawn(
                    self._rng, "feedback", str(self._feedbacks), "accept"
                )
                if accept.random() < math.exp(delta / max(self._temp, 1e-9)):
                    self._current = candidate
        # The objective is non-stationary: the live-mutant set shrinks
        # (and the sequential machine state moves) after every commit,
        # so an old peak score is unattainable by construction.  Decay
        # the reference so acceptance keeps comparing against a
        # reachable target instead of freezing on a stale record.
        self._current = (
            self._current[0], self._current[1] * self._cooling
        )
        self._temp = max(self._min_temp, self._temp * self._cooling)
