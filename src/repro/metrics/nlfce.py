"""NLFCE — Non-Linear Fault Coverage Efficiency (paper, section 3).

Compares a mutation-generated test set against a pseudo-random baseline
on gate-level stuck-at coverage:

* ``MFC``  — coverage of the mutation test set (length ``Lm``)
* ``RFC(l)`` — random coverage curve over the baseline budget
* ``ΔFC% = 100 * (MFC - RFC(Lm)) / RFC(Lm)`` — coverage gain at equal
  test length
* ``ΔL%  = 100 * (Lr - Lm) / Lr`` with ``Lr`` the shortest random
  prefix reaching MFC — length gain at equal coverage
* ``NLFCE = ΔFC% * ΔL%`` (the product; e.g. the paper's b01/LOR row:
  0.66 x 10.84 = +7.16)

When the random budget never reaches MFC, ``Lr`` falls back to the
budget and the report flags the NLFCE value as a *lower bound*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault
from repro.fault.runner import simulate_faults
from repro.netlist.netlist import Netlist


@dataclass
class NlfceReport:
    """One NLFCE measurement (one circuit, one mutation test set)."""

    mutation_length: int           # Lm
    mfc: float                     # coverage of the mutation data
    rfc_at_lm: float               # random coverage at equal length
    delta_fc_pct: float
    random_length_for_mfc: int     # Lr (or the budget if never reached)
    reached_mfc: bool
    delta_l_pct: float
    random_budget: int

    @property
    def nlfce(self) -> float:
        """Sign-aware product: both gains negative means a *loss*.

        The paper's NLFCE multiplies two gains; a naive product would
        turn doubly-negative results positive, so the magnitude keeps
        the product but the sign follows the gains.
        """
        product = self.delta_fc_pct * self.delta_l_pct
        if self.delta_fc_pct < 0 and self.delta_l_pct < 0:
            return -product
        return product

    def row(self) -> dict[str, float]:
        return {
            "Lm": self.mutation_length,
            "MFC%": 100.0 * self.mfc,
            "dFC%": self.delta_fc_pct,
            "dL%": self.delta_l_pct,
            "NLFCE": self.nlfce,
        }


def nlfce_from_results(
    mutation_result: FaultSimResult,
    random_result: FaultSimResult,
) -> NlfceReport:
    """Compute the report from two fault-simulation results."""
    lm = mutation_result.num_patterns
    mfc = mutation_result.coverage()
    rfc_at_lm = random_result.coverage(min(lm, random_result.num_patterns))
    if rfc_at_lm > 0:
        delta_fc = 100.0 * (mfc - rfc_at_lm) / rfc_at_lm
    elif mfc > 0:
        # Degenerate baseline: credit the full mutation coverage.
        delta_fc = 100.0 * mfc
    else:
        delta_fc = 0.0
    lr = random_result.length_to_reach(mfc)
    reached = lr is not None
    if lr is None:
        lr = random_result.num_patterns
    if lr > 0:
        delta_l = 100.0 * (lr - lm) / lr
    else:
        delta_l = 0.0
    return NlfceReport(
        mutation_length=lm,
        mfc=mfc,
        rfc_at_lm=rfc_at_lm,
        delta_fc_pct=delta_fc,
        random_length_for_mfc=lr,
        reached_mfc=reached,
        delta_l_pct=delta_l,
        random_budget=random_result.num_patterns,
    )


def compute_nlfce(
    netlist: Netlist,
    mutation_vectors: list[int],
    random_vectors: list[int],
    faults: list[StuckAtFault] | None = None,
    lanes: int = 256,
    engine=None,
    model=None,
) -> NlfceReport:
    """Fault-simulate both test sets on ``netlist`` and report NLFCE.

    ``model`` names (or is an instance of) a registered fault model;
    ``None`` keeps the paper's stuck-at metric.  Both test sets are
    always measured under the *same* model, so the efficiency ratio
    stays meaningful.
    """
    mutation_result = simulate_faults(
        netlist, mutation_vectors, faults, lanes, engine=engine, model=model
    )
    random_result = simulate_faults(
        netlist, random_vectors, faults, lanes, engine=engine, model=model
    )
    return nlfce_from_results(mutation_result, random_result)
