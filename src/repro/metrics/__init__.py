"""Evaluation metrics: mutation score, fault coverages, NLFCE."""

from repro.metrics.nlfce import NlfceReport, compute_nlfce, nlfce_from_results
from repro.mutation.score import MutationScore, mutation_score

__all__ = [
    "MutationScore",
    "NlfceReport",
    "compute_nlfce",
    "mutation_score",
    "nlfce_from_results",
]
