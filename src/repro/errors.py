"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  Sub-hierarchies follow
the package layout: front end, simulation, synthesis, netlist, fault
simulation, mutation, test generation and experiment configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SourceError(ReproError):
    """An error attached to a location in HDL source text."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """The lexer met a character sequence it cannot tokenize."""


class ParseError(SourceError):
    """The parser met a token sequence outside the supported grammar."""


class SemanticError(SourceError):
    """Name resolution or type checking failed."""


class ElaborationError(ReproError):
    """A design could not be elaborated into processes and signals."""


class SimulationError(ReproError):
    """The behavioural simulator failed."""


class OscillationError(SimulationError):
    """Delta cycles did not converge (combinational loop)."""


class MutantRuntimeError(SimulationError):
    """A mutant performed an operation that is a run-time error.

    Examples: assigning a value outside an integer range, division by
    zero.  The mutation engine interprets this as the mutant being
    trivially distinguishable, i.e. killed.
    """


class SynthesisError(ReproError):
    """Behavioural-to-gate lowering failed."""


class LatchInferenceError(SynthesisError):
    """A combinational process does not assign a signal on every path."""


class NetlistError(ReproError):
    """A structural netlist is malformed."""


class BenchFormatError(NetlistError):
    """An ISCAS ``.bench`` file could not be parsed."""


class FaultSimError(ReproError):
    """Fault list construction or fault simulation failed."""


class FaultError(ReproError):
    """A fault model is unknown or misconfigured."""


class EngineError(ReproError):
    """A netlist-simulation engine is unknown or misconfigured."""


class AtpgError(ReproError):
    """Deterministic test pattern generation failed."""


class MutationError(ReproError):
    """Mutant generation or execution failed."""


class SamplingError(ReproError):
    """A mutant sampling strategy received invalid parameters."""


class TestGenError(ReproError):
    """Stimulus generation failed."""


class SearchError(ReproError):
    """A test-vector search strategy is unknown or misconfigured."""


class ConfigError(ReproError):
    """An experiment configuration is invalid."""


class CampaignError(ConfigError):
    """A campaign run was invoked inconsistently.

    Subclasses :class:`ConfigError` so existing callers that catch
    configuration problems keep working; raised where the problem is
    the *invocation* (e.g. ``--resume`` without a ``cache_dir``)
    rather than a malformed config file.
    """


class AnalyzeError(ReproError):
    """A static-analysis request (netlist or source lint) is invalid."""


class GridError(ReproError):
    """A grid work unit, scheduler or job store is misconfigured."""


class NetError(ReproError):
    """A repro.net coordinator, worker or client protocol failure."""
