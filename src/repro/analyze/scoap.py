"""SCOAP testability scoring, ternary constants, observability.

Three classic static analyses over the levelized netlist, bundled in a
:class:`TestabilityAnalysis`:

* **Ternary constant propagation** — every net is ``0``, ``1`` or ``X``
  (unknown).  Primary inputs start at ``X``; DFF outputs start at their
  architectural reset value and are demoted to ``X`` whenever the
  computed next-state value disagrees, iterated to a (monotone)
  fixpoint.  A net that ends ``0``/``1`` provably holds that value in
  *every* reachable state under *every* input — the proof is an
  induction from the reset state, which is exactly where the fault
  simulators start.
* **Structural observability** — a net is *observable* when a path of
  gate-input -> gate-output and DFF-D -> DFF-Q edges connects it to a
  primary output.  A net with no such path can never be observed, in
  the fault-free or any faulty machine: no mechanism exists by which
  its value participates in an output.  (The converse is not claimed —
  a structurally observable net may still be untestable.)
* **SCOAP controllability/observability** — the Goldstein measures:
  ``CC0``/``CC1`` count the (minimum) effort to set a net to 0/1,
  ``CO`` the effort to propagate it to an output, both iterated across
  flip-flop boundaries to a fixpoint.  These are *heuristic ranks*
  (higher = harder to test) consumed by the ``testability`` sampling
  strategy and the ``repro analyze`` report; only the two analyses
  above feed the untestable-fault pruning, because only they are
  sound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.cells import GateType
from repro.netlist.levelize import topo_gates
from repro.netlist.netlist import DFF, Gate, Netlist

#: Cost assigned to "cannot be done" (uncontrollable value); all SCOAP
#: arithmetic saturates here so feedback iterations terminate.
INF = 1 << 20

#: Ternary unknown.
X = None


@dataclass
class TestabilityAnalysis:
    """Per-net static testability facts for one netlist."""

    netlist: Netlist
    #: net id -> proven constant value (0/1); absent means unknown.
    constants: dict[int, int]
    #: net ids with a structural path to a primary output.
    observable: frozenset[int]
    cc0: dict[int, int]
    cc1: dict[int, int]
    co: dict[int, int]

    def is_constant(self, nid: int) -> bool:
        return nid in self.constants

    def is_observable(self, nid: int) -> bool:
        return nid in self.observable

    def difficulty(self, nid: int) -> int:
        """Combined SCOAP rank of one net (higher = harder to test).

        ``min(CC0, CC1)`` is the cheaper activation polarity; adding
        ``CO`` gives the classical detect-cost estimate for the easier
        stuck-at fault on the net, saturated at :data:`INF`.
        """
        control = min(self.cc0.get(nid, INF), self.cc1.get(nid, INF))
        return min(INF, control + self.co.get(nid, INF))

    def summary(self) -> dict:
        """JSON-ready aggregate view (the ``repro analyze`` payload)."""
        nets = range(len(self.netlist.nets))
        finite = [
            self.difficulty(n) for n in nets if self.difficulty(n) < INF
        ]
        return {
            "nets": len(self.netlist.nets),
            "constant_nets": sorted(self.constants),
            "unobservable_nets": sorted(
                n for n in nets if n not in self.observable
            ),
            "max_difficulty": max(finite, default=0),
            "mean_difficulty": (
                round(sum(finite) / len(finite), 2) if finite else 0.0
            ),
        }


def analyze_testability(netlist: Netlist) -> TestabilityAnalysis:
    """Run all three analyses; see the module docstring."""
    ordered = topo_gates(netlist)
    constants = constant_nets(netlist, ordered)
    observable = observable_nets(netlist)
    cc0, cc1 = _controllability(netlist, ordered)
    co = _observability_cost(netlist, ordered, cc0, cc1)
    return TestabilityAnalysis(
        netlist=netlist,
        constants=constants,
        observable=observable,
        cc0=cc0,
        cc1=cc1,
        co=co,
    )


# -- ternary constants --------------------------------------------------------

def eval_ternary(gate_type: GateType, values: list[int | None]) -> int | None:
    """Evaluate one gate over 0/1/X values (X = :data:`None`)."""
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    if gate_type in (GateType.NOT, GateType.BUF):
        value = values[0]
        if gate_type is GateType.BUF:
            return value
        return X if value is X else 1 - value
    if gate_type in (GateType.AND, GateType.NAND):
        if any(v == 0 for v in values):
            out = 0
        elif all(v == 1 for v in values):
            out = 1
        else:
            return X
    elif gate_type in (GateType.OR, GateType.NOR):
        if any(v == 1 for v in values):
            out = 1
        elif all(v == 0 for v in values):
            out = 0
        else:
            return X
    elif gate_type in (GateType.XOR, GateType.XNOR):
        if any(v is X for v in values):
            return X
        out = 0
        for v in values:
            out ^= v
    else:
        return X
    if gate_type in (GateType.NAND, GateType.NOR, GateType.XNOR):
        out = 1 - out
    return out


def constant_nets(
    netlist: Netlist, ordered: list[Gate] | None = None
) -> dict[int, int]:
    """Nets provably constant in every reachable state (see module doc)."""
    if ordered is None:
        ordered = topo_gates(netlist)
    values: dict[int, int | None] = {
        nid: X for nid in netlist.input_bits
    }
    # Optimistic start: every flip-flop sits at its reset value; each
    # sweep demotes Q nets whose computed D disagrees.  Demotion is
    # monotone (0/1 -> X, never back), so the loop ends within
    # ``len(dffs) + 1`` sweeps.
    for dff in netlist.dffs:
        values[dff.q] = dff.reset_value
    while True:
        for gate in ordered:
            values[gate.output] = eval_ternary(
                gate.gate_type, [values[nid] for nid in gate.inputs]
            )
        demoted = False
        for dff in netlist.dffs:
            if values[dff.q] is X:
                continue
            if values.get(dff.d, X) != values[dff.q]:
                values[dff.q] = X
                demoted = True
        if not demoted:
            break
    return {
        nid: value for nid, value in values.items() if value is not X
    }


# -- structural observability -------------------------------------------------

def observable_nets(netlist: Netlist) -> frozenset[int]:
    """Nets with a structural path to a primary output.

    Sequential-aware: a DFF forwards observability from its Q net to
    its D net (one cycle later is still observed).
    """
    gates_by_output: dict[int, Gate] = {
        gate.output: gate for gate in netlist.gates
    }
    dff_by_q: dict[int, DFF] = {dff.q: dff for dff in netlist.dffs}
    observable: set[int] = set()
    frontier: list[int] = list(dict.fromkeys(netlist.output_bits))
    observable.update(frontier)
    while frontier:
        nid = frontier.pop()
        gate = gates_by_output.get(nid)
        if gate is not None:
            for source in gate.inputs:
                if source not in observable:
                    observable.add(source)
                    frontier.append(source)
        dff = dff_by_q.get(nid)
        if dff is not None and dff.d not in observable:
            observable.add(dff.d)
            frontier.append(dff.d)
    return frozenset(observable)


# -- SCOAP --------------------------------------------------------------------

def _sat(value: int) -> int:
    return value if value < INF else INF


def _gate_cc(
    gate: Gate, cc0: dict[int, int], cc1: dict[int, int]
) -> tuple[int, int]:
    """(CC0, CC1) of one gate output from its input costs."""
    t = gate.gate_type
    in0 = [cc0.get(nid, INF) for nid in gate.inputs]
    in1 = [cc1.get(nid, INF) for nid in gate.inputs]
    if t is GateType.CONST0:
        return 0, INF
    if t is GateType.CONST1:
        return INF, 0
    if t in (GateType.NOT,):
        return _sat(in1[0] + 1), _sat(in0[0] + 1)
    if t in (GateType.BUF,):
        return _sat(in0[0] + 1), _sat(in1[0] + 1)
    if t in (GateType.AND, GateType.NAND):
        zero = _sat(min(in0) + 1)             # one controlling input
        one = _sat(sum(in1) + 1)              # all inputs non-controlling
        return (one, zero) if t is GateType.NAND else (zero, one)
    if t in (GateType.OR, GateType.NOR):
        one = _sat(min(in1) + 1)
        zero = _sat(sum(in0) + 1)
        return (one, zero) if t is GateType.NOR else (zero, one)
    if t in (GateType.XOR, GateType.XNOR):
        # Parity DP: cheapest way to an even/odd number of ones.
        even, odd = 0, INF
        for c0, c1 in zip(in0, in1):
            even, odd = (
                _sat(min(even + c0, odd + c1)),
                _sat(min(odd + c0, even + c1)),
            )
        zero, one = _sat(even + 1), _sat(odd + 1)
        return (one, zero) if t is GateType.XNOR else (zero, one)
    return INF, INF


def _controllability(
    netlist: Netlist, ordered: list[Gate]
) -> tuple[dict[int, int], dict[int, int]]:
    cc0: dict[int, int] = {}
    cc1: dict[int, int] = {}
    for nid in netlist.input_bits:
        cc0[nid] = cc1[nid] = 1
    for dff in netlist.dffs:
        cc0[dff.q] = cc1[dff.q] = INF
    # Relax to fixpoint: combinational sweep + the sequential transfer
    # CC(Q) = CC(D) + 1.  Costs only ever decrease (from INF), so the
    # sweep terminates; the cap bounds feedback loops.
    while True:
        changed = False
        for gate in ordered:
            zero, one = _gate_cc(gate, cc0, cc1)
            if zero < cc0.get(gate.output, INF):
                cc0[gate.output] = zero
                changed = True
            if one < cc1.get(gate.output, INF):
                cc1[gate.output] = one
                changed = True
        for dff in netlist.dffs:
            for cc in (cc0, cc1):
                through = _sat(cc.get(dff.d, INF) + 1)
                if through < cc.get(dff.q, INF):
                    cc[dff.q] = through
                    changed = True
        if not changed:
            return cc0, cc1


def _side_cost(
    gate: Gate, pin: int, cc0: dict[int, int], cc1: dict[int, int]
) -> int:
    """Cost of holding every *other* input at a propagating value."""
    t = gate.gate_type
    total = 0
    for index, nid in enumerate(gate.inputs):
        if index == pin:
            continue
        if t in (GateType.AND, GateType.NAND):
            total += cc1.get(nid, INF)       # side inputs non-controlling
        elif t in (GateType.OR, GateType.NOR):
            total += cc0.get(nid, INF)
        else:  # XOR/XNOR: any known side value propagates
            total += min(cc0.get(nid, INF), cc1.get(nid, INF))
        if total >= INF:
            return INF
    return total


def _observability_cost(
    netlist: Netlist,
    ordered: list[Gate],
    cc0: dict[int, int],
    cc1: dict[int, int],
) -> dict[int, int]:
    co: dict[int, int] = {nid: INF for net in () for nid in ()}
    for nid in netlist.output_bits:
        co[nid] = 0
    while True:
        changed = False
        # Reverse-topological combinational sweep: a gate's input CO
        # derives from its output CO plus the side-input condition.
        for gate in reversed(ordered):
            out_co = co.get(gate.output, INF)
            if out_co >= INF:
                continue
            for pin, nid in enumerate(gate.inputs):
                through = _sat(
                    out_co + _side_cost(gate, pin, cc0, cc1) + 1
                )
                if through < co.get(nid, INF):
                    co[nid] = through
                    changed = True
        for dff in netlist.dffs:
            through = _sat(co.get(dff.q, INF) + 1)
            if through < co.get(dff.d, INF):
                co[dff.d] = through
                changed = True
        if not changed:
            return co
