"""Static mutant pre-screen: mutants in dead behavioural logic.

A mutant that only perturbs signals with no dataflow path to an output
port cannot change any output value.  :func:`live_signals` computes
the live set by a backward fixpoint over process read/write sets
(output ports are live; a process writing a live signal makes every
signal it reads live), and :func:`prescreen_mutants` tags mutants
whose host process writes no live signal.

The tag is *possibly-equivalent*, not *equivalent*: a mutant in dead
logic can still be killed by a run-time error (division by zero, a
value outside an integer range) or by turning a combinational process
into an oscillator — both count as kills in the execution layer.  So
the pre-screen is a triage hint that lets campaigns skip the
equivalence-sweep budget for these mutants
(``CampaignConfig.static_prescreen``), never a proof of survival.
"""

from __future__ import annotations

from repro.hdl.design import Design
from repro.mutation.mutant import Mutant

#: Same triage vocabulary as :mod:`repro.mutation.execution`.
POSSIBLY_EQUIVALENT = "possibly-equivalent"


def live_signals(design: Design) -> frozenset[str]:
    """Signals with a dataflow path to an output port.

    Backward fixpoint over process granularity: coarse (a process
    reading a signal for *any* of its writes keeps it live) and
    therefore conservative — dead logic can be missed, live logic
    never is.
    """
    live: set[str] = {port.name for port in design.output_ports}
    changed = True
    while changed:
        changed = False
        for process in design.processes:
            if not (process.writes & live):
                continue
            fresh = process.reads - live
            if fresh:
                live.update(fresh)
                changed = True
    return frozenset(live)


def dead_processes(design: Design) -> frozenset[str]:
    """Labels of processes whose writes are all non-live."""
    live = live_signals(design)
    return frozenset(
        process.label
        for process in design.processes
        if process.writes and not (process.writes & live)
    )


def prescreen_mutants(
    design: Design, mutants: list[Mutant]
) -> dict[int, str]:
    """mid -> triage tag for mutants that cannot change any output.

    Only mutants hosted in a dead process are tagged (see the module
    docstring for why the tag is ``possibly-equivalent`` and not a
    survival proof).  Mutants elsewhere are absent from the result.
    """
    dead = dead_processes(design)
    if not dead:
        return {}
    return {
        mutant.mid: POSSIBLY_EQUIVALENT
        for mutant in mutants
        if mutant.process_label in dead
    }
