"""Static analysis: netlist testability, fault pruning, repo lint.

Two halves share this package:

* **Domain analyses** over synthesized netlists —
  :func:`~repro.analyze.scoap.analyze_testability` (SCOAP scores,
  ternary constants, structural observability),
  :func:`~repro.analyze.structure.lint_netlist` (structural defects),
  :func:`~repro.analyze.prune.split_untestable` (provably untestable
  faults) and :func:`~repro.analyze.prescreen.prescreen_mutants`
  (mutants in dead behavioural logic).  Exposed on the CLI as
  ``repro analyze <circuit>`` and consumed by campaigns through
  ``CampaignConfig.prune_untestable`` / ``static_prescreen`` and the
  ``testability`` sampling strategy.
* **Repo lint** — :mod:`repro.analyze.lint`, an AST linter for the
  library's own determinism invariants (``repro lint src``, kept
  clean in CI).
"""

from repro.analyze.lint import (
    LintFinding,
    LintRule,
    RULES,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
    rule_names,
)
from repro.analyze.prescreen import (
    dead_processes,
    live_signals,
    prescreen_mutants,
)
from repro.analyze.prune import split_untestable, untestable_reason
from repro.analyze.scoap import (
    INF,
    TestabilityAnalysis,
    analyze_testability,
    constant_nets,
    observable_nets,
)
from repro.analyze.structure import CHECKS, StructuralFinding, lint_netlist

__all__ = [
    "CHECKS",
    "INF",
    "LintFinding",
    "LintRule",
    "RULES",
    "StructuralFinding",
    "TestabilityAnalysis",
    "analyze_testability",
    "constant_nets",
    "dead_processes",
    "lint_file",
    "lint_netlist",
    "lint_paths",
    "lint_source",
    "live_signals",
    "observable_nets",
    "prescreen_mutants",
    "register_rule",
    "rule_names",
    "split_untestable",
    "untestable_reason",
]
