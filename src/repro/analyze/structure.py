"""Structural netlist linter.

:func:`lint_netlist` checks a netlist for structural defects without
assuming it is well-formed — unlike :meth:`Netlist.validate`, which
raises on the first problem, the linter builds its own (tolerant)
driver and fanout maps and reports *every* finding, so it works on
hand-built or imported netlists that would not pass validation.

Checks, in report order:

* ``multi-driven-net`` — a net driven by more than one gate/DFF/input.
* ``undriven-net`` — a net read by a gate, DFF or output port with no
  driver at all.
* ``combinational-cycle`` — gates forming a cycle through no flip-flop
  (a delta-cycle oscillation risk; levelization refuses these).
* ``dangling-gate`` — a gate whose output drives nothing: no gate pin,
  no DFF data input, no output port.
* ``unobservable-logic`` — driven nets with no structural path to any
  primary output, even through flip-flops (dead logic; see
  :func:`repro.analyze.scoap.observable_nets`).
* ``unused-input`` — a primary input bit nothing reads.

Findings are :class:`StructuralFinding` records sorted by (check, net
name) so output is deterministic under ``PYTHONHASHSEED`` variation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.scoap import observable_nets
from repro.netlist.netlist import Netlist

#: Check names in report order (also the severity ranking: the earlier
#: entries make simulation results undefined, the later ones are waste).
CHECKS = (
    "multi-driven-net",
    "undriven-net",
    "combinational-cycle",
    "dangling-gate",
    "unobservable-logic",
    "unused-input",
)


@dataclass(frozen=True)
class StructuralFinding:
    """One structural defect: which check fired, where, and why."""

    check: str
    net: str
    detail: str

    def to_dict(self) -> dict:
        return {"check": self.check, "net": self.net, "detail": self.detail}


def lint_netlist(netlist: Netlist) -> list[StructuralFinding]:
    """All structural findings of ``netlist``, deterministically ordered."""
    findings: list[StructuralFinding] = []
    findings.extend(_driver_checks(netlist))
    findings.extend(_cycle_check(netlist))
    findings.extend(_dangling_gates(netlist))
    findings.extend(_dead_logic(netlist))
    findings.extend(_unused_inputs(netlist))
    order = {check: rank for rank, check in enumerate(CHECKS)}
    findings.sort(key=lambda f: (order[f.check], f.net, f.detail))
    return findings


def _describe_driver(driver) -> str:
    if driver == "input":
        return "primary input"
    if hasattr(driver, "gate_type"):
        return f"{driver.gate_type.value} gate {driver.gid}"
    return f"dff {driver.name!r}"


def _driver_checks(netlist: Netlist) -> list[StructuralFinding]:
    drivers: dict[int, list] = {}
    for nid in netlist.input_bits:
        drivers.setdefault(nid, []).append("input")
    for gate in netlist.gates:
        drivers.setdefault(gate.output, []).append(gate)
    for dff in netlist.dffs:
        drivers.setdefault(dff.q, []).append(dff)

    findings = []
    for nid, many in drivers.items():
        if len(many) > 1:
            who = ", ".join(_describe_driver(d) for d in many)
            findings.append(StructuralFinding(
                "multi-driven-net", netlist.net_name(nid),
                f"driven by {len(many)} sources: {who}",
            ))

    readers: dict[int, list[str]] = {}
    for gate in netlist.gates:
        for pin, nid in enumerate(gate.inputs):
            readers.setdefault(nid, []).append(
                f"{gate.gate_type.value} gate {gate.gid} pin {pin}"
            )
    for dff in netlist.dffs:
        readers.setdefault(dff.d, []).append(f"dff {dff.name!r} data input")
    for port, bits in netlist.output_ports:
        for nid in bits:
            readers.setdefault(nid, []).append(f"output port {port!r}")
    for nid, where in readers.items():
        if nid not in drivers:
            findings.append(StructuralFinding(
                "undriven-net", netlist.net_name(nid),
                f"read by {where[0]} but has no driver",
            ))
    return findings


def _cycle_check(netlist: Netlist) -> list[StructuralFinding]:
    """Kahn's algorithm over gate->gate edges; leftovers are cyclic."""
    gates_by_output = {gate.output: gate for gate in netlist.gates}
    indegree = {
        gate.gid: sum(1 for nid in gate.inputs if nid in gates_by_output)
        for gate in netlist.gates
    }
    ready = [gate.gid for gate in netlist.gates if indegree[gate.gid] == 0]
    fanout: dict[int, list[int]] = {}
    for gate in netlist.gates:
        for nid in gate.inputs:
            source = gates_by_output.get(nid)
            if source is not None:
                fanout.setdefault(source.gid, []).append(gate.gid)
    seen = 0
    while ready:
        gid = ready.pop()
        seen += 1
        for succ in fanout.get(gid, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if seen == len(netlist.gates):
        return []
    cyclic = sorted(
        netlist.net_name(gate.output)
        for gate in netlist.gates
        if indegree[gate.gid] > 0
    )
    shown = ", ".join(cyclic[:5]) + (" ..." if len(cyclic) > 5 else "")
    return [
        StructuralFinding(
            "combinational-cycle", name,
            f"in a {len(cyclic)}-net combinational cycle through {shown}",
        )
        for name in cyclic
    ]


def _dangling_gates(netlist: Netlist) -> list[StructuralFinding]:
    read: set[int] = set()
    for gate in netlist.gates:
        read.update(gate.inputs)
    read.update(dff.d for dff in netlist.dffs)
    for _, bits in netlist.output_ports:
        read.update(bits)
    return [
        StructuralFinding(
            "dangling-gate", netlist.net_name(gate.output),
            f"{gate.gate_type.value} gate {gate.gid} output drives nothing",
        )
        for gate in netlist.gates
        if gate.output not in read
    ]


def _dead_logic(netlist: Netlist) -> list[StructuralFinding]:
    observable = observable_nets(netlist)
    driven = {gate.output for gate in netlist.gates}
    driven.update(dff.q for dff in netlist.dffs)
    return [
        StructuralFinding(
            "unobservable-logic", netlist.net_name(nid),
            "no structural path to any primary output",
        )
        for nid in sorted(driven)
        if nid not in observable
    ]


def _unused_inputs(netlist: Netlist) -> list[StructuralFinding]:
    read: set[int] = set()
    for gate in netlist.gates:
        read.update(gate.inputs)
    read.update(dff.d for dff in netlist.dffs)
    for _, bits in netlist.output_ports:
        read.update(bits)
    return [
        StructuralFinding(
            "unused-input", netlist.net_name(nid),
            "primary input bit is never read",
        )
        for nid in netlist.input_bits
        if nid not in read
    ]
