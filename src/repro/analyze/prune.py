"""Sound pruning of provably untestable faults.

Campaigns spend most of their cycles fault-simulating, and on circuits
with dead or constant logic part of that work is provably wasted: some
faults can *never* be detected, by any stimulus.  This module finds
them statically so :class:`~repro.experiments.context.CircuitLab` can
skip simulating them (``CampaignConfig.prune_untestable``) while still
reporting them — undetected — in every payload, keeping results
bit-identical to the unpruned run.

Only two rules are applied, because only two are sound:

* ``propagation-blocked`` — the net where the fault effect enters the
  circuit has no structural path to any primary output (through gate
  and DFF edges).  No mechanism exists for the effect to reach an
  output, in any machine.
* ``never-activated`` — ternary constant propagation (an induction
  from the reset state over the *fault-free* machine) proves the
  faulted net always carries the fault value, so good and faulty
  machines never diverge.  Polarity matters: a stuck-at-``v`` fault is
  pruned only when the net is constant-``v``; a transition fault is
  pruned when the net is constant at *either* polarity (it then either
  never leaves the initial value or never launches the transition);
  an SEU is **never** pruned by constancy — flipping a constant net is
  still a state change — only by unobservability.

Tempting rules that are **not** sound, and deliberately absent:
proving the *output* of a cone constant does not block a fault inside
it (``out = n`` with ``n = a AND NOT a``: ``n`` is constant-0 yet
``n`` stuck-at-1 is observable — constancy proofs describe the
fault-free machine only); likewise a sibling pin held at a controlling
constant may itself depend on the faulted net.  Fault types this
module does not recognize are never pruned.
"""

from __future__ import annotations

from repro.analyze.scoap import TestabilityAnalysis, analyze_testability
from repro.fault.model import StuckAtFault
from repro.fault.models.seu import SeuFault
from repro.fault.models.transition import TransitionFault
from repro.netlist.netlist import Netlist

#: Reason strings; shared vocabulary with the survivor triage of
#: :mod:`repro.mutation.execution`.
NEVER_ACTIVATED = "never-activated"
PROPAGATION_BLOCKED = "propagation-blocked"


def untestable_reason(
    fault,
    netlist: Netlist,
    analysis: TestabilityAnalysis,
    sites: tuple[dict[int, int], dict[int, int]] | None = None,
) -> str | None:
    """Why ``fault`` is provably untestable, or ``None`` if it may not be.

    Conservative by construction: an unrecognized fault type, or any
    doubt, returns ``None`` (keep simulating it).  ``sites`` is the
    memoized :func:`_site_maps` output — pass it when classifying many
    faults of one netlist.
    """
    if isinstance(fault, StuckAtFault):
        entry = _stuck_at_entry(
            fault, sites if sites is not None else _site_maps(netlist)
        )
        if entry is not None and not analysis.is_observable(entry):
            return PROPAGATION_BLOCKED
        if analysis.constants.get(fault.net) == fault.stuck:
            return NEVER_ACTIVATED
        return None
    if isinstance(fault, TransitionFault):
        if not analysis.is_observable(fault.net):
            return PROPAGATION_BLOCKED
        if fault.net in analysis.constants:
            return NEVER_ACTIVATED
        return None
    if isinstance(fault, SeuFault):
        if not analysis.is_observable(fault.net):
            return PROPAGATION_BLOCKED
        return None
    return None


def _site_maps(netlist: Netlist) -> tuple[dict[int, int], dict[int, int]]:
    """(gate gid -> output net, dff fid -> q net) branch-site lookups."""
    return (
        {gate.gid: gate.output for gate in netlist.gates},
        {dff.fid: dff.q for dff in netlist.dffs},
    )


def _stuck_at_entry(fault: StuckAtFault, sites) -> int | None:
    """The net where the fault effect enters the fault-free circuit.

    Stem faults corrupt the net itself.  A gate-input branch fault
    corrupts only that pin, so its effect enters at the gate's output;
    a DFF data branch enters at the flip-flop's Q.  ``None`` when the
    site reference is dangling (be conservative, do not prune).
    """
    if fault.is_stem:
        return fault.net
    gate_outputs, dff_qs = sites
    if fault.gate is not None:
        return gate_outputs.get(fault.gate)
    return dff_qs.get(fault.dff)


def split_untestable(
    netlist: Netlist,
    faults: list,
    analysis: TestabilityAnalysis | None = None,
) -> tuple[list, list[tuple[object, str]]]:
    """Partition ``faults`` into (testable, [(pruned fault, reason)]).

    Both halves preserve the input order, so re-interleaving them (by
    identity) reconstructs the original list exactly.
    """
    if analysis is None:
        analysis = analyze_testability(netlist)
    sites = _site_maps(netlist)
    testable: list = []
    pruned: list[tuple[object, str]] = []
    for fault in faults:
        reason = untestable_reason(fault, netlist, analysis, sites)
        if reason is None:
            testable.append(fault)
        else:
            pruned.append((fault, reason))
    return testable, pruned
