"""AST linter for the repo's own determinism and safety invariants.

The library promises bit-identical results across runs, machines,
schedulers and shardings.  That promise is carried by conventions the
type system cannot see: all randomness flows through labelled streams,
nothing iterates an unordered set into ordered output, the coordinator
touches shared state only under its lock.  This module checks those
conventions statically — ``repro lint src`` runs in CI and stays
clean.

Rules (each a :class:`LintRule` in the registry):

* ``bare-random`` — module-level :mod:`random` functions (global,
  unseeded state), ``random.Random()`` with no seed, ``time.time()``
  (wall clock; use ``time.monotonic`` for durations) and
  ``os.urandom``.  Seeded constructors and
  :func:`repro.util.rng.rng_stream` are the sanctioned sources.
* ``mutable-default`` — list/dict/set literals (or constructor calls)
  as function parameter defaults.
* ``set-iteration`` — a ``for`` loop or comprehension drawing directly
  from a set expression: iteration order is hash-dependent, so any
  ordered output built from it varies with ``PYTHONHASHSEED``.  Wrap
  the set in ``sorted(...)``.
* ``lock-discipline`` — in a class whose ``__init__`` creates
  ``self._lock``, a public method touching private (``self._*``)
  state must hold the lock (contain a ``with self._lock`` block).
  Private methods are exempt: they are called under the lock.
* ``unused-import`` — imported names never referenced (skipped for
  ``__init__.py``, which imports to re-export).

Suppression: append ``# lint: allow(<rule>)`` to the flagged line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import AnalyzeError
from repro.util.registry import Registry


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path, "line": self.line,
            "rule": self.rule, "message": self.message,
        }


class LintRule:
    """One named check over a module AST.

    ``check`` yields ``(line, message)`` pairs; file handling,
    suppression and ordering live in :func:`lint_file`.
    """

    name: str = ""
    description: str = ""

    def check(self, tree: ast.Module, path: str):
        raise NotImplementedError


#: name -> rule class.
RULES: dict[str, type[LintRule]] = {}

_REGISTRY = Registry("lint rule", AnalyzeError, entries=RULES)


def register_rule(cls: type[LintRule] | None = None, *,
                  replace: bool = False):
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    return _REGISTRY.register(cls, replace=replace)


def rule_names() -> tuple[str, ...]:
    return _REGISTRY.names()


# -- rules --------------------------------------------------------------------

#: random-module functions that mutate the hidden global generator.
_GLOBAL_RANDOM = frozenset({
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "shuffle", "sample", "uniform", "seed", "betavariate", "gauss",
    "expovariate", "normalvariate", "triangular", "vonmisesvariate",
})


def _is_module_call(node: ast.AST, module: str, names) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == module
        and node.func.attr in names
    )


@register_rule
class BareRandomRule(LintRule):
    name = "bare-random"
    description = "unseeded/global entropy source"

    def check(self, tree, path):
        for node in ast.walk(tree):
            if _is_module_call(node, "random", _GLOBAL_RANDOM):
                yield node.lineno, (
                    f"random.{node.func.attr}() uses the global generator; "
                    "derive a labelled stream via repro.util.rng.rng_stream"
                )
            elif (
                _is_module_call(node, "random", {"Random"})
                and not node.args and not node.keywords
            ):
                yield node.lineno, (
                    "random.Random() with no seed is entropy from the OS; "
                    "pass an explicit seed"
                )
            elif _is_module_call(node, "time", {"time"}):
                yield node.lineno, (
                    "time.time() is wall clock; use time.monotonic() for "
                    "durations (or carry timestamps in explicitly)"
                )
            elif (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "os" and node.attr == "urandom"
            ):
                yield node.lineno, (
                    "os.urandom is non-reproducible entropy; derive bytes "
                    "from a labelled stream"
                )


@register_rule
class MutableDefaultRule(LintRule):
    name = "mutable-default"
    description = "mutable function parameter default"

    _LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp)

    def _mutable(self, node: ast.AST) -> bool:
        if isinstance(node, self._LITERALS):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"list", "dict", "set", "bytearray"}
        )

    def check(self, tree, path):
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._mutable(default):
                    yield default.lineno, (
                        f"mutable default in {node.name}(): one instance is "
                        "shared across calls; default to None and build "
                        "inside"
                    )


@register_rule
class SetIterationRule(LintRule):
    name = "set-iteration"
    description = "iteration over an unordered set"

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        ):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # a union/intersection/difference of sets is still a set
            return self._is_set_expr(node.left) or self._is_set_expr(
                node.right
            )
        return False

    def check(self, tree, path):
        sources = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sources.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                sources.extend(gen.iter for gen in node.generators)
        for source in sources:
            if self._is_set_expr(source):
                yield source.lineno, (
                    "iterating a set: order is hash-dependent and leaks "
                    "into whatever this loop builds; wrap in sorted(...)"
                )


@register_rule
class LockDisciplineRule(LintRule):
    name = "lock-discipline"
    description = "shared state touched outside the instance lock"

    @staticmethod
    def _creates_lock(method: ast.FunctionDef) -> bool:
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and node.attr == "_lock"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False

    @staticmethod
    def _holds_lock(method: ast.FunctionDef) -> bool:
        for node in ast.walk(method):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and expr.attr == "_lock"
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                ):
                    return True
        return False

    @staticmethod
    def _touches_private(method: ast.FunctionDef) -> bool:
        # A bare ``self._helper(...)`` call is exempt: the helper owns
        # its own locking (or is documented to run under the caller's).
        called = {
            id(node.func)
            for node in ast.walk(method)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr.startswith("_")
                and not node.attr.startswith("__")
                and node.attr != "_lock"
                and id(node) not in called
            ):
                return True
        return False

    def check(self, tree, path):
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = [
                n for n in cls.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            if not any(
                m.name == "__init__" and self._creates_lock(m)
                for m in methods
            ):
                continue
            for method in methods:
                if method.name.startswith("_"):
                    continue  # private helpers run under the caller's lock
                if any(
                    isinstance(d, ast.Name) and d.id == "staticmethod"
                    for d in method.decorator_list
                ):
                    continue
                if self._touches_private(method) and not self._holds_lock(
                    method
                ):
                    yield method.lineno, (
                        f"{cls.name}.{method.name} touches private state "
                        "without taking self._lock"
                    )


@register_rule
class UnusedImportRule(LintRule):
    name = "unused-import"
    description = "imported name never referenced"

    def check(self, tree, path):
        if Path(path).name == "__init__.py":
            return  # package files import to re-export
        imported: dict[str, tuple[int, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    imported[name] = (node.lineno, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    imported[name] = (node.lineno, alias.name)
        used: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    used.add(root.id)
        for name in sorted(imported):
            if name in used or name.startswith("_"):
                continue
            line, target = imported[name]
            yield line, (
                f"{target!r} is imported as {name!r} but never used"
            )


# -- driver -------------------------------------------------------------------

_ALLOW = re.compile(r"#\s*lint:\s*allow\(([a-z0-9_,\s-]+)\)")


def _suppressions(source: str) -> dict[int, set[str]]:
    """line number -> rule names allowed on that line."""
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW.search(line)
        if match:
            rules = {r.strip() for r in match.group(1).split(",")}
            allowed[lineno] = {r for r in rules if r}
    return allowed


def lint_source(source: str, path: str = "<string>",
                rules: tuple[str, ...] = ()) -> list[LintFinding]:
    """Findings for one module's source text.

    ``rules`` restricts the run to named rules (default: all).  Raises
    :class:`AnalyzeError` on unparseable source or an unknown rule name.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise AnalyzeError(f"{path}: cannot parse: {exc.msg}") from None
    selected = rules or rule_names()
    allowed = _suppressions(source)
    findings: list[LintFinding] = []
    for name in selected:
        rule = _REGISTRY.build(name)
        for line, message in rule.check(tree, path):
            if name in allowed.get(line, ()):
                continue
            findings.append(LintFinding(path, line, name, message))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def lint_file(path: str | Path,
              rules: tuple[str, ...] = ()) -> list[LintFinding]:
    path = Path(path)
    return lint_source(path.read_text(), str(path), rules)


def lint_paths(paths, rules: tuple[str, ...] = ()) -> list[LintFinding]:
    """Findings over files and (recursive) directories of ``.py`` files."""
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.exists():
            files.append(entry)
        else:
            raise AnalyzeError(f"lint path does not exist: {entry}")
    findings: list[LintFinding] = []
    for file in files:
        findings.extend(lint_file(file, rules))
    return findings
