"""Semantic types of the VHDL subset."""

from __future__ import annotations

from dataclasses import dataclass


class HdlType:
    """Base class of all semantic types."""

    def compatible(self, other: "HdlType") -> bool:
        """Whether values of ``other`` may be assigned/compared to ``self``."""
        raise NotImplementedError


@dataclass(frozen=True)
class BitType(HdlType):
    def compatible(self, other: HdlType) -> bool:
        return isinstance(other, BitType)

    def __str__(self) -> str:
        return "bit"


@dataclass(frozen=True)
class BooleanType(HdlType):
    def compatible(self, other: HdlType) -> bool:
        return isinstance(other, BooleanType)

    def __str__(self) -> str:
        return "boolean"


@dataclass(frozen=True)
class IntegerType(HdlType):
    """``integer range low to high``; unconstrained uses wide bounds."""

    low: int = -(2**31)
    high: int = 2**31 - 1

    def compatible(self, other: HdlType) -> bool:
        # All integer subtypes share a base type in VHDL: assignments are
        # legal at analysis time; range violations are run-time errors.
        return isinstance(other, IntegerType)

    def contains(self, value: int) -> bool:
        return self.low <= value <= self.high

    @property
    def bit_width(self) -> int:
        """Bits needed to encode the range (non-negative ranges only)."""
        if self.low < 0:
            raise ValueError(
                f"negative integer range {self} is not synthesizable"
            )
        return max(self.high.bit_length(), 1)

    def __str__(self) -> str:
        return f"integer range {self.low} to {self.high}"


@dataclass(frozen=True)
class BitVectorType(HdlType):
    """``bit_vector(left downto right)``; only descending ranges."""

    left: int = 0
    right: int = 0

    def __post_init__(self) -> None:
        if self.left < self.right:
            raise ValueError(
                f"bit_vector({self.left} downto {self.right}) is ascending; "
                "only descending ranges are supported"
            )

    @property
    def width(self) -> int:
        return self.left - self.right + 1

    def compatible(self, other: HdlType) -> bool:
        return isinstance(other, BitVectorType) and other.width == self.width

    def bit_index(self, index: int) -> int:
        """Map a VHDL index to a 0-based LSB offset, checking bounds."""
        if not self.right <= index <= self.left:
            raise ValueError(
                f"index {index} out of bit_vector({self.left} downto "
                f"{self.right}) bounds"
            )
        return index - self.right

    def __str__(self) -> str:
        return f"bit_vector({self.left} downto {self.right})"


@dataclass(frozen=True)
class EnumType(HdlType):
    name: str = ""
    literals: tuple[str, ...] = ()

    def compatible(self, other: HdlType) -> bool:
        return isinstance(other, EnumType) and other.name == self.name

    def index_of(self, literal: str) -> int:
        return self.literals.index(literal)

    @property
    def bit_width(self) -> int:
        return max((len(self.literals) - 1).bit_length(), 1)

    def __str__(self) -> str:
        return self.name


#: Singletons for the scalar types.
BIT = BitType()
BOOLEAN = BooleanType()


def is_scalar_bit(ty: HdlType) -> bool:
    return isinstance(ty, BitType)


def is_vector(ty: HdlType) -> bool:
    return isinstance(ty, BitVectorType)


def is_integer(ty: HdlType) -> bool:
    return isinstance(ty, IntegerType)


def is_boolean(ty: HdlType) -> bool:
    return isinstance(ty, BooleanType)


def is_enum(ty: HdlType) -> bool:
    return isinstance(ty, EnumType)
