"""Pretty-printer: AST nodes back to VHDL-subset text.

Used for human-readable mutant descriptions ("``a and b`` -> ``a or b``")
and for round-trip tests of the parser.
"""

from __future__ import annotations

from repro.hdl import ast

_BINARY_PAREN_OPS = frozenset(
    {"and", "or", "nand", "nor", "xor", "xnor", "=", "/=", "<", "<=", ">",
     ">=", "+", "-", "*", "mod", "rem", "&"}
)


def expr_to_text(node: ast.Expr) -> str:
    """Render an expression; sub-expressions are parenthesized for clarity."""
    if isinstance(node, ast.Name):
        return node.ident
    if isinstance(node, ast.IntLit):
        return str(node.value)
    if isinstance(node, ast.BitLit):
        return f"'{node.value}'"
    if isinstance(node, ast.BitStringLit):
        return f'"{node.bits}"'
    if isinstance(node, ast.BoolLit):
        return "true" if node.value else "false"
    if isinstance(node, ast.EnumLit):
        return node.literal
    if isinstance(node, ast.Unary):
        if node.op == "not":
            return f"not {_sub(node.operand)}"
        return f"{node.op}{_sub(node.operand)}"
    if isinstance(node, ast.Binary):
        return f"{_sub(node.left)} {node.op} {_sub(node.right)}"
    if isinstance(node, ast.Index):
        return f"{expr_to_text(node.prefix)}({expr_to_text(node.index)})"
    if isinstance(node, ast.Slice):
        return (
            f"{expr_to_text(node.prefix)}({expr_to_text(node.left)} "
            f"downto {expr_to_text(node.right)})"
        )
    if isinstance(node, ast.Attribute):
        return f"{expr_to_text(node.prefix)}'{node.attr}"
    if isinstance(node, ast.Call):
        args = ", ".join(expr_to_text(a) for a in node.args)
        return f"{node.func}({args})"
    if isinstance(node, ast.OthersAggregate):
        return f"(others => {expr_to_text(node.value)})"
    raise TypeError(f"cannot print {type(node).__name__}")


def _sub(node: ast.Expr) -> str:
    text = expr_to_text(node)
    if isinstance(node, ast.Binary) and node.op in _BINARY_PAREN_OPS:
        return f"({text})"
    return text


def stmt_to_text(stmt: ast.Stmt, indent: int = 0) -> str:
    """Render a statement (recursively) with two-space indentation."""
    pad = "  " * indent
    if isinstance(stmt, ast.SignalAssign):
        return f"{pad}{expr_to_text(stmt.target)} <= {expr_to_text(stmt.value)};"
    if isinstance(stmt, ast.VarAssign):
        return f"{pad}{expr_to_text(stmt.target)} := {expr_to_text(stmt.value)};"
    if isinstance(stmt, ast.NullStmt):
        return f"{pad}null;"
    if isinstance(stmt, ast.If):
        lines = []
        for i, (cond, body) in enumerate(stmt.arms):
            word = "if" if i == 0 else "elsif"
            lines.append(f"{pad}{word} {expr_to_text(cond)} then")
            lines.extend(stmt_to_text(s, indent + 1) for s in body)
        if stmt.else_body:
            lines.append(f"{pad}else")
            lines.extend(stmt_to_text(s, indent + 1) for s in stmt.else_body)
        lines.append(f"{pad}end if;")
        return "\n".join(lines)
    if isinstance(stmt, ast.Case):
        lines = [f"{pad}case {expr_to_text(stmt.selector)} is"]
        for when in stmt.whens:
            if when.is_others:
                lines.append(f"{pad}  when others =>")
            else:
                choices = " | ".join(expr_to_text(c) for c in when.choices)
                lines.append(f"{pad}  when {choices} =>")
            lines.extend(stmt_to_text(s, indent + 2) for s in when.body)
        lines.append(f"{pad}end case;")
        return "\n".join(lines)
    if isinstance(stmt, ast.ForLoop):
        lines = [
            f"{pad}for {stmt.var} in {expr_to_text(stmt.low)} "
            f"{stmt.direction} {expr_to_text(stmt.high)} loop"
        ]
        lines.extend(stmt_to_text(s, indent + 1) for s in stmt.body)
        lines.append(f"{pad}end loop;")
        return "\n".join(lines)
    raise TypeError(f"cannot print {type(stmt).__name__}")


def node_to_text(node: ast.Node) -> str:
    """Render either an expression or a statement."""
    if isinstance(node, ast.Expr):
        return expr_to_text(node)
    if isinstance(node, ast.Stmt):
        return stmt_to_text(node)
    raise TypeError(f"cannot print {type(node).__name__}")
