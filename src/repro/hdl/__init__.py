"""VHDL-subset front end: lexer, parser, semantic analysis, elaboration.

The subset covers what the ITC'99 / ISCAS'85-style benchmark descriptions
need (and what the mutation operators of the paper act on):

* one entity + one architecture per design, flat (no component hierarchy)
* types ``bit``, ``bit_vector(h downto l)``, ``boolean``,
  ``integer range a to b`` and user enumeration types
* signals, constants, process variables
* clocked processes (async-reset template), combinational processes and
  concurrent (conditional) signal assignments
* ``if``/``elsif``/``else``, ``case``/``when``, static ``for`` loops
* logical, relational and arithmetic operators, indexing, slicing,
  concatenation, ``(others => ...)`` aggregates, ``rising_edge`` /
  ``falling_edge`` and the ``'event`` attribute

Entry points:

* :func:`repro.hdl.parser.parse_source` — text to AST design units
* :func:`repro.hdl.semantics.analyze` — AST to a typed, elaborated
  :class:`repro.hdl.design.Design`
* :func:`load_design` — both steps at once
"""

from repro.hdl.design import Design, Process, Symbol, SymbolKind
from repro.hdl.parser import parse_source
from repro.hdl.semantics import analyze
from repro.hdl.types import (
    BIT,
    BOOLEAN,
    BitType,
    BitVectorType,
    BooleanType,
    EnumType,
    HdlType,
    IntegerType,
)


def load_design(text: str, name: str = "<string>") -> Design:
    """Parse and analyze a self-contained VHDL-subset source text."""
    units = parse_source(text, name)
    return analyze(units)


__all__ = [
    "BIT",
    "BOOLEAN",
    "BitType",
    "BitVectorType",
    "BooleanType",
    "Design",
    "EnumType",
    "HdlType",
    "IntegerType",
    "Process",
    "Symbol",
    "SymbolKind",
    "analyze",
    "load_design",
    "parse_source",
]
