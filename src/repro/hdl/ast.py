"""Abstract syntax tree of the VHDL subset.

Every node carries a unique integer ``nid``.  The mutation engine
identifies mutation sites by ``nid`` and executes mutants through a patch
table mapping ``nid`` to a replacement node, so the original tree is never
copied or modified (the *mutant schema* technique).

Semantic analysis annotates expression nodes in place: ``ty`` receives the
checked :class:`repro.hdl.types.HdlType` and ``symbol`` (on names) the
resolved :class:`repro.hdl.design.Symbol`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_NODE_IDS = itertools.count(1)


def fresh_nid() -> int:
    """Allocate a process-wide unique node id."""
    return next(_NODE_IDS)


@dataclass
class Node:
    """Base class for all AST nodes."""

    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)
    nid: int = field(default_factory=fresh_nid, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions; ``ty`` is set by semantic analysis."""

    ty: object = field(default=None, kw_only=True)


@dataclass
class Name(Expr):
    """A simple identifier reference (signal, variable, constant, ...)."""

    ident: str = ""
    symbol: object = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class BitLit(Expr):
    """A ``'0'`` or ``'1'`` character literal."""

    value: int = 0


@dataclass
class BitStringLit(Expr):
    """A ``"0101"`` literal; ``bits[0]`` is the leftmost (MSB) character."""

    bits: str = ""


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class EnumLit(Expr):
    """A resolved enumeration literal (created during analysis)."""

    type_name: str = ""
    literal: str = ""
    index: int = 0


@dataclass
class Unary(Expr):
    op: str = ""          # "not", "-", "+"
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""          # and/or/nand/nor/xor/xnor = /= < <= > >= + - * mod rem &
    left: Expr = None
    right: Expr = None


@dataclass
class Index(Expr):
    """``prefix(index)`` — bit-vector element access."""

    prefix: Expr = None
    index: Expr = None


@dataclass
class Slice(Expr):
    """``prefix(hi downto lo)`` — bit-vector slice (descending only)."""

    prefix: Expr = None
    left: Expr = None
    right: Expr = None
    direction: str = "downto"


@dataclass
class Attribute(Expr):
    """``prefix'attr`` — only ``'event`` is supported."""

    prefix: Expr = None
    attr: str = ""


@dataclass
class Call(Expr):
    """``rising_edge(clk)`` / ``falling_edge(clk)``."""

    func: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class OthersAggregate(Expr):
    """``(others => expr)`` — replicates a bit over a vector target."""

    value: Expr = None


# --------------------------------------------------------------------------
# Type indications (syntax; resolved to HdlType during analysis)
# --------------------------------------------------------------------------


@dataclass
class TypeIndication(Node):
    """``bit`` / ``bit_vector(7 downto 0)`` / ``integer range 0 to 7`` / enum name."""

    type_name: str = ""
    # for bit_vector: (left, right) with "downto"; for integer: (lo, hi) with "to"
    constraint_left: Optional[Expr] = None
    constraint_right: Optional[Expr] = None
    direction: str = ""


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class PortDecl(Node):
    names: list[str] = field(default_factory=list)
    direction: str = "in"           # in / out
    type_ind: TypeIndication = None


@dataclass
class SignalDecl(Node):
    names: list[str] = field(default_factory=list)
    type_ind: TypeIndication = None
    init: Optional[Expr] = None


@dataclass
class VariableDecl(Node):
    names: list[str] = field(default_factory=list)
    type_ind: TypeIndication = None
    init: Optional[Expr] = None


@dataclass
class ConstantDecl(Node):
    name: str = ""
    type_ind: TypeIndication = None
    value: Expr = None


@dataclass
class EnumTypeDecl(Node):
    name: str = ""
    literals: list[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class SignalAssign(Stmt):
    target: Expr = None
    value: Expr = None


@dataclass
class VarAssign(Stmt):
    target: Expr = None
    value: Expr = None


@dataclass
class If(Stmt):
    """``if/elsif/else``; ``arms`` holds (condition, body) pairs in order."""

    arms: list[tuple[Expr, list[Stmt]]] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class CaseWhen(Node):
    """One ``when choices =>`` arm; ``choices`` empty means ``others``."""

    choices: list[Expr] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    is_others: bool = False


@dataclass
class Case(Stmt):
    selector: Expr = None
    whens: list[CaseWhen] = field(default_factory=list)


@dataclass
class ForLoop(Stmt):
    var: str = ""
    low: Expr = None
    high: Expr = None
    direction: str = "to"
    body: list[Stmt] = field(default_factory=list)


@dataclass
class NullStmt(Stmt):
    pass


# --------------------------------------------------------------------------
# Concurrent statements and design units
# --------------------------------------------------------------------------


@dataclass
class ProcessStmt(Node):
    label: str = ""
    sensitivity: list[str] = field(default_factory=list)
    decls: list[Node] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class ConcurrentAssign(Node):
    """``y <= a when c else b;`` chains or a simple ``y <= expr;``."""

    target: Expr = None
    # list of (value, condition); the final element has condition None
    arms: list[tuple[Expr, Optional[Expr]]] = field(default_factory=list)


@dataclass
class EntityDecl(Node):
    name: str = ""
    ports: list[PortDecl] = field(default_factory=list)


@dataclass
class ArchitectureBody(Node):
    name: str = ""
    entity_name: str = ""
    decls: list[Node] = field(default_factory=list)
    concurrent: list[Node] = field(default_factory=list)


DesignUnit = EntityDecl | ArchitectureBody
