"""Semantic analysis: names, types, process classification, elaboration.

``analyze(units)`` turns the parser's design units into a
:class:`repro.hdl.design.Design`:

* resolves and checks every name and type, annotating expression nodes in
  place (``node.ty``, ``node.symbol``) — the annotations are what the
  interpreter, the synthesizer and the mutation engine rely on;
* folds constants and static expressions (ranges, case choices, slice
  bounds, loop bounds);
* desugars concurrent signal assignments into combinational processes;
* classifies processes as clocked (async-reset template) or
  combinational and infers/completes sensitivity lists;
* enforces single-driver discipline and case coverage.
"""

from __future__ import annotations

from repro.errors import ElaborationError, SemanticError
from repro.hdl import ast
from repro.hdl import types as ty
from repro.hdl.design import Design, Process, ProcessKind, Symbol, SymbolKind
from repro.hdl.values import BV, default_value
from repro.hdl.walker import walk_expr

_UNIVERSAL_INT = ty.IntegerType()

#: Maximum enumerable selector domain for ``case`` coverage checking.
_MAX_CASE_DOMAIN = 4096


def analyze(units: list[ast.DesignUnit]) -> Design:
    """Analyze one entity + one architecture into a Design."""
    entities = [u for u in units if isinstance(u, ast.EntityDecl)]
    architectures = [u for u in units if isinstance(u, ast.ArchitectureBody)]
    if len(entities) != 1 or len(architectures) != 1:
        raise ElaborationError(
            f"expected exactly one entity and one architecture, got "
            f"{len(entities)} / {len(architectures)}"
        )
    entity = entities[0]
    architecture = architectures[0]
    if architecture.entity_name != entity.name:
        raise ElaborationError(
            f"architecture {architecture.name!r} is for entity "
            f"{architecture.entity_name!r}, not {entity.name!r}"
        )
    return _Analyzer(entity, architecture).run()


def _err(message: str, node: ast.Node) -> SemanticError:
    return SemanticError(message, node.line, node.col)


class _Analyzer:
    def __init__(self, entity: ast.EntityDecl, arch: ast.ArchitectureBody):
        self._entity = entity
        self._arch = arch
        self._symbols: dict[str, Symbol] = {}
        self._enums: dict[str, ty.EnumType] = {}
        self._constants: dict[str, Symbol] = {}
        self._ports: list[Symbol] = []
        self._signals: list[Symbol] = []
        self._processes: list[Process] = []
        # Per-process state while checking
        self._locals: dict[str, Symbol] = {}
        self._loop_vars: list[Symbol] = []
        self._reads: set[str] = set()
        self._writes: set[str] = set()

    # -- driver -------------------------------------------------------------

    def run(self) -> Design:
        self._declare_ports()
        self._declare_arch_decls()
        concurrent = self._desugar_concurrent(self._arch.concurrent)
        for index, process_stmt in enumerate(concurrent):
            self._processes.append(self._check_process(process_stmt, index))
        self._check_single_drivers()
        return Design(
            name=self._entity.name,
            ports=self._ports,
            signals=self._signals,
            constants=self._constants,
            enums=self._enums,
            processes=self._processes,
            symbols=dict(self._symbols),
        )

    # -- declarations ---------------------------------------------------------

    def _define(self, symbol: Symbol, node: ast.Node) -> Symbol:
        if symbol.name in self._symbols:
            raise _err(f"duplicate declaration of {symbol.name!r}", node)
        self._symbols[symbol.name] = symbol
        return symbol

    def _declare_ports(self) -> None:
        for port in self._entity.ports:
            port_type = self._resolve_type(port.type_ind)
            kind = (
                SymbolKind.PORT_IN
                if port.direction == "in"
                else SymbolKind.PORT_OUT
            )
            for name in port.names:
                symbol = Symbol(name, kind, port_type, default_value(port_type))
                self._define(symbol, port)
                self._ports.append(symbol)

    def _declare_arch_decls(self) -> None:
        for decl in self._arch.decls:
            if isinstance(decl, ast.EnumTypeDecl):
                self._declare_enum(decl)
            elif isinstance(decl, ast.ConstantDecl):
                self._declare_constant(decl, self._define)
            elif isinstance(decl, ast.SignalDecl):
                self._declare_signal(decl)
            else:  # pragma: no cover - parser restricts decl kinds
                raise _err("unsupported declaration", decl)

    def _declare_enum(self, decl: ast.EnumTypeDecl) -> None:
        if decl.name in self._enums or decl.name in self._symbols:
            raise _err(f"duplicate type name {decl.name!r}", decl)
        enum_type = ty.EnumType(decl.name, tuple(decl.literals))
        self._enums[decl.name] = enum_type
        for index, literal in enumerate(decl.literals):
            symbol = Symbol(literal, SymbolKind.ENUM_LITERAL, enum_type, index)
            self._define(symbol, decl)

    def _declare_constant(self, decl: ast.ConstantDecl, define) -> Symbol:
        const_type = self._resolve_type(decl.type_ind)
        value = self._fold_with_type(decl.value, const_type)
        symbol = Symbol(decl.name, SymbolKind.CONSTANT, const_type, value)
        define(symbol, decl)
        self._constants[decl.name] = symbol
        return symbol

    def _declare_signal(self, decl: ast.SignalDecl) -> None:
        signal_type = self._resolve_type(decl.type_ind)
        init = default_value(signal_type)
        if decl.init is not None:
            init = self._fold_with_type(decl.init, signal_type)
        for name in decl.names:
            symbol = Symbol(name, SymbolKind.SIGNAL, signal_type, init)
            self._define(symbol, decl)
            self._signals.append(symbol)

    def _resolve_type(self, ind: ast.TypeIndication) -> ty.HdlType:
        name = ind.type_name
        if name == "bit":
            return ty.BIT
        if name == "boolean":
            return ty.BOOLEAN
        if name in ("integer", "natural"):
            low = 0 if name == "natural" else _UNIVERSAL_INT.low
            high = _UNIVERSAL_INT.high
            if ind.constraint_left is not None:
                low = self._fold_int(ind.constraint_left)
                high = self._fold_int(ind.constraint_right)
                if low > high:
                    raise _err(f"empty integer range {low} to {high}", ind)
            return ty.IntegerType(low, high)
        if name == "bit_vector":
            if ind.constraint_left is None:
                raise _err("bit_vector requires a (h downto l) constraint", ind)
            left = self._fold_int(ind.constraint_left)
            right = self._fold_int(ind.constraint_right)
            if left < right:
                raise _err("bit_vector range must be descending", ind)
            return ty.BitVectorType(left, right)
        if name in self._enums:
            return self._enums[name]
        raise _err(f"unknown type {name!r}", ind)

    # -- static folding -------------------------------------------------------

    def _fold_int(self, expr: ast.Expr) -> int:
        value = self._fold_static(expr)
        if not isinstance(value, int) or isinstance(value, bool):
            raise _err("expected a static integer expression", expr)
        return value

    def _fold_static(self, expr: ast.Expr):
        """Evaluate a locally-static expression (constants + literals)."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BitLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.BitStringLit):
            return BV.from_string(expr.bits)
        if isinstance(expr, ast.Name):
            symbol = self._lookup(expr)
            if symbol.kind in (SymbolKind.CONSTANT, SymbolKind.ENUM_LITERAL):
                return symbol.init
            raise _err(f"{expr.ident!r} is not a static value", expr)
        if isinstance(expr, ast.Unary):
            value = self._fold_static(expr.operand)
            if expr.op == "-" and isinstance(value, int):
                return -value
            if expr.op == "not" and isinstance(value, bool):
                return not value
            raise _err("unsupported static unary operation", expr)
        if isinstance(expr, ast.Binary):
            left = self._fold_static(expr.left)
            right = self._fold_static(expr.right)
            if isinstance(left, int) and isinstance(right, int):
                ops = {
                    "+": lambda: left + right,
                    "-": lambda: left - right,
                    "*": lambda: left * right,
                    "mod": lambda: left % right,
                    "rem": lambda: int(_rem(left, right)),
                }
                if expr.op in ops:
                    return ops[expr.op]()
            raise _err("unsupported static binary operation", expr)
        raise _err("expected a static expression", expr)

    def _fold_with_type(self, expr: ast.Expr, expected: ty.HdlType):
        """Fold a static initializer and check it against ``expected``."""
        if isinstance(expr, ast.OthersAggregate):
            if not isinstance(expected, ty.BitVectorType):
                raise _err("aggregate requires a bit_vector context", expr)
            bit = self._fold_static(expr.value)
            if bit not in (0, 1):
                raise _err("aggregate element must be a bit", expr)
            value = BV((1 << expected.width) - 1 if bit else 0, expected.width)
            expr.ty = expected
            return value
        value = self._fold_static(expr)
        if isinstance(expected, ty.BitVectorType):
            if not isinstance(value, BV) or value.width != expected.width:
                raise _err(
                    f"initializer does not fit {expected}", expr
                )
        elif isinstance(expected, ty.IntegerType):
            if not isinstance(value, int) or isinstance(value, bool):
                raise _err("expected an integer initializer", expr)
            if not expected.contains(value):
                raise _err(f"value {value} outside {expected}", expr)
        elif isinstance(expected, ty.BitType):
            if value not in (0, 1):
                raise _err("expected a bit initializer", expr)
        elif isinstance(expected, ty.BooleanType):
            if not isinstance(value, bool):
                raise _err("expected a boolean initializer", expr)
        elif isinstance(expected, ty.EnumType):
            if not isinstance(value, int) or not (
                0 <= value < len(expected.literals)
            ):
                raise _err(f"expected a literal of {expected}", expr)
        return value

    # -- concurrent statements -------------------------------------------------

    def _desugar_concurrent(self, items: list[ast.Node]) -> list[ast.ProcessStmt]:
        processes: list[ast.ProcessStmt] = []
        for item in items:
            if isinstance(item, ast.ProcessStmt):
                processes.append(item)
            elif isinstance(item, ast.ConcurrentAssign):
                processes.append(self._assign_to_process(item))
            else:  # pragma: no cover - parser restricts concurrent kinds
                raise _err("unsupported concurrent statement", item)
        return processes

    def _assign_to_process(self, assign: ast.ConcurrentAssign) -> ast.ProcessStmt:
        """Turn ``y <= a when c else b;`` into an equivalent process."""
        loc = {"line": assign.line, "col": assign.col}

        def make_assign(value: ast.Expr) -> ast.SignalAssign:
            return ast.SignalAssign(target=assign.target, value=value, **loc)

        body: list[ast.Stmt]
        arms = assign.arms
        if len(arms) == 1:
            body = [make_assign(arms[0][0])]
        else:
            if_arms = [
                (cond, [make_assign(value)])
                for value, cond in arms[:-1]
            ]
            body = [
                ast.If(
                    arms=if_arms,
                    else_body=[make_assign(arms[-1][0])],
                    **loc,
                )
            ]
        return ast.ProcessStmt(label="", sensitivity=[], body=body, **loc)

    # -- processes ---------------------------------------------------------------

    def _check_process(self, stmt: ast.ProcessStmt, index: int) -> Process:
        label = stmt.label or f"proc{index}"
        self._locals = {}
        self._loop_vars = []
        self._reads = set()
        self._writes = set()
        variables: list[Symbol] = []
        for decl in stmt.decls:
            if isinstance(decl, ast.VariableDecl):
                var_type = self._resolve_type(decl.type_ind)
                init = default_value(var_type)
                if decl.init is not None:
                    init = self._fold_with_type(decl.init, var_type)
                for name in decl.names:
                    if name in self._symbols or name in self._locals:
                        raise _err(f"duplicate declaration of {name!r}", decl)
                    symbol = Symbol(name, SymbolKind.VARIABLE, var_type, init)
                    self._locals[name] = symbol
                    variables.append(symbol)
            elif isinstance(decl, ast.ConstantDecl):
                def define_local(symbol: Symbol, node: ast.Node) -> Symbol:
                    if symbol.name in self._symbols or symbol.name in self._locals:
                        raise _err(
                            f"duplicate declaration of {symbol.name!r}", node
                        )
                    self._locals[symbol.name] = symbol
                    return symbol

                self._declare_constant(decl, define_local)
            else:  # pragma: no cover
                raise _err("unsupported process declaration", decl)

        for sub in stmt.body:
            self._check_stmt(sub)

        process = Process(
            label=label,
            kind=ProcessKind.COMBINATIONAL,
            sensitivity=list(stmt.sensitivity),
            variables=variables,
            body=stmt.body,
            reads=set(self._reads),
            writes=set(self._writes),
        )
        self._classify(process, stmt)
        return process

    def _classify(self, process: Process, stmt: ast.ProcessStmt) -> None:
        """Detect the clocked async-reset template; else combinational."""
        body = process.body
        template = None
        if len(body) == 1 and isinstance(body[0], ast.If):
            template = self._match_clocked_template(body[0])
        if template is not None:
            clock, reset, reset_level, reset_body, sync_body, guards = template
            process.kind = ProcessKind.CLOCKED
            process.clock = clock
            process.reset = reset
            process.reset_level = reset_level
            process.reset_body = reset_body
            process.sync_body = sync_body
            process.guard_nids = guards
            wanted = [clock] + ([reset] if reset else [])
            for name in wanted:
                if name not in process.sensitivity:
                    process.sensitivity.append(name)
            return
        # Not clocked: any edge construct elsewhere is unsupported.
        for expr in _all_exprs(body):
            if isinstance(expr, ast.Attribute) or (
                isinstance(expr, ast.Call)
                and expr.func in ("rising_edge", "falling_edge")
            ):
                raise ElaborationError(
                    f"process {process.label!r} uses clock-edge constructs "
                    "outside the supported clocked template"
                )
        # Combinational: complete the sensitivity list from reads.
        for name in sorted(self._reads):
            symbol = self._symbols.get(name)
            if (
                symbol is not None
                and symbol.is_signal_like
                and name not in process.sensitivity
            ):
                process.sensitivity.append(name)

    def _match_clocked_template(self, node: ast.If):
        """Return (clock, reset, level, reset_body, sync_body, guard_nids)."""
        if node.else_body:
            return None
        arms = node.arms
        if len(arms) == 1:
            clock = self._match_edge(arms[0][0])
            if clock is None:
                return None
            guards = {n.nid for n in walk_expr(arms[0][0])} | {node.nid}
            return clock, None, 1, [], arms[0][1], guards
        if len(arms) == 2:
            reset_test = self._match_reset(arms[0][0])
            clock = self._match_edge(arms[1][0])
            if reset_test is None or clock is None:
                return None
            reset, level = reset_test
            guards = (
                {n.nid for n in walk_expr(arms[0][0])}
                | {n.nid for n in walk_expr(arms[1][0])}
                | {node.nid}
            )
            return clock, reset, level, arms[0][1], arms[1][1], guards
        return None

    def _match_edge(self, expr: ast.Expr) -> str | None:
        if isinstance(expr, ast.Call) and expr.func == "rising_edge":
            arg = expr.args[0]
            if isinstance(arg, ast.Name):
                return arg.ident
            return None
        if isinstance(expr, ast.Binary) and expr.op == "and":
            left, right = expr.left, expr.right
            if isinstance(right, ast.Attribute):
                left, right = right, left
            if (
                isinstance(left, ast.Attribute)
                and left.attr == "event"
                and isinstance(left.prefix, ast.Name)
                and isinstance(right, ast.Binary)
                and right.op == "="
            ):
                name_side, lit_side = right.left, right.right
                if isinstance(name_side, ast.BitLit):
                    name_side, lit_side = lit_side, name_side
                if (
                    isinstance(name_side, ast.Name)
                    and isinstance(lit_side, ast.BitLit)
                    and lit_side.value == 1
                    and name_side.ident == left.prefix.ident
                ):
                    return name_side.ident
        return None

    def _match_reset(self, expr: ast.Expr) -> tuple[str, int] | None:
        if not (isinstance(expr, ast.Binary) and expr.op == "="):
            return None
        name_side, lit_side = expr.left, expr.right
        if isinstance(name_side, ast.BitLit):
            name_side, lit_side = lit_side, name_side
        if isinstance(name_side, ast.Name) and isinstance(lit_side, ast.BitLit):
            return name_side.ident, lit_side.value
        return None

    # -- statements ---------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.SignalAssign):
            target_type, base = self._check_target(stmt.target, signal=True)
            self._check_expr_expected(stmt.value, target_type)
            self._writes.add(base.name)
        elif isinstance(stmt, ast.VarAssign):
            target_type, base = self._check_target(stmt.target, signal=False)
            self._check_expr_expected(stmt.value, target_type)
        elif isinstance(stmt, ast.If):
            for cond, body in stmt.arms:
                cond_type = self._check_expr(cond)
                if not ty.is_boolean(cond_type):
                    raise _err(
                        f"if condition must be boolean, got {cond_type}", cond
                    )
                for sub in body:
                    self._check_stmt(sub)
            for sub in stmt.else_body:
                self._check_stmt(sub)
        elif isinstance(stmt, ast.Case):
            self._check_case(stmt)
        elif isinstance(stmt, ast.ForLoop):
            self._check_for(stmt)
        elif isinstance(stmt, ast.NullStmt):
            pass
        else:  # pragma: no cover
            raise _err(f"unsupported statement {type(stmt).__name__}", stmt)

    def _check_case(self, stmt: ast.Case) -> None:
        selector_type = self._check_expr(stmt.selector)
        domain = _case_domain(selector_type)
        if domain is None:
            raise _err(
                f"case selector type {selector_type} is not enumerable",
                stmt.selector,
            )
        covered: set = set()
        has_others = False
        for when in stmt.whens:
            if when.is_others:
                if when is not stmt.whens[-1]:
                    raise _err("'others' must be the last alternative", when)
                has_others = True
            for choice in when.choices:
                value = self._fold_choice(choice, selector_type)
                if value in covered:
                    raise _err(f"duplicate case choice {value!r}", choice)
                covered.add(value)
            for sub in when.body:
                self._check_stmt(sub)
        if not has_others:
            if domain is _TOO_LARGE:
                raise _err(
                    "case over a large domain requires an others branch", stmt
                )
            missing = domain - covered
            if missing:
                raise _err(
                    f"case does not cover {sorted(missing)[:5]} and has no "
                    "others branch",
                    stmt,
                )

    def _fold_choice(self, choice: ast.Expr, selector_type: ty.HdlType):
        value = self._fold_static(choice)
        choice.ty = selector_type
        if isinstance(selector_type, ty.BitVectorType):
            if not isinstance(value, BV) or value.width != selector_type.width:
                raise _err("case choice width mismatch", choice)
            return value.value
        if isinstance(selector_type, ty.IntegerType):
            if not isinstance(value, int) or isinstance(value, bool):
                raise _err("case choice must be an integer", choice)
            if not selector_type.contains(value):
                raise _err(
                    f"case choice {value} outside {selector_type}", choice
                )
            return value
        if isinstance(selector_type, ty.BitType):
            if value not in (0, 1):
                raise _err("case choice must be '0' or '1'", choice)
            return value
        if isinstance(selector_type, ty.EnumType):
            if not isinstance(value, int):
                raise _err("case choice must be an enum literal", choice)
            return value
        raise _err("unsupported case selector type", choice)

    def _check_for(self, stmt: ast.ForLoop) -> None:
        low = self._fold_int(stmt.low)
        high = self._fold_int(stmt.high)
        if stmt.var in self._symbols or stmt.var in self._locals:
            raise _err(f"loop variable {stmt.var!r} shadows a declaration", stmt)
        lo, hi = (low, high) if stmt.direction == "to" else (high, low)
        symbol = Symbol(
            stmt.var, SymbolKind.LOOP_VAR, ty.IntegerType(min(lo, hi), max(lo, hi))
        )
        self._loop_vars.append(symbol)
        try:
            for sub in stmt.body:
                self._check_stmt(sub)
        finally:
            self._loop_vars.pop()

    def _check_target(
        self, target: ast.Expr, signal: bool
    ) -> tuple[ty.HdlType, Symbol]:
        """Check an assignment target; returns (element type, base symbol)."""
        if isinstance(target, ast.Name):
            symbol = self._lookup(target, is_read=False)
            self._require_assignable(symbol, signal, target)
            target.ty = symbol.ty
            return symbol.ty, symbol
        if isinstance(target, ast.Index):
            if not isinstance(target.prefix, ast.Name):
                raise _err("indexed target must be a plain name", target)
            symbol = self._lookup(target.prefix, is_read=False)
            self._require_assignable(symbol, signal, target)
            if not isinstance(symbol.ty, ty.BitVectorType):
                raise _err("only bit_vectors can be indexed", target)
            index_type = self._check_expr(target.index)
            if not ty.is_integer(index_type):
                raise _err("index must be an integer", target.index)
            target.prefix.ty = symbol.ty
            target.ty = ty.BIT
            return ty.BIT, symbol
        if isinstance(target, ast.Slice):
            if not isinstance(target.prefix, ast.Name):
                raise _err("sliced target must be a plain name", target)
            symbol = self._lookup(target.prefix, is_read=False)
            self._require_assignable(symbol, signal, target)
            if not isinstance(symbol.ty, ty.BitVectorType):
                raise _err("only bit_vectors can be sliced", target)
            left = self._fold_int(target.left)
            right = self._fold_int(target.right)
            try:
                symbol.ty.bit_index(left)
                symbol.ty.bit_index(right)
            except ValueError as exc:
                raise _err(str(exc), target) from None
            if left < right:
                raise _err("slice must be descending", target)
            slice_type = ty.BitVectorType(left, right)
            target.prefix.ty = symbol.ty
            target.ty = slice_type
            return slice_type, symbol
        raise _err("unsupported assignment target", target)

    def _require_assignable(
        self, symbol: Symbol, signal: bool, node: ast.Node
    ) -> None:
        if signal:
            if symbol.kind not in (SymbolKind.SIGNAL, SymbolKind.PORT_OUT):
                raise _err(
                    f"{symbol.name!r} is not a signal or output port", node
                )
        else:
            if symbol.kind is not SymbolKind.VARIABLE:
                raise _err(f"{symbol.name!r} is not a variable", node)

    # -- expressions -----------------------------------------------------------------

    def _lookup(self, name: ast.Name, is_read: bool = True) -> Symbol:
        symbol = self._locals.get(name.ident)
        if symbol is None:
            for loop_var in reversed(self._loop_vars):
                if loop_var.name == name.ident:
                    symbol = loop_var
                    break
        if symbol is None:
            symbol = self._symbols.get(name.ident)
        if symbol is None:
            raise _err(f"unknown name {name.ident!r}", name)
        name.symbol = symbol
        name.ty = symbol.ty
        if is_read and symbol.is_signal_like:
            self._reads.add(symbol.name)
        return symbol

    def _check_expr_expected(
        self, expr: ast.Expr, expected: ty.HdlType
    ) -> ty.HdlType:
        if isinstance(expr, ast.OthersAggregate):
            if not isinstance(expected, ty.BitVectorType):
                raise _err("aggregate requires a bit_vector context", expr)
            element = self._check_expr(expr.value)
            if not ty.is_scalar_bit(element):
                raise _err("aggregate element must be a bit", expr.value)
            expr.ty = expected
            return expected
        actual = self._check_expr(expr)
        if not expected.compatible(actual):
            raise _err(f"cannot assign {actual} to {expected}", expr)
        return actual

    def _check_expr(self, expr: ast.Expr) -> ty.HdlType:
        result = self._check_expr_inner(expr)
        expr.ty = result
        return result

    def _check_expr_inner(self, expr: ast.Expr) -> ty.HdlType:
        if isinstance(expr, ast.Name):
            return self._lookup(expr).ty
        if isinstance(expr, ast.IntLit):
            return _UNIVERSAL_INT
        if isinstance(expr, ast.BitLit):
            return ty.BIT
        if isinstance(expr, ast.BoolLit):
            return ty.BOOLEAN
        if isinstance(expr, ast.BitStringLit):
            return ty.BitVectorType(len(expr.bits) - 1, 0)
        if isinstance(expr, ast.EnumLit):
            return self._enums[expr.type_name]
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr)
        if isinstance(expr, ast.Index):
            prefix_type = self._check_expr(expr.prefix)
            if not isinstance(prefix_type, ty.BitVectorType):
                raise _err("only bit_vectors can be indexed", expr)
            index_type = self._check_expr(expr.index)
            if not ty.is_integer(index_type):
                raise _err("index must be an integer", expr.index)
            return ty.BIT
        if isinstance(expr, ast.Slice):
            prefix_type = self._check_expr(expr.prefix)
            if not isinstance(prefix_type, ty.BitVectorType):
                raise _err("only bit_vectors can be sliced", expr)
            left = self._fold_int(expr.left)
            right = self._fold_int(expr.right)
            try:
                prefix_type.bit_index(left)
                prefix_type.bit_index(right)
            except ValueError as exc:
                raise _err(str(exc), expr) from None
            if left < right:
                raise _err("slice must be descending", expr)
            return ty.BitVectorType(left, right)
        if isinstance(expr, ast.Attribute):
            prefix_type = self._check_expr(expr.prefix)
            if expr.attr != "event":
                raise _err(f"unsupported attribute {expr.attr!r}", expr)
            if not isinstance(expr.prefix, ast.Name):
                raise _err("'event requires a signal name", expr)
            return ty.BOOLEAN
        if isinstance(expr, ast.Call):
            if expr.func in ("rising_edge", "falling_edge"):
                if len(expr.args) != 1 or not isinstance(expr.args[0], ast.Name):
                    raise _err(f"{expr.func} takes one signal argument", expr)
                arg_type = self._check_expr(expr.args[0])
                if not ty.is_scalar_bit(arg_type):
                    raise _err(f"{expr.func} requires a bit signal", expr)
                return ty.BOOLEAN
            raise _err(f"unknown function {expr.func!r}", expr)
        if isinstance(expr, ast.OthersAggregate):
            raise _err(
                "aggregate is only allowed directly as an assignment source",
                expr,
            )
        raise _err(f"unsupported expression {type(expr).__name__}", expr)

    def _check_unary(self, expr: ast.Unary) -> ty.HdlType:
        operand = self._check_expr(expr.operand)
        if expr.op == "not":
            if ty.is_scalar_bit(operand) or ty.is_boolean(operand) or ty.is_vector(
                operand
            ):
                return operand
            raise _err(f"'not' cannot apply to {operand}", expr)
        if expr.op == "-":
            if ty.is_integer(operand):
                return _UNIVERSAL_INT
            raise _err(f"unary '-' cannot apply to {operand}", expr)
        raise _err(f"unsupported unary operator {expr.op!r}", expr)

    def _check_binary(self, expr: ast.Binary) -> ty.HdlType:
        left = self._check_expr(expr.left)
        right = self._check_expr(expr.right)
        op = expr.op
        if op in ("and", "or", "nand", "nor", "xor", "xnor"):
            if ty.is_scalar_bit(left) and ty.is_scalar_bit(right):
                return ty.BIT
            if ty.is_boolean(left) and ty.is_boolean(right):
                return ty.BOOLEAN
            if (
                ty.is_vector(left)
                and ty.is_vector(right)
                and left.width == right.width
            ):
                return ty.BitVectorType(left.width - 1, 0)
            raise _err(f"operator {op!r} cannot apply to {left} and {right}", expr)
        if op in ("=", "/="):
            if not left.compatible(right):
                raise _err(f"cannot compare {left} with {right}", expr)
            return ty.BOOLEAN
        if op in ("<", "<=", ">", ">="):
            if ty.is_integer(left) and ty.is_integer(right):
                return ty.BOOLEAN
            raise _err(
                f"ordering operator {op!r} requires integers, got "
                f"{left} and {right}",
                expr,
            )
        if op in ("+", "-", "*", "mod", "rem"):
            if ty.is_integer(left) and ty.is_integer(right):
                return _UNIVERSAL_INT
            raise _err(
                f"arithmetic operator {op!r} requires integers, got "
                f"{left} and {right}",
                expr,
            )
        if op == "&":
            left_width = _concat_width(left)
            right_width = _concat_width(right)
            if left_width is None or right_width is None:
                raise _err(f"cannot concatenate {left} and {right}", expr)
            return ty.BitVectorType(left_width + right_width - 1, 0)
        raise _err(f"unsupported binary operator {op!r}", expr)

    # -- whole-design checks -------------------------------------------------------

    def _check_single_drivers(self) -> None:
        drivers: dict[str, str] = {}
        for process in self._processes:
            for name in process.writes:
                if name in drivers:
                    raise ElaborationError(
                        f"signal {name!r} is driven by both "
                        f"{drivers[name]!r} and {process.label!r}"
                    )
                drivers[name] = process.label


def _rem(a: int, b: int) -> int:
    """VHDL ``rem``: result has the sign of the dividend."""
    if b == 0:
        raise ZeroDivisionError("rem by zero")
    return a - b * int(a / b)


def _concat_width(hdl_type: ty.HdlType) -> int | None:
    if isinstance(hdl_type, ty.BitType):
        return 1
    if isinstance(hdl_type, ty.BitVectorType):
        return hdl_type.width
    return None


#: Sentinel: the selector domain is enumerable in principle but too large
#: to enumerate; an ``others`` branch is then mandatory.
_TOO_LARGE = object()


def _case_domain(selector_type: ty.HdlType):
    """The full value domain of a case selector.

    Returns a set of values, the sentinel :data:`_TOO_LARGE`, or ``None``
    when the type cannot be a case selector at all.
    """
    if isinstance(selector_type, ty.BitType):
        return {0, 1}
    if isinstance(selector_type, ty.BooleanType):
        return {False, True}
    if isinstance(selector_type, ty.EnumType):
        return set(range(len(selector_type.literals)))
    if isinstance(selector_type, ty.IntegerType):
        size = selector_type.high - selector_type.low + 1
        if size > _MAX_CASE_DOMAIN:
            return _TOO_LARGE
        return set(range(selector_type.low, selector_type.high + 1))
    if isinstance(selector_type, ty.BitVectorType):
        if 2**selector_type.width > _MAX_CASE_DOMAIN:
            return _TOO_LARGE
        return set(range(2**selector_type.width))
    return None


def _all_exprs(stmts: list[ast.Stmt]):
    from repro.hdl.walker import walk_all_exprs_in_stmts

    yield from walk_all_exprs_in_stmts(stmts)
