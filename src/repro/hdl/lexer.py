"""Hand-written lexer for the VHDL subset.

VHDL comments (``-- ...``) are skipped, identifiers and keywords are
lower-cased (VHDL is case-insensitive), character literals are restricted
to ``'0'`` and ``'1'`` and string literals to bit strings.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.hdl.tokens import KEYWORDS, Token, TokenKind

_SIMPLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "|": TokenKind.BAR,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "&": TokenKind.AMP,
}


def tokenize(text: str, name: str = "<string>") -> list[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    col = 1
    length = len(text)

    def error(message: str) -> LexError:
        return LexError(f"{name}: {message}", line, col)

    while pos < length:
        ch = text[pos]
        if ch == "\n":
            pos += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            pos += 1
            col += 1
            continue
        if ch == "-" and pos + 1 < length and text[pos + 1] == "-":
            while pos < length and text[pos] != "\n":
                pos += 1
            continue
        start_line, start_col = line, col
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end].lower()
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, word, start_line, start_col))
            col += end - pos
            pos = end
            continue
        if ch.isdigit():
            end = pos
            while end < length and (text[end].isdigit() or text[end] == "_"):
                end += 1
            digits = text[pos:end].replace("_", "")
            tokens.append(Token(TokenKind.INT, digits, start_line, start_col))
            col += end - pos
            pos = end
            continue
        if ch == "'":
            # Either a character literal '0' / '1' or the attribute tick.
            # A character literal has a closing quote two characters on;
            # an attribute tick is followed by an identifier.
            if pos + 2 < length and text[pos + 2] == "'" and text[pos + 1] in "01":
                tokens.append(
                    Token(TokenKind.CHAR, text[pos + 1], start_line, start_col)
                )
                pos += 3
                col += 3
                continue
            tokens.append(Token(TokenKind.TICK, "'", start_line, start_col))
            pos += 1
            col += 1
            continue
        if ch == '"':
            end = text.find('"', pos + 1)
            if end < 0:
                raise error("unterminated string literal")
            bits = text[pos + 1 : end].replace("_", "")
            if any(b not in "01" for b in bits):
                raise error(f"only bit strings are supported, got {bits!r}")
            tokens.append(Token(TokenKind.STRING, bits, start_line, start_col))
            col += end + 1 - pos
            pos = end + 1
            continue
        two = text[pos : pos + 2]
        if two == "=>":
            tokens.append(Token(TokenKind.ARROW, two, start_line, start_col))
        elif two == ":=":
            tokens.append(Token(TokenKind.VARASSIGN, two, start_line, start_col))
        elif two == "<=":
            tokens.append(Token(TokenKind.LE, two, start_line, start_col))
        elif two == ">=":
            tokens.append(Token(TokenKind.GE, two, start_line, start_col))
        elif two == "/=":
            tokens.append(Token(TokenKind.NEQ, two, start_line, start_col))
        else:
            if ch == ":":
                tokens.append(Token(TokenKind.COLON, ch, start_line, start_col))
            elif ch == "<":
                tokens.append(Token(TokenKind.LT, ch, start_line, start_col))
            elif ch == ">":
                tokens.append(Token(TokenKind.GT, ch, start_line, start_col))
            elif ch == "=":
                tokens.append(Token(TokenKind.EQ, ch, start_line, start_col))
            elif ch in _SIMPLE:
                tokens.append(Token(_SIMPLE[ch], ch, start_line, start_col))
            else:
                raise error(f"unexpected character {ch!r}")
            pos += 1
            col += 1
            continue
        pos += 2
        col += 2
    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
