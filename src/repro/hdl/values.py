"""Runtime values of the VHDL subset.

Values are deliberately lightweight because static typing is done by the
analyzer:

* ``bit``      — Python ``int`` 0 / 1
* ``boolean``  — Python ``bool``
* ``integer``  — Python ``int``
* ``enum``     — Python ``int`` (the literal's position)
* ``bit_vector`` — :class:`BV`, an immutable (value, width) pair

:class:`BV` stores bit 0 of ``value`` as the rightmost VHDL index (the
``right`` bound of the declared descending range maps to LSB offset 0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl import types as ty


@dataclass(frozen=True)
class BV:
    """An immutable bit-vector value: ``width`` bits of ``value``."""

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("bit-vector width must be positive")
        object.__setattr__(self, "value", self.value & self.mask)

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def bit(self, offset: int) -> int:
        """Bit at LSB ``offset`` (0 = rightmost)."""
        if not 0 <= offset < self.width:
            raise ValueError(f"bit offset {offset} out of width {self.width}")
        return (self.value >> offset) & 1

    def with_bit(self, offset: int, bit: int) -> "BV":
        if not 0 <= offset < self.width:
            raise ValueError(f"bit offset {offset} out of width {self.width}")
        if bit:
            return BV(self.value | (1 << offset), self.width)
        return BV(self.value & ~(1 << offset), self.width)

    def slice(self, high: int, low: int) -> "BV":
        """Bits ``high`` down to ``low`` as LSB offsets."""
        if not 0 <= low <= high < self.width:
            raise ValueError(
                f"slice ({high}, {low}) out of width {self.width}"
            )
        width = high - low + 1
        return BV((self.value >> low) & ((1 << width) - 1), width)

    def with_slice(self, high: int, low: int, piece: "BV") -> "BV":
        if piece.width != high - low + 1:
            raise ValueError("slice assignment width mismatch")
        cleared = self.value & ~(piece.mask << low)
        return BV(cleared | (piece.value << low), self.width)

    def concat(self, other: "BV") -> "BV":
        """``self & other`` — self becomes the most significant part."""
        return BV(
            (self.value << other.width) | other.value,
            self.width + other.width,
        )

    @classmethod
    def from_string(cls, bits: str) -> "BV":
        """Build from a ``"0101"`` literal (leftmost char is MSB)."""
        if not bits:
            raise ValueError("empty bit string")
        return cls(int(bits, 2), len(bits))

    def to_string(self) -> str:
        return format(self.value, f"0{self.width}b")

    def __str__(self) -> str:
        return f'"{self.to_string()}"'


def default_value(hdl_type: ty.HdlType):
    """The value a signal of ``hdl_type`` holds before any assignment."""
    if isinstance(hdl_type, ty.BitType):
        return 0
    if isinstance(hdl_type, ty.BooleanType):
        return False
    if isinstance(hdl_type, ty.IntegerType):
        return hdl_type.low
    if isinstance(hdl_type, ty.EnumType):
        return 0
    if isinstance(hdl_type, ty.BitVectorType):
        return BV(0, hdl_type.width)
    raise TypeError(f"no default for {hdl_type!r}")


def check_in_range(value, hdl_type: ty.HdlType) -> None:
    """Raise ``ValueError`` if ``value`` is outside ``hdl_type``.

    Used by the interpreter to turn out-of-range mutant writes into
    run-time (kill) events.
    """
    if isinstance(hdl_type, ty.IntegerType) and not hdl_type.contains(value):
        raise ValueError(f"value {value} out of range {hdl_type}")
    if isinstance(hdl_type, ty.EnumType) and not (
        0 <= value < len(hdl_type.literals)
    ):
        raise ValueError(f"enum position {value} out of range for {hdl_type}")
    if isinstance(hdl_type, ty.BitType) and value not in (0, 1):
        raise ValueError(f"bit value {value} is not 0/1")
