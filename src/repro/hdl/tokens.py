"""Token kinds and the token record produced by the lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical categories of the VHDL subset."""

    IDENT = auto()
    KEYWORD = auto()
    INT = auto()
    CHAR = auto()        # '0' / '1' bit literals
    STRING = auto()      # "0101" bit-string literals
    LPAREN = auto()
    RPAREN = auto()
    SEMICOLON = auto()
    COLON = auto()
    COMMA = auto()
    DOT = auto()
    BAR = auto()         # | in case choices
    TICK = auto()        # ' in attribute names
    ARROW = auto()       # =>
    VARASSIGN = auto()   # :=
    LE = auto()          # <= (signal assignment or relational)
    GE = auto()          # >=
    LT = auto()
    GT = auto()
    EQ = auto()          # =
    NEQ = auto()         # /=
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    AMP = auto()         # & concatenation
    EOF = auto()


#: Reserved words of the subset.  VHDL is case-insensitive; the lexer
#: lower-cases identifiers before checking membership.
KEYWORDS = frozenset(
    {
        "architecture",
        "and",
        "begin",
        "case",
        "constant",
        "downto",
        "else",
        "elsif",
        "end",
        "entity",
        "for",
        "if",
        "in",
        "inout",
        "is",
        "library",
        "loop",
        "mod",
        "nand",
        "nor",
        "not",
        "null",
        "of",
        "others",
        "out",
        "port",
        "process",
        "range",
        "rem",
        "signal",
        "subtype",
        "then",
        "to",
        "type",
        "use",
        "variable",
        "when",
        "xnor",
        "xor",
        "or",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.column}"
