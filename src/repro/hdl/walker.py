"""Generic AST walkers shared by semantic analysis and mutation.

The walkers yield nodes in a deterministic depth-first, left-to-right
order, which makes mutant numbering stable across runs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.hdl import ast


def walk_expr(expr: ast.Expr) -> Iterator[ast.Expr]:
    """Yield ``expr`` and every sub-expression, depth-first pre-order."""
    yield expr
    if isinstance(expr, ast.Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, ast.Binary):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, ast.Index):
        yield from walk_expr(expr.prefix)
        yield from walk_expr(expr.index)
    elif isinstance(expr, ast.Slice):
        yield from walk_expr(expr.prefix)
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, ast.Attribute):
        yield from walk_expr(expr.prefix)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, ast.OthersAggregate):
        yield from walk_expr(expr.value)


def walk_stmts(stmts: Iterable[ast.Stmt]) -> Iterator[ast.Stmt]:
    """Yield every statement in ``stmts`` recursively, pre-order."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, ast.If):
            for _, body in stmt.arms:
                yield from walk_stmts(body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, ast.Case):
            for when in stmt.whens:
                yield from walk_stmts(when.body)
        elif isinstance(stmt, ast.ForLoop):
            yield from walk_stmts(stmt.body)


def stmt_rvalue_exprs(stmt: ast.Stmt) -> list[ast.Expr]:
    """Top-level *read* expressions of one statement (no sub-statements).

    These are the expressions mutation operators may rewrite: assignment
    sources, branch conditions, case selectors and loop bounds are
    excluded only where mutation would change control structure that the
    paper's operators do not touch (loop bounds stay static).
    """
    if isinstance(stmt, (ast.SignalAssign, ast.VarAssign)):
        exprs = [stmt.value]
        # Index expressions on the target are reads too.
        target = stmt.target
        if isinstance(target, ast.Index):
            exprs.append(target.index)
        return exprs
    if isinstance(stmt, ast.If):
        return [cond for cond, _ in stmt.arms]
    if isinstance(stmt, ast.Case):
        return [stmt.selector]
    if isinstance(stmt, ast.ForLoop):
        return []
    return []


def walk_all_exprs_in_stmts(stmts: Iterable[ast.Stmt]) -> Iterator[ast.Expr]:
    """Every expression reachable from ``stmts`` (via rvalue roles)."""
    for stmt in walk_stmts(stmts):
        for top in stmt_rvalue_exprs(stmt):
            yield from walk_expr(top)
