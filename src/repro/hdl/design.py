"""Elaborated design model produced by semantic analysis.

A :class:`Design` is the unit every downstream subsystem consumes: the
behavioural simulator interprets its processes, the mutation engine
harvests mutation sites from its (typed) process bodies, and the
synthesizer lowers it to a gate-level netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from repro.hdl import ast
from repro.hdl.types import EnumType, HdlType


class SymbolKind(Enum):
    PORT_IN = auto()
    PORT_OUT = auto()
    SIGNAL = auto()
    VARIABLE = auto()
    CONSTANT = auto()
    ENUM_LITERAL = auto()
    LOOP_VAR = auto()


@dataclass
class Symbol:
    """A named object: port, signal, variable, constant or literal."""

    name: str
    kind: SymbolKind
    ty: HdlType
    #: Initial value for signals/variables, folded value for constants and
    #: enum literals (their position).
    init: object = None

    @property
    def is_signal_like(self) -> bool:
        """Objects that live in the simulator's signal store."""
        return self.kind in (
            SymbolKind.PORT_IN,
            SymbolKind.PORT_OUT,
            SymbolKind.SIGNAL,
        )

    def __repr__(self) -> str:
        return f"Symbol({self.name}, {self.kind.name}, {self.ty})"


class ProcessKind(Enum):
    CLOCKED = auto()
    COMBINATIONAL = auto()


@dataclass
class Process:
    """One process after elaboration.

    For clocked processes the async-reset template is recognised and its
    pieces are exposed (``clock``, ``reset``, ``reset_level``,
    ``reset_body``, ``sync_body``); the original ``body`` is still what
    the interpreter executes, so mutants patched anywhere in the tree
    behave correctly.  ``guard_nids`` collects the node ids of the
    template's control plumbing (edge test, reset comparison) which the
    mutation generator must not mutate.
    """

    label: str
    kind: ProcessKind
    sensitivity: list[str]
    variables: list[Symbol]
    body: list[ast.Stmt]
    clock: str | None = None
    reset: str | None = None
    reset_level: int = 1
    reset_body: list[ast.Stmt] = field(default_factory=list)
    sync_body: list[ast.Stmt] = field(default_factory=list)
    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    guard_nids: set[int] = field(default_factory=set)

    @property
    def is_clocked(self) -> bool:
        return self.kind is ProcessKind.CLOCKED


@dataclass
class Design:
    """A fully analyzed, single-entity design."""

    name: str
    ports: list[Symbol]
    signals: list[Symbol]
    constants: dict[str, Symbol]
    enums: dict[str, EnumType]
    processes: list[Process]
    symbols: dict[str, Symbol]

    @property
    def input_ports(self) -> list[Symbol]:
        return [p for p in self.ports if p.kind is SymbolKind.PORT_IN]

    @property
    def output_ports(self) -> list[Symbol]:
        return [p for p in self.ports if p.kind is SymbolKind.PORT_OUT]

    @property
    def clocks(self) -> list[str]:
        seen: list[str] = []
        for process in self.processes:
            if process.clock and process.clock not in seen:
                seen.append(process.clock)
        return seen

    @property
    def resets(self) -> list[str]:
        seen: list[str] = []
        for process in self.processes:
            if process.reset and process.reset not in seen:
                seen.append(process.reset)
        return seen

    @property
    def is_sequential(self) -> bool:
        return any(p.is_clocked for p in self.processes)

    @property
    def data_input_ports(self) -> list[Symbol]:
        """Input ports excluding clock and reset (the stimulus channels)."""
        control = set(self.clocks) | set(self.resets)
        return [p for p in self.input_ports if p.name not in control]

    def port(self, name: str) -> Symbol:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"no port named {name!r} in design {self.name!r}")

    @property
    def signal_like_symbols(self) -> list[Symbol]:
        """All symbols the simulator tracks: ports then internal signals."""
        return list(self.ports) + list(self.signals)

    def stimulus_width(self) -> int:
        """Total bit width of the data input ports (vector stimuli)."""
        from repro.hdl import types as ty

        width = 0
        for port in self.data_input_ports:
            if isinstance(port.ty, ty.BitType):
                width += 1
            elif isinstance(port.ty, ty.BitVectorType):
                width += port.ty.width
            elif isinstance(port.ty, ty.IntegerType):
                width += port.ty.bit_width
            elif isinstance(port.ty, ty.EnumType):
                width += port.ty.bit_width
            else:
                raise TypeError(f"unsupported input port type {port.ty}")
        return width
