"""Recursive-descent parser for the VHDL subset.

The grammar is the synthesizable subset described in
:mod:`repro.hdl`.  ``library`` and ``use`` clauses are accepted and
ignored so that sources written for real tools parse unchanged.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.hdl import ast
from repro.hdl.lexer import tokenize
from repro.hdl.tokens import Token, TokenKind

#: Builtin functions recognised at parse time.
BUILTIN_FUNCTIONS = frozenset({"rising_edge", "falling_edge"})

_LOGICAL_OPS = frozenset({"and", "or", "nand", "nor", "xor", "xnor"})
_RELATIONAL = {
    TokenKind.EQ: "=",
    TokenKind.NEQ: "/=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}


def parse_source(text: str, name: str = "<string>") -> list[ast.DesignUnit]:
    """Parse ``text`` into entity declarations and architecture bodies."""
    return _Parser(tokenize(text, name), name).parse_file()


class _Parser:
    def __init__(self, tokens: list[Token], name: str):
        self._tokens = tokens
        self._pos = 0
        self._name = name

    # -- token plumbing ----------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._cur
        return ParseError(
            f"{self._name}: {message} (found {token.kind.name} {token.text!r})",
            token.line,
            token.column,
        )

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        if self._cur.kind is not kind:
            raise self._error(f"expected {what or kind.name}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._cur.is_keyword(word):
            raise self._error(f"expected keyword '{word}'")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._cur.is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_ident(self, what: str = "identifier") -> Token:
        if self._cur.kind is not TokenKind.IDENT:
            raise self._error(f"expected {what}")
        return self._advance()

    def _loc(self, token: Token) -> dict:
        return {"line": token.line, "col": token.column}

    # -- design file -------------------------------------------------------

    def parse_file(self) -> list[ast.DesignUnit]:
        units: list[ast.DesignUnit] = []
        while self._cur.kind is not TokenKind.EOF:
            if self._cur.is_keyword("library") or self._cur.is_keyword("use"):
                self._skip_clause()
            elif self._cur.is_keyword("entity"):
                units.append(self._parse_entity())
            elif self._cur.is_keyword("architecture"):
                units.append(self._parse_architecture())
            else:
                raise self._error("expected entity or architecture")
        return units

    def _skip_clause(self) -> None:
        while self._cur.kind not in (TokenKind.SEMICOLON, TokenKind.EOF):
            self._advance()
        self._expect(TokenKind.SEMICOLON, "';'")

    def _parse_entity(self) -> ast.EntityDecl:
        start = self._expect_keyword("entity")
        name = self._expect_ident("entity name").text
        self._expect_keyword("is")
        ports: list[ast.PortDecl] = []
        if self._accept_keyword("port"):
            self._expect(TokenKind.LPAREN, "'('")
            ports.append(self._parse_port())
            while self._cur.kind is TokenKind.SEMICOLON:
                self._advance()
                ports.append(self._parse_port())
            self._expect(TokenKind.RPAREN, "')'")
            self._expect(TokenKind.SEMICOLON, "';'")
        self._expect_keyword("end")
        self._accept_keyword("entity")
        if self._cur.kind is TokenKind.IDENT:
            self._advance()
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.EntityDecl(name=name, ports=ports, **self._loc(start))

    def _parse_port(self) -> ast.PortDecl:
        start = self._cur
        names = [self._expect_ident("port name").text]
        while self._cur.kind is TokenKind.COMMA:
            self._advance()
            names.append(self._expect_ident("port name").text)
        self._expect(TokenKind.COLON, "':'")
        if self._accept_keyword("in"):
            direction = "in"
        elif self._accept_keyword("out"):
            direction = "out"
        elif self._accept_keyword("inout"):
            raise self._error("inout ports are not supported")
        else:
            raise self._error("expected port direction (in/out)")
        type_ind = self._parse_type_indication()
        return ast.PortDecl(
            names=names, direction=direction, type_ind=type_ind,
            **self._loc(start),
        )

    def _parse_type_indication(self) -> ast.TypeIndication:
        start = self._expect_ident("type name")
        type_name = start.text
        node = ast.TypeIndication(type_name=type_name, **self._loc(start))
        if self._accept_keyword("range"):
            node.constraint_left = self._parse_simple_expression()
            if self._accept_keyword("to"):
                node.direction = "to"
            elif self._accept_keyword("downto"):
                raise self._error("descending integer ranges are not supported")
            else:
                raise self._error("expected 'to' in integer range")
            node.constraint_right = self._parse_simple_expression()
        elif self._cur.kind is TokenKind.LPAREN:
            self._advance()
            node.constraint_left = self._parse_simple_expression()
            if self._accept_keyword("downto"):
                node.direction = "downto"
            elif self._accept_keyword("to"):
                raise self._error(
                    "ascending bit_vector ranges are not supported"
                )
            else:
                raise self._error("expected 'downto' in vector constraint")
            node.constraint_right = self._parse_simple_expression()
            self._expect(TokenKind.RPAREN, "')'")
        return node

    def _parse_architecture(self) -> ast.ArchitectureBody:
        start = self._expect_keyword("architecture")
        name = self._expect_ident("architecture name").text
        self._expect_keyword("of")
        entity_name = self._expect_ident("entity name").text
        self._expect_keyword("is")
        decls: list[ast.Node] = []
        while not self._cur.is_keyword("begin"):
            decls.append(self._parse_block_declaration())
        self._expect_keyword("begin")
        concurrent: list[ast.Node] = []
        while not self._cur.is_keyword("end"):
            concurrent.append(self._parse_concurrent_statement())
        self._expect_keyword("end")
        self._accept_keyword("architecture")
        if self._cur.kind is TokenKind.IDENT:
            self._advance()
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.ArchitectureBody(
            name=name, entity_name=entity_name, decls=decls,
            concurrent=concurrent, **self._loc(start),
        )

    def _parse_block_declaration(self) -> ast.Node:
        if self._cur.is_keyword("signal"):
            return self._parse_signal_decl()
        if self._cur.is_keyword("constant"):
            return self._parse_constant_decl()
        if self._cur.is_keyword("type"):
            return self._parse_enum_type_decl()
        raise self._error("expected signal, constant or type declaration")

    def _parse_signal_decl(self) -> ast.SignalDecl:
        start = self._expect_keyword("signal")
        names = [self._expect_ident("signal name").text]
        while self._cur.kind is TokenKind.COMMA:
            self._advance()
            names.append(self._expect_ident("signal name").text)
        self._expect(TokenKind.COLON, "':'")
        type_ind = self._parse_type_indication()
        init = None
        if self._cur.kind is TokenKind.VARASSIGN:
            self._advance()
            init = self._parse_expression()
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.SignalDecl(
            names=names, type_ind=type_ind, init=init, **self._loc(start)
        )

    def _parse_constant_decl(self) -> ast.ConstantDecl:
        start = self._expect_keyword("constant")
        name = self._expect_ident("constant name").text
        self._expect(TokenKind.COLON, "':'")
        type_ind = self._parse_type_indication()
        self._expect(TokenKind.VARASSIGN, "':='")
        value = self._parse_expression()
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.ConstantDecl(
            name=name, type_ind=type_ind, value=value, **self._loc(start)
        )

    def _parse_enum_type_decl(self) -> ast.EnumTypeDecl:
        start = self._expect_keyword("type")
        name = self._expect_ident("type name").text
        self._expect_keyword("is")
        self._expect(TokenKind.LPAREN, "'('")
        literals = [self._expect_ident("enumeration literal").text]
        while self._cur.kind is TokenKind.COMMA:
            self._advance()
            literals.append(self._expect_ident("enumeration literal").text)
        self._expect(TokenKind.RPAREN, "')'")
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.EnumTypeDecl(name=name, literals=literals, **self._loc(start))

    # -- concurrent statements ----------------------------------------------

    def _parse_concurrent_statement(self) -> ast.Node:
        label = ""
        if (
            self._cur.kind is TokenKind.IDENT
            and self._peek().kind is TokenKind.COLON
        ):
            label = self._advance().text
            self._advance()
        if self._cur.is_keyword("process"):
            return self._parse_process(label)
        return self._parse_concurrent_assign()

    def _parse_process(self, label: str) -> ast.ProcessStmt:
        start = self._expect_keyword("process")
        sensitivity: list[str] = []
        if self._cur.kind is TokenKind.LPAREN:
            self._advance()
            sensitivity.append(self._expect_ident("signal name").text)
            while self._cur.kind is TokenKind.COMMA:
                self._advance()
                sensitivity.append(self._expect_ident("signal name").text)
            self._expect(TokenKind.RPAREN, "')'")
        self._accept_keyword("is")
        decls: list[ast.Node] = []
        while not self._cur.is_keyword("begin"):
            if self._cur.is_keyword("variable"):
                decls.append(self._parse_variable_decl())
            elif self._cur.is_keyword("constant"):
                decls.append(self._parse_constant_decl())
            else:
                raise self._error("expected variable/constant declaration")
        self._expect_keyword("begin")
        body = self._parse_statements(("process",))
        self._expect_keyword("end")
        self._expect_keyword("process")
        if self._cur.kind is TokenKind.IDENT:
            self._advance()
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.ProcessStmt(
            label=label, sensitivity=sensitivity, decls=decls, body=body,
            **self._loc(start),
        )

    def _parse_variable_decl(self) -> ast.VariableDecl:
        start = self._expect_keyword("variable")
        names = [self._expect_ident("variable name").text]
        while self._cur.kind is TokenKind.COMMA:
            self._advance()
            names.append(self._expect_ident("variable name").text)
        self._expect(TokenKind.COLON, "':'")
        type_ind = self._parse_type_indication()
        init = None
        if self._cur.kind is TokenKind.VARASSIGN:
            self._advance()
            init = self._parse_expression()
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.VariableDecl(
            names=names, type_ind=type_ind, init=init, **self._loc(start)
        )

    def _parse_concurrent_assign(self) -> ast.ConcurrentAssign:
        start = self._cur
        target = self._parse_name()
        if self._cur.kind is not TokenKind.LE:
            raise self._error("expected '<=' in concurrent assignment")
        self._advance()
        arms: list[tuple[ast.Expr, ast.Expr | None]] = []
        while True:
            value = self._parse_expression()
            if self._accept_keyword("when"):
                condition = self._parse_expression()
                arms.append((value, condition))
                self._expect_keyword("else")
                continue
            arms.append((value, None))
            break
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.ConcurrentAssign(target=target, arms=arms, **self._loc(start))

    # -- sequential statements ----------------------------------------------

    def _parse_statements(self, stop_contexts: tuple[str, ...]) -> list[ast.Stmt]:
        body: list[ast.Stmt] = []
        while True:
            cur = self._cur
            if cur.is_keyword("end"):
                return body
            if cur.is_keyword("elsif") or cur.is_keyword("else"):
                return body
            if cur.is_keyword("when"):
                return body
            if cur.kind is TokenKind.EOF:
                raise self._error(
                    f"unterminated statement list in {stop_contexts[0]}"
                )
            body.append(self._parse_statement())

    def _parse_statement(self) -> ast.Stmt:
        cur = self._cur
        if cur.is_keyword("if"):
            return self._parse_if()
        if cur.is_keyword("case"):
            return self._parse_case()
        if cur.is_keyword("for"):
            return self._parse_for()
        if cur.is_keyword("null"):
            start = self._advance()
            self._expect(TokenKind.SEMICOLON, "';'")
            return ast.NullStmt(**self._loc(start))
        if cur.kind is TokenKind.IDENT:
            return self._parse_assignment()
        raise self._error("expected a statement")

    def _parse_assignment(self) -> ast.Stmt:
        start = self._cur
        target = self._parse_name()
        if self._cur.kind is TokenKind.LE:
            self._advance()
            value = self._parse_expression()
            self._expect(TokenKind.SEMICOLON, "';'")
            return ast.SignalAssign(
                target=target, value=value, **self._loc(start)
            )
        if self._cur.kind is TokenKind.VARASSIGN:
            self._advance()
            value = self._parse_expression()
            self._expect(TokenKind.SEMICOLON, "';'")
            return ast.VarAssign(target=target, value=value, **self._loc(start))
        raise self._error("expected '<=' or ':=' in assignment")

    def _parse_if(self) -> ast.If:
        start = self._expect_keyword("if")
        arms: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        condition = self._parse_expression()
        self._expect_keyword("then")
        arms.append((condition, self._parse_statements(("if",))))
        else_body: list[ast.Stmt] = []
        while True:
            if self._accept_keyword("elsif"):
                condition = self._parse_expression()
                self._expect_keyword("then")
                arms.append((condition, self._parse_statements(("if",))))
                continue
            if self._accept_keyword("else"):
                else_body = self._parse_statements(("if",))
            break
        self._expect_keyword("end")
        self._expect_keyword("if")
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.If(arms=arms, else_body=else_body, **self._loc(start))

    def _parse_case(self) -> ast.Case:
        start = self._expect_keyword("case")
        selector = self._parse_expression()
        self._expect_keyword("is")
        whens: list[ast.CaseWhen] = []
        while self._cur.is_keyword("when"):
            when_tok = self._advance()
            if self._accept_keyword("others"):
                self._expect(TokenKind.ARROW, "'=>'")
                body = self._parse_statements(("case",))
                whens.append(
                    ast.CaseWhen(
                        choices=[], body=body, is_others=True,
                        **self._loc(when_tok),
                    )
                )
                continue
            choices = [self._parse_simple_expression()]
            while self._cur.kind is TokenKind.BAR:
                self._advance()
                choices.append(self._parse_simple_expression())
            self._expect(TokenKind.ARROW, "'=>'")
            body = self._parse_statements(("case",))
            whens.append(
                ast.CaseWhen(choices=choices, body=body, **self._loc(when_tok))
            )
        self._expect_keyword("end")
        self._expect_keyword("case")
        self._expect(TokenKind.SEMICOLON, "';'")
        if not whens:
            raise self._error("case statement with no alternatives", start)
        return ast.Case(selector=selector, whens=whens, **self._loc(start))

    def _parse_for(self) -> ast.ForLoop:
        start = self._expect_keyword("for")
        var = self._expect_ident("loop variable").text
        self._expect_keyword("in")
        low = self._parse_simple_expression()
        if self._accept_keyword("to"):
            direction = "to"
        elif self._accept_keyword("downto"):
            direction = "downto"
        else:
            raise self._error("expected 'to' or 'downto' in for loop range")
        high = self._parse_simple_expression()
        self._expect_keyword("loop")
        body = self._parse_statements(("loop",))
        self._expect_keyword("end")
        self._expect_keyword("loop")
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.ForLoop(
            var=var, low=low, high=high, direction=direction, body=body,
            **self._loc(start),
        )

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        left = self._parse_relation()
        if (
            self._cur.kind is TokenKind.KEYWORD
            and self._cur.text in _LOGICAL_OPS
        ):
            op = self._cur.text
            while (
                self._cur.kind is TokenKind.KEYWORD
                and self._cur.text in _LOGICAL_OPS
            ):
                op_tok = self._advance()
                if op_tok.text != op:
                    raise self._error(
                        "mixing logical operators requires parentheses",
                        op_tok,
                    )
                right = self._parse_relation()
                left = ast.Binary(
                    op=op, left=left, right=right, **self._loc(op_tok)
                )
        return left

    def _parse_relation(self) -> ast.Expr:
        left = self._parse_simple_expression()
        if self._cur.kind in _RELATIONAL:
            op_tok = self._advance()
            right = self._parse_simple_expression()
            return ast.Binary(
                op=_RELATIONAL[op_tok.kind], left=left, right=right,
                **self._loc(op_tok),
            )
        return left

    def _parse_simple_expression(self) -> ast.Expr:
        if self._cur.kind is TokenKind.MINUS:
            op_tok = self._advance()
            operand = self._parse_term()
            left: ast.Expr = ast.Unary(
                op="-", operand=operand, **self._loc(op_tok)
            )
        elif self._cur.kind is TokenKind.PLUS:
            self._advance()
            left = self._parse_term()
        else:
            left = self._parse_term()
        while self._cur.kind in (TokenKind.PLUS, TokenKind.MINUS, TokenKind.AMP):
            op_tok = self._advance()
            op = {"+": "+", "-": "-", "&": "&"}[op_tok.text]
            right = self._parse_term()
            left = ast.Binary(op=op, left=left, right=right, **self._loc(op_tok))
        return left

    def _parse_term(self) -> ast.Expr:
        left = self._parse_factor()
        while self._cur.kind is TokenKind.STAR or self._cur.is_keyword(
            "mod"
        ) or self._cur.is_keyword("rem"):
            op_tok = self._advance()
            right = self._parse_factor()
            left = ast.Binary(
                op=op_tok.text, left=left, right=right, **self._loc(op_tok)
            )
        return left

    def _parse_factor(self) -> ast.Expr:
        if self._cur.is_keyword("not"):
            op_tok = self._advance()
            operand = self._parse_primary()
            return ast.Unary(op="not", operand=operand, **self._loc(op_tok))
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        cur = self._cur
        if cur.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(value=int(cur.text), **self._loc(cur))
        if cur.kind is TokenKind.CHAR:
            self._advance()
            return ast.BitLit(value=int(cur.text), **self._loc(cur))
        if cur.kind is TokenKind.STRING:
            self._advance()
            return ast.BitStringLit(bits=cur.text, **self._loc(cur))
        if cur.kind is TokenKind.IDENT:
            if cur.text == "true":
                self._advance()
                return ast.BoolLit(value=True, **self._loc(cur))
            if cur.text == "false":
                self._advance()
                return ast.BoolLit(value=False, **self._loc(cur))
            return self._parse_name()
        if cur.kind is TokenKind.LPAREN:
            self._advance()
            if self._cur.is_keyword("others"):
                self._advance()
                self._expect(TokenKind.ARROW, "'=>'")
                value = self._parse_expression()
                self._expect(TokenKind.RPAREN, "')'")
                return ast.OthersAggregate(value=value, **self._loc(cur))
            inner = self._parse_expression()
            self._expect(TokenKind.RPAREN, "')'")
            return inner
        raise self._error("expected an expression")

    def _parse_name(self) -> ast.Expr:
        start = self._expect_ident("name")
        if start.text in BUILTIN_FUNCTIONS:
            self._expect(TokenKind.LPAREN, "'('")
            args = [self._parse_expression()]
            while self._cur.kind is TokenKind.COMMA:
                self._advance()
                args.append(self._parse_expression())
            self._expect(TokenKind.RPAREN, "')'")
            return ast.Call(func=start.text, args=args, **self._loc(start))
        node: ast.Expr = ast.Name(ident=start.text, **self._loc(start))
        while True:
            if self._cur.kind is TokenKind.TICK:
                self._advance()
                attr = self._expect_ident("attribute name").text
                if attr != "event":
                    raise self._error(f"unsupported attribute '{attr}'")
                node = ast.Attribute(prefix=node, attr=attr, **self._loc(start))
                continue
            if self._cur.kind is TokenKind.LPAREN:
                self._advance()
                first = self._parse_simple_expression()
                if self._accept_keyword("downto"):
                    right = self._parse_simple_expression()
                    self._expect(TokenKind.RPAREN, "')'")
                    node = ast.Slice(
                        prefix=node, left=first, right=right,
                        direction="downto", **self._loc(start),
                    )
                elif self._accept_keyword("to"):
                    raise self._error("ascending slices are not supported")
                else:
                    self._expect(TokenKind.RPAREN, "')'")
                    node = ast.Index(
                        prefix=node, index=first, **self._loc(start)
                    )
                continue
            return node
