"""Typed, JSON-round-trippable configuration for campaign runs.

:class:`CampaignConfig` is the one object that governs the whole
mutation-sampling flow: the lab budgets that used to live in
``LabConfig``, the test-generation knobs that used to be
``MutationTestGenerator`` keyword arguments, the sampling strategy
selection, the stage pipeline, and the execution policy (parallel jobs,
on-disk result cache).  It serializes to plain JSON (``to_json`` /
``from_json`` / ``from_file``) so a campaign can be described in a
config file and replayed bit-for-bit.

The *fingerprint* — a stable hash over every field that influences the
computed numbers — keys the on-disk result cache and the grid job
store.  Execution-only fields (``circuits``, ``jobs``, ``cache_dir``,
``grid_workers``, ``cache_max_entries``) are excluded: running the
same science on more workers must hit the same cache entries and
resume from the same stored work units.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, fields

from repro.engine import DEFAULT_ENGINE, engine_names
from repro.errors import ConfigError, FaultError
from repro.fault.models import (
    DEFAULT_FAULT_MODEL,
    build_fault_model,
    fault_model_names,
)
from repro.search import DEFAULT_SEARCH, search_strategy_names

#: The four circuits of the paper's evaluation (the canonical
#: definition; ``repro.experiments.context.PAPER_CIRCUITS`` re-exports
#: it).
DEFAULT_CIRCUITS = ("b01", "b03", "c432", "c499")
#: The operators of the paper's Table 1 (canonical; re-exported as
#: ``repro.experiments.context.PAPER_OPERATORS``).
DEFAULT_OPERATORS = ("LOR", "VR", "CVR", "CR")

#: The default stage pipeline.  Stages are incremental — each processes
#: only the work earlier stages queued that it has not handled yet — so
#: the calibration pass (per-operator test sets and their NLFCE, the
#: paper's Table 1) runs to completion before ``sampling`` derives
#: calibrated weights and queues the per-strategy work, which the second
#: ``search``/``fault-validation``/``metrics`` pass then evaluates.
#: ``search`` is the strategy-driven test generation stage (the
#: ``search`` config block picks the :mod:`repro.search` strategy; the
#: default ``random`` reproduces the historical ``testgen`` stage
#: bit-for-bit, and ``testgen`` remains registered as an alias).
DEFAULT_PIPELINE = (
    "synth",
    "mutants",
    "search",
    "fault-validation",
    "metrics",
    "sampling",
    "search",
    "fault-validation",
    "metrics",
)

#: How the test-oriented sampler's operator weights are derived.
WEIGHT_SCHEMES = ("calibrated", "paper-ranks", "uniform")

#: Fields that change how a campaign *executes*, not what it computes.
#: (``grid_workers`` is pure execution width — a campaign killed on two
#: workers must resume on eight against the same cache and job-store
#: entries; ``grid``/``grid_shard`` stay in the fingerprint as
#: provenance, like ``engine``.)
EXECUTION_FIELDS = frozenset(
    {"circuits", "jobs", "cache_dir", "grid_workers", "cache_max_entries",
     "coordinator", "telemetry", "trace"}
)

_TUPLE_FIELDS = ("operators", "strategies", "sample_labels", "stages",
                 "circuits")


@dataclass
class CampaignConfig:
    """Everything a :class:`repro.campaign.Campaign` needs to run."""

    # -- seeds ---------------------------------------------------------------
    seed: int = 20050301                #: master seed (baseline, equivalence)
    testgen_seed: int = 7               #: mutation-adequate generator seed
    sampling_seed: int = 13             #: mutant sampling seed

    # -- lab budgets (the former LabConfig) ----------------------------------
    random_budget_comb: int = 2048
    random_budget_seq: int = 1024
    equivalence_budget: int = 256
    #: fault-parallel chunk width of the sequential fault simulator
    #: (lanes per chunk); results are lane-width independent, but the
    #: value is fingerprinted so cached runs record how they executed.
    fault_lanes: int = 256

    # -- simulation backend --------------------------------------------------
    #: named :mod:`repro.engine` backend every netlist/fault simulation
    #: runs on (``interp``, ``compiled``, ``vector``); in the
    #: fingerprint so the result cache never mixes backends — the
    #: backends are bit-identical by contract, recording one is about
    #: provenance, not results.
    engine: str = DEFAULT_ENGINE

    # -- fault model ---------------------------------------------------------
    #: named :mod:`repro.fault.models` fault model every fault list and
    #: fault simulation uses (``stuck-at``, ``transition``, ``seu``).
    #: Fingerprinted — different models compute different numbers — but
    #: omitted from the fingerprint payload at its default so existing
    #: stuck-at configs keep their byte-identical fingerprints (and
    #: their cache / job-store entries).
    fault_model: str = DEFAULT_FAULT_MODEL
    #: per-model knobs forwarded to the model constructor (e.g. the
    #: ``seu`` model's ``cycles``/``stride``); ``None`` = model
    #: defaults.  Fingerprinted unless ``None``, same reasoning.
    fault_model_knobs: dict | None = None

    # -- static analysis -----------------------------------------------------
    #: skip simulating faults :mod:`repro.analyze.prune` proves
    #: untestable.  Results are bit-identical with the knob off (pruned
    #: faults are reported undetected, exactly as simulating them
    #: would), but the knob is fingerprinted anyway — dropped at its
    #: default so existing fingerprints survive — to record provenance.
    prune_untestable: bool = False
    #: tag mutants in provably dead behavioural logic as
    #: possibly-equivalent statically instead of running their
    #: equivalence kill sweep (:mod:`repro.analyze.prescreen`).
    #: Fingerprinted (dropped at default): it reassigns triage
    #: categories, which are part of the payload.
    static_prescreen: bool = False

    # -- test generation knobs -----------------------------------------------
    max_vectors: int = 256
    batch_size: int = 64
    chunk_length: int = 4
    chunk_candidates: int = 6
    stall_rounds: int = 4

    # -- candidate search (the repro.search subsystem) -----------------------
    #: named :mod:`repro.search` strategy proposing candidate vectors
    #: during test generation; ``random`` is the paper's blind draw.
    search: str = DEFAULT_SEARCH
    #: total candidate-vector cap per target (None: uncapped).
    search_budget: int | None = None
    #: stale-round cap tightening ``stall_rounds`` (None: unset).
    search_stale_rounds: int | None = None
    #: per-strategy knobs forwarded to the strategy constructor.
    search_knobs: dict | None = None

    # -- calibration / sampling ----------------------------------------------
    operators: tuple[str, ...] = DEFAULT_OPERATORS
    strategies: tuple[str, ...] = ("random", "test-oriented")
    fraction: float = 0.10
    weight_scheme: str = "calibrated"
    #: Explicit operator weights; when set, ``weight_scheme`` is ignored.
    weights: dict[str, float] | None = None
    #: Extra labels mixed into the sampling RNG stream (ablation variants).
    sample_labels: tuple[str, ...] = ()

    # -- pipeline ------------------------------------------------------------
    stages: tuple[str, ...] = DEFAULT_PIPELINE

    # -- grid execution (within-circuit sharding) ----------------------------
    #: named :mod:`repro.grid` scheduler running sharded work units
    #: inside each circuit (``serial``, ``thread``, ``process``); None
    #: keeps the classic unsharded path.  Fingerprinted for provenance
    #: — all schedulers are bit-identical to serial by contract.  When
    #: set, it supersedes ``jobs`` (circuits run in the parent, units
    #: in the grid).
    grid: str | None = None
    #: items (faults / mutants) per work unit; 0 = auto (split each
    #: axis into up to 16 units).  Fingerprinted: it defines the unit
    #: boundaries the job store is keyed by.
    grid_shard: int = 0
    #: workers for the grid scheduler (execution-only: resuming on a
    #: different pool size reuses every stored unit).
    grid_workers: int = 1
    #: coordinator base URL for the ``remote`` scheduler
    #: (``http://host:port``); execution-only — *where* units run,
    #: never *what* they compute, so a campaign started against one
    #: coordinator resumes against another (or locally) unchanged.
    coordinator: str | None = None

    # -- execution (excluded from the fingerprint) ---------------------------
    circuits: tuple[str, ...] = DEFAULT_CIRCUITS
    jobs: int = 1
    cache_dir: str | None = None
    #: LRU bound on on-disk result-cache entries (mtime-ordered sweep);
    #: None = unlimited (the historical behavior).
    cache_max_entries: int | None = None
    #: collect :mod:`repro.obs` metrics during the run.  Execution-only
    #: by contract — telemetry observes the computation and never feeds
    #: it, so it stays out of the fingerprint and cached results are
    #: shared between instrumented and plain runs.
    telemetry: bool = False
    #: collect :mod:`repro.obs` trace spans during the run — including
    #: inside grid/remote workers, whose span buffers ride the result
    #: envelopes home and are stitched into the parent's trace.  Same
    #: execution-only contract as ``telemetry``.
    trace: bool = False

    def __post_init__(self) -> None:
        for name in _TUPLE_FIELDS:
            value = getattr(self, name)
            if not isinstance(value, tuple):
                setattr(self, name, tuple(value))
        if self.weights is not None:
            self.weights = {
                str(op): float(w) for op, w in self.weights.items()
            }
        if self.engine not in engine_names():
            raise ConfigError(
                f"engine must be one of {engine_names()}, "
                f"got {self.engine!r}"
            )
        if self.fault_model not in fault_model_names():
            raise ConfigError(
                f"fault_model must be one of {fault_model_names()}, "
                f"got {self.fault_model!r}"
            )
        if self.fault_model_knobs is not None:
            self.fault_model_knobs = {
                str(knob): value
                for knob, value in self.fault_model_knobs.items()
            }
        try:
            build_fault_model(self.fault_model, self.fault_model_knobs)
        except FaultError as exc:
            raise ConfigError(str(exc)) from exc
        if self.search not in search_strategy_names():
            raise ConfigError(
                f"search must be one of {search_strategy_names()}, "
                f"got {self.search!r}"
            )
        if self.search_budget is not None and self.search_budget < 1:
            raise ConfigError(
                f"search_budget must be >= 1, got {self.search_budget}"
            )
        if self.search_stale_rounds is not None and (
            self.search_stale_rounds < 1
        ):
            raise ConfigError(
                f"search_stale_rounds must be >= 1, got "
                f"{self.search_stale_rounds}"
            )
        if self.search_knobs is not None:
            self.search_knobs = {
                str(knob): value for knob, value in self.search_knobs.items()
            }
        if self.random_budget_comb < 1 or self.random_budget_seq < 1:
            raise ConfigError(
                f"random budgets must be >= 1, got comb="
                f"{self.random_budget_comb} seq={self.random_budget_seq}"
            )
        if self.fault_lanes < 1:
            raise ConfigError(
                f"fault_lanes must be >= 1, got {self.fault_lanes}"
            )
        if self.weight_scheme not in WEIGHT_SCHEMES:
            raise ConfigError(
                f"weight_scheme must be one of {WEIGHT_SCHEMES}, "
                f"got {self.weight_scheme!r}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.grid is not None:
            from repro.grid import scheduler_names

            if self.grid not in scheduler_names():
                raise ConfigError(
                    f"grid must be one of {scheduler_names()}, "
                    f"got {self.grid!r}"
                )
        if self.grid_shard < 0:
            raise ConfigError(
                f"grid_shard must be >= 0, got {self.grid_shard}"
            )
        if self.grid_workers < 1:
            raise ConfigError(
                f"grid_workers must be >= 1, got {self.grid_workers}"
            )
        if self.coordinator is not None and not isinstance(
            self.coordinator, str
        ):
            raise ConfigError(
                f"coordinator must be a URL string, got "
                f"{type(self.coordinator).__name__}"
            )
        if self.grid == "remote" and not self.coordinator:
            raise ConfigError(
                "the remote grid scheduler needs the coordinator "
                "option (--coordinator http://host:port)"
            )
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ConfigError(
                f"cache_max_entries must be >= 1, got "
                f"{self.cache_max_entries}"
            )
        self.telemetry = bool(self.telemetry)
        self.trace = bool(self.trace)
        self.prune_untestable = bool(self.prune_untestable)
        self.static_prescreen = bool(self.static_prescreen)

    # -- bridges -------------------------------------------------------------

    def lab_config(self):
        """The :class:`repro.experiments.context.LabConfig` slice."""
        from repro.experiments.context import LabConfig

        return LabConfig.from_campaign(self)

    @classmethod
    def from_lab(cls, lab_config, **overrides) -> "CampaignConfig":
        """Lift a legacy ``LabConfig`` into a campaign configuration."""
        return cls(
            seed=lab_config.seed,
            random_budget_comb=lab_config.random_budget_comb,
            random_budget_seq=lab_config.random_budget_seq,
            equivalence_budget=lab_config.equivalence_budget,
            fault_lanes=lab_config.fault_lanes,
            engine=lab_config.engine,
            fault_model=lab_config.fault_model,
            fault_model_knobs=lab_config.fault_model_knobs,
            prune_untestable=lab_config.prune_untestable,
            **overrides,
        )

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        data = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            elif isinstance(value, dict):
                value = dict(value)
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"campaign config must be an object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown campaign config keys: {', '.join(unknown)}"
            )
        return cls(**data)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignConfig":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigError(f"invalid campaign config JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "CampaignConfig":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigError(f"cannot read campaign config: {exc}") from exc
        return cls.from_json(text)

    def replace(self, **changes) -> "CampaignConfig":
        """A copy with ``changes`` applied (dataclasses.replace)."""
        return dataclasses.replace(self, **changes)

    def fingerprint(self) -> str:
        """Stable hash over every result-affecting field.

        Keys the on-disk result cache together with the circuit name and
        the cache format version.
        """
        payload = {
            key: value
            for key, value in self.to_dict().items()
            if key not in EXECUTION_FIELDS
        }
        # The fault-model fields joined the config after the cache and
        # job-store formats stabilized; dropping them at their defaults
        # keeps every pre-existing stuck-at fingerprint byte-identical.
        if payload.get("fault_model") == DEFAULT_FAULT_MODEL:
            payload.pop("fault_model", None)
        if payload.get("fault_model_knobs") is None:
            payload.pop("fault_model_knobs", None)
        # Same back-compat treatment for the static-analysis knobs.
        if payload.get("prune_untestable") is False:
            payload.pop("prune_untestable", None)
        if payload.get("static_prescreen") is False:
            payload.pop("static_prescreen", None)
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
