"""Campaign results: per-circuit and aggregate, JSON-serializable.

Everything in here is plain data — ints, floats, strings, lists — so a
:class:`CircuitResult` crosses process boundaries, lands in the on-disk
cache, and round-trips through JSON without losing anything.  The
aggregate :class:`CampaignResult` renders the paper's tables via
``table1()`` / ``table2()`` (returning the exact result types the
legacy experiment modules define, so existing reporting code keeps
working).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields

from repro.campaign.config import CampaignConfig
from repro.errors import ConfigError


@dataclass
class OperatorRow:
    """Calibration measurement for one mutation operator (Table 1)."""

    operator: str
    mutants: int
    test_length: int
    mfc_pct: float
    dfc_pct: float
    dl_pct: float
    nlfce: float
    reached_mfc: bool


@dataclass
class StrategyRow:
    """Evaluation of one sampling strategy's test data (Table 2)."""

    strategy: str
    population: int
    selected: int
    equivalents: int
    killed: int
    ms_pct: float
    test_length: int
    nlfce: float
    #: The generated validation vectors (packed stimuli) — the reusable
    #: artifact downstream consumers (e.g. ATPG preload) care about.
    vectors: list[int] = field(default_factory=list)
    #: Survivor triage: category name -> sorted surviving mutant ids
    #: (see :data:`repro.mutation.execution.TRIAGE_CATEGORIES`).
    triage: dict[str, list[int]] = field(default_factory=dict)
    #: Kill witnesses: mutant id (as a string, for JSON round-trip
    #: identity) -> ``[cycle, reason]`` — enough for ``repro replay``
    #: to re-execute and verify the kill.
    witnesses: dict[str, list] = field(default_factory=dict)


def _row_to_dict(row) -> dict:
    return {f.name: getattr(row, f.name) for f in fields(row)}


def _row_from_dict(cls, data: dict):
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigError(
            f"unknown {cls.__name__} keys: {', '.join(unknown)}"
        )
    return cls(**data)


@dataclass
class CircuitResult:
    """Everything one campaign run computed about one circuit."""

    circuit: str
    sequential: bool
    gates: int
    dffs: int
    depth: int
    faults: int
    mutants: int
    equivalents: int
    operators: list[OperatorRow] = field(default_factory=list)
    strategies: list[StrategyRow] = field(default_factory=list)
    weights: dict[str, float] | None = None

    def strategy(self, name: str) -> StrategyRow:
        for row in self.strategies:
            if row.strategy == name:
                return row
        raise KeyError(f"no strategy row {name!r} for {self.circuit}")

    def to_dict(self) -> dict:
        data = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("operators", "strategies")
        }
        data["operators"] = [_row_to_dict(row) for row in self.operators]
        data["strategies"] = [_row_to_dict(row) for row in self.strategies]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CircuitResult":
        payload = dict(data)
        operators = [
            _row_from_dict(OperatorRow, row)
            for row in payload.pop("operators", [])
        ]
        strategies = [
            _row_from_dict(StrategyRow, row)
            for row in payload.pop("strategies", [])
        ]
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"unknown CircuitResult keys: {', '.join(unknown)}"
            )
        return cls(operators=operators, strategies=strategies, **payload)


@dataclass
class CampaignResult:
    """Aggregate outcome of :meth:`repro.campaign.Campaign.run`."""

    config: CampaignConfig
    circuits: list[CircuitResult] = field(default_factory=list)
    cache_hits: tuple[str, ...] = ()

    def circuit(self, name: str) -> CircuitResult:
        for result in self.circuits:
            if result.circuit == name:
                return result
        raise KeyError(f"no result for circuit {name!r}")

    # -- paper tables --------------------------------------------------------

    def table1(self):
        """The rows as a :class:`repro.experiments.table1.Table1Result`."""
        from repro.experiments.table1 import Table1Result, Table1Row

        result = Table1Result()
        for circuit in self.circuits:
            for row in circuit.operators:
                result.rows.append(
                    Table1Row(
                        circuit=circuit.circuit,
                        operator=row.operator,
                        mutants=row.mutants,
                        test_length=row.test_length,
                        mfc_pct=row.mfc_pct,
                        dfc_pct=row.dfc_pct,
                        dl_pct=row.dl_pct,
                        nlfce=row.nlfce,
                        reached_mfc=row.reached_mfc,
                    )
                )
        return result

    def table2(self):
        """The rows as a :class:`repro.experiments.table2.Table2Result`."""
        from repro.experiments.table2 import Table2Result, Table2Row
        from repro.mutation.execution import (
            NEVER_ACTIVATED,
            POSSIBLY_EQUIVALENT,
            PROPAGATION_BLOCKED,
        )

        result = Table2Result()
        for circuit in self.circuits:
            for row in circuit.strategies:
                triage = row.triage or {}
                result.rows.append(
                    Table2Row(
                        circuit=circuit.circuit,
                        strategy=row.strategy,
                        population=row.population,
                        selected=row.selected,
                        equivalents=row.equivalents,
                        killed=row.killed,
                        ms_pct=row.ms_pct,
                        test_length=row.test_length,
                        nlfce=row.nlfce,
                        never_activated=len(triage.get(NEVER_ACTIVATED, ())),
                        propagation_blocked=len(
                            triage.get(PROPAGATION_BLOCKED, ())
                        ),
                        possibly_equivalent=len(
                            triage.get(POSSIBLY_EQUIVALENT, ())
                        ),
                    )
                )
        return result

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "circuits": [circuit.to_dict() for circuit in self.circuits],
            "cache_hits": list(self.cache_hits),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        return cls(
            config=CampaignConfig.from_dict(data["config"]),
            circuits=[
                CircuitResult.from_dict(circuit)
                for circuit in data.get("circuits", [])
            ],
            cache_hits=tuple(data.get("cache_hits", ())),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_dict(json.loads(text))
