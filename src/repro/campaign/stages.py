"""Pipeline stages: the units a campaign composes per circuit.

A stage transforms a shared :class:`CircuitContext`.  Stages are
*incremental*: each processes only the work earlier stages queued that
it has not already handled (a target without test data, a test set
without a fault simulation, ...), so a pipeline may list the same stage
more than once — the default pipeline runs
``search``/``fault-validation``/``metrics`` twice, first over the
per-operator calibration targets, then over the sampled-strategy
targets that ``sampling`` queues in between.  (``testgen`` is the
historical alias of ``search``.)

Stages register by name in :data:`STAGE_REGISTRY` via the
:func:`register_stage` decorator, so pipelines are described as tuples
of names in :class:`repro.campaign.CampaignConfig` and third parties
can plug in (or override) stages without touching the runner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fault.coverage import FaultSimResult
from repro.metrics.nlfce import NlfceReport, nlfce_from_results
from repro.mutation.generator import mutants_by_operator
from repro.mutation.mutant import Mutant
from repro.sampling.registry import build_strategy
from repro.sampling.weighted import PAPER_RANK_WEIGHTS, weights_from_nlfce
from repro.search import SearchBudget
from repro.testgen.mutation_gen import MutationTestGenerator, TestGenResult

#: Target kinds.
OPERATOR_TARGET = "operator"
STRATEGY_TARGET = "strategy"


@dataclass
class Target:
    """One unit of evaluation work: a labelled mutant subset.

    ``operator:*`` targets carry one operator's whole stratum (the
    calibration / Table-1 measurements); ``strategy:*`` targets carry a
    sampled subset (the Table-2 measurements).  Downstream stages fill
    the artifact slots in order: test data, fault simulation, kills,
    NLFCE report.
    """

    label: str
    kind: str
    name: str
    mutants: list[Mutant]
    testgen: TestGenResult | None = None
    faultsim: FaultSimResult | None = None
    killed: set[int] | None = None
    #: mid -> (first differing cycle or None, kill reason) for every
    #: killed mutant: the replayable kill witness.
    witnesses: dict[int, tuple[int | None, str]] | None = None
    #: triage category -> sorted surviving mids (see
    #: :data:`repro.mutation.execution.TRIAGE_CATEGORIES`).
    triage: dict[str, list[int]] | None = None
    report: NlfceReport | None = None


class CircuitContext:
    """Mutable per-circuit state threaded through the stages.

    ``grid`` (a :class:`repro.grid.GridExecutor`, or ``None``) is the
    within-circuit execution policy: when set, the heavy axis-parallel
    operations below dispatch as sharded work units; when unset they
    run the classic in-process path.  Both paths are bit-identical by
    contract, so stages call the helpers unconditionally.
    """

    def __init__(self, circuit: str, config, grid=None):
        self.circuit = circuit
        self.config = config
        self.grid = grid                      # GridExecutor | None
        self.lab = None                       # CircuitLab, set by "synth"
        self.population: list[Mutant] | None = None
        self.groups: dict[str, list[Mutant]] | None = None
        self.targets: dict[str, Target] = {}
        self.weights: dict[str, float] | None = None
        self.equivalence = None               # EquivalenceAnalysis | None

    def require_lab(self):
        if self.lab is None:
            raise ConfigError(
                f"stage needs the 'synth' stage to have run for "
                f"{self.circuit!r} first"
            )
        return self.lab

    # -- grid-dispatchable operations ----------------------------------------

    def fault_sim(self, vectors: list[int], key: str) -> FaultSimResult:
        """Stuck-at validation of ``vectors`` (sharded under a grid)."""
        lab = self.require_lab()
        if self.grid is not None:
            return self.grid.fault_sim(lab, vectors, key)
        return lab.fault_sim(vectors)

    def killed_mids(self, mutants, vectors: list[int], key: str) -> set[int]:
        """Kill analysis over ``mutants`` (sharded under a grid)."""
        return self.kill_analysis(mutants, vectors, key)[0]

    def kill_analysis(
        self, mutants, vectors: list[int], key: str
    ) -> tuple[set[int], dict[int, tuple[int | None, str]]]:
        """Kill analysis with per-mutant witnesses (sharded under a grid).

        Returns the killed mids and, for each of them, the replayable
        witness ``(first differing cycle or None, reason)``.
        """
        lab = self.require_lab()
        if self.grid is not None:
            return self.grid.kill_analysis(lab, mutants, vectors, key)
        records = lab.engine.run_all(mutants, vectors)
        killed = {r.mid for r in records if r.killed}
        witnesses = {
            r.mid: (r.cycle, r.reason) for r in records if r.killed
        }
        return killed, witnesses

    def random_baseline(self) -> FaultSimResult:
        """The circuit's random fault-coverage baseline.

        Under a grid the (heavy) fault simulation runs sharded and
        primes the lab's lazy slot, so every later consumer shares it.
        """
        lab = self.require_lab()
        if self.grid is not None and not lab.has_random_baseline:
            lab.prime_random_baseline(
                self.grid.fault_sim(lab, lab.random_vectors, "baseline")
            )
        return lab.random_baseline

    def equivalence_analysis(self):
        """The budgeted equivalence sweep (sharded under a grid)."""
        lab = self.require_lab()
        if self.grid is not None and not lab.has_equivalence:
            lab.prime_equivalence(self.grid.equivalence(lab))
        return lab.equivalence

    def operator_targets(self) -> list[Target]:
        return [
            t for t in self.targets.values() if t.kind == OPERATOR_TARGET
        ]

    def strategy_targets(self) -> list[Target]:
        return [
            t for t in self.targets.values() if t.kind == STRATEGY_TARGET
        ]


# -- registry ----------------------------------------------------------------

class Stage:
    """A named, idempotent pipeline step over a :class:`CircuitContext`."""

    name: str = ""

    def run(self, ctx: CircuitContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


#: name -> stage class.
STAGE_REGISTRY: dict[str, type[Stage]] = {}


def register_stage(cls: type[Stage]) -> type[Stage]:
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    if not cls.name:
        raise ConfigError(
            f"{cls.__name__} needs a non-empty 'name' to be registered"
        )
    STAGE_REGISTRY[cls.name] = cls
    return cls


def get_stage(name: str) -> Stage:
    """Instantiate the registered stage called ``name``."""
    try:
        cls = STAGE_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(STAGE_REGISTRY))
        raise ConfigError(
            f"unknown pipeline stage {name!r} (registered: {known})"
        ) from None
    return cls()


def stage_names() -> tuple[str, ...]:
    return tuple(sorted(STAGE_REGISTRY))


# -- the built-in stages -----------------------------------------------------

@register_stage
class SynthStage(Stage):
    """Elaborate, synthesize and fault-collapse the circuit (the lab)."""

    name = "synth"

    def run(self, ctx: CircuitContext) -> None:
        if ctx.lab is not None:
            return
        from repro.experiments.context import get_lab

        ctx.lab = get_lab(ctx.circuit, ctx.config.lab_config())


@register_stage
class MutantStage(Stage):
    """Generate the mutant population and queue the calibration targets."""

    name = "mutants"

    def run(self, ctx: CircuitContext) -> None:
        lab = ctx.require_lab()
        if ctx.population is None:
            ctx.population = lab.all_mutants
            ctx.groups = mutants_by_operator(ctx.population)
        for operator in ctx.config.operators:
            label = f"operator:{operator}"
            group = (ctx.groups or {}).get(operator)
            if label in ctx.targets or not group:
                continue  # already queued, or operator does not apply
            ctx.targets[label] = Target(
                label, OPERATOR_TARGET, operator, group
            )


def resolve_weights(ctx: CircuitContext) -> dict[str, float]:
    """Operator weights for the test-oriented sampler.

    Explicit ``config.weights`` win; otherwise the scheme decides:
    ``calibrated`` normalizes the per-operator NLFCE measured on this
    circuit's operator targets (falling back to the paper's rank
    ordering when nothing was measured, and filling unmeasured
    operators with their rank scaled into [0, 1]); ``paper-ranks`` and
    ``uniform`` use fixed tables.
    """
    config = ctx.config
    if config.weights is not None:
        return dict(config.weights)
    if config.weight_scheme == "paper-ranks":
        return dict(PAPER_RANK_WEIGHTS)
    if config.weight_scheme == "uniform":
        return {op: 1.0 for op in PAPER_RANK_WEIGHTS}
    # "calibrated" (__post_init__ rejects anything else)
    measured = {
        t.name: t.report.nlfce
        for t in ctx.operator_targets()
        if t.report is not None
    }
    weights = (
        weights_from_nlfce(measured) if measured else dict(PAPER_RANK_WEIGHTS)
    )
    for op, rank in PAPER_RANK_WEIGHTS.items():
        weights.setdefault(op, rank / 4.0)
    return weights


@register_stage
class SamplingStage(Stage):
    """Sample the population once per configured strategy."""

    name = "sampling"

    def run(self, ctx: CircuitContext) -> None:
        config = ctx.config
        if not config.strategies:
            return
        ctx.require_lab()
        if ctx.population is None:
            raise ConfigError(
                "the 'sampling' stage needs 'mutants' to have run"
            )
        if ctx.weights is None:
            ctx.weights = resolve_weights(ctx)
        for name in config.strategies:
            label = f"strategy:{name}"
            if label in ctx.targets:
                continue
            strategy = build_strategy(name, config.fraction, ctx.weights)
            sample = strategy.sample(
                ctx.population, config.sampling_seed, ctx.circuit,
                *config.sample_labels,
            )
            ctx.targets[label] = Target(label, STRATEGY_TARGET, name, sample)


@register_stage
class SearchStage(Stage):
    """Strategy-driven mutation-adequate test generation.

    Candidate vectors for every pending target come from the
    :mod:`repro.search` strategy the config's ``search`` block selects;
    the default ``random`` strategy reproduces the historical blind
    pseudo-random generation bit-for-bit.
    """

    name = "search"

    def run(self, ctx: CircuitContext) -> None:
        lab = ctx.require_lab()
        config = ctx.config
        budget = None
        if config.search_budget or config.search_stale_rounds:
            budget = SearchBudget(
                max_candidates=config.search_budget,
                max_stale_rounds=config.search_stale_rounds,
            )
        for target in ctx.targets.values():
            if target.testgen is not None:
                continue
            generator = MutationTestGenerator(
                lab.design,
                seed=config.testgen_seed,
                engine=lab.engine,
                batch_size=config.batch_size,
                chunk_length=config.chunk_length,
                chunk_candidates=config.chunk_candidates,
                stall_rounds=config.stall_rounds,
                max_vectors=config.max_vectors,
                strategy=config.search,
                search_budget=budget,
                search_knobs=config.search_knobs,
            )
            target.testgen = generator.generate(target.mutants)


@register_stage
class TestGenStage(SearchStage):
    """Backwards-compatible alias: ``testgen`` runs the search stage.

    Kept so pre-search pipelines (config files listing ``testgen``)
    keep working; with the default ``search="random"`` block the
    behaviour is identical to the historical stage.
    """

    name = "testgen"


@register_stage
class FaultValidationStage(Stage):
    """Fault validation: fault-simulate test sets, score strategies.

    For every target with test data, fault-simulates the vectors on the
    synthesized netlist under the configured fault model.  For strategy
    targets it additionally runs the whole-population kill analysis the
    mutation score needs (known equivalents excluded from targets and
    denominator alike), keeps each kill's witness for replay, and
    triages the survivors into ``never-activated`` /
    ``propagation-blocked`` / ``possibly-equivalent``.
    """

    name = "fault-validation"

    def run(self, ctx: CircuitContext) -> None:
        ctx.require_lab()
        for target in ctx.targets.values():
            if target.testgen is None:
                continue
            vectors = target.testgen.vectors
            if target.faultsim is None and vectors:
                target.faultsim = ctx.fault_sim(vectors, target.label)
            if target.kind != STRATEGY_TARGET or target.killed is not None:
                continue
            if ctx.equivalence is None:
                ctx.equivalence = ctx.equivalence_analysis()
            if vectors:
                candidates = [
                    m for m in (ctx.population or [])
                    if m.mid not in ctx.equivalence.equivalent_mids
                ]
                target.killed, target.witnesses = ctx.kill_analysis(
                    candidates, vectors, target.label
                )
            else:
                target.killed, target.witnesses = set(), {}
            target.triage = self._triage(ctx, target, vectors)

    @staticmethod
    def _triage(ctx: CircuitContext, target: Target,
                vectors: list[int]) -> dict[str, list[int]]:
        """Classify every survivor of one strategy's test set.

        The state-trace sweep is cheap relative to the kill analysis
        (one lockstep run per survivor, early-exited at the first
        internal difference) and deterministic, so it runs in-process
        even under a grid.
        """
        from repro.mutation.execution import (
            NEVER_ACTIVATED,
            POSSIBLY_EQUIVALENT,
            TRIAGE_CATEGORIES,
        )

        lab = ctx.require_lab()
        killed = target.killed or set()
        equivalent = ctx.equivalence.equivalent_mids
        prescreened: dict[int, str] = {}
        if ctx.config.static_prescreen:
            # Static pre-screen: survivors hosted in provably dead
            # behavioural logic are possibly-equivalent without a
            # lockstep sweep.  Kill status still wins — dead-logic
            # mutants can die of run-time errors.
            from repro.analyze.prescreen import prescreen_mutants

            prescreened = prescreen_mutants(
                lab.design, ctx.population or []
            )
        triage: dict[str, list[int]] = {
            category: [] for category in TRIAGE_CATEGORIES
        }
        pending = []
        for mutant in ctx.population or []:
            if mutant.mid in killed:
                continue
            if mutant.mid in equivalent or mutant.mid in prescreened:
                triage[POSSIBLY_EQUIVALENT].append(mutant.mid)
            elif not vectors:
                triage[NEVER_ACTIVATED].append(mutant.mid)
            else:
                pending.append(mutant)
        for mid, category in lab.engine.triage_survivors(
            pending, vectors
        ).items():
            triage[category].append(mid)
        for mids in triage.values():
            mids.sort()
        return triage


@register_stage
class MetricsStage(Stage):
    """NLFCE against the circuit's pseudo-random baseline."""

    name = "metrics"

    def run(self, ctx: CircuitContext) -> None:
        ctx.require_lab()
        for target in ctx.targets.values():
            if target.faultsim is None or target.report is not None:
                continue
            target.report = nlfce_from_results(
                target.faultsim, ctx.random_baseline()
            )
