"""Event hooks for campaign progress reporting.

The pipeline never prints; it reports through a :class:`CampaignEvents`
instance instead, so front ends decide how (and whether) to render
progress.  Subclass and override the hooks you care about — the base
class is all no-ops, so implementations stay forward-compatible when
hooks are added.

Hook timing:

* ``on_campaign_start`` / ``on_campaign_end`` wrap the whole run;
* ``on_circuit_start`` / ``on_circuit_done`` wrap one circuit
  (``on_circuit_done`` also fires for cache hits, with ``cached=True``);
* ``on_stage_start`` / ``on_stage_end`` wrap one pipeline stage;
* ``on_unit_start`` / ``on_unit_done`` wrap one grid work unit
  (``on_unit_done`` fires with ``cached=True`` for units resumed from
  the job store);
* ``on_unit_result`` hands over each unit's raw result dict just
  before its ``on_unit_done`` — the hook live progress aggregation
  (:mod:`repro.obs.progress`) listens on.

Visibility under parallelism: with per-circuit farming (``jobs > 1``
and no grid) the stages run in worker processes, so only the
circuit-level hooks are observable from the parent.  With a grid
scheduler (``config.grid``) the circuits — and their stage hooks — run
in the parent, and unit-level results are streamed back from the
workers as they complete, so ``on_unit_done`` fires in the parent for
every unit regardless of which process computed it (pooled backends
fire ``on_unit_start`` at submission time).

Hooks must not break the science: the runner wraps the events object
in :func:`guard_events`, which catches an :class:`Exception` escaping
a hook, reports it once per hook on stderr, and suppresses that hook
for the rest of the run.  ``KeyboardInterrupt`` (and other
``BaseException``) still propagates — aborting from a hook stays
possible on purpose.
"""

from __future__ import annotations

import sys

from ..obs import metrics as _metrics


class CampaignEvents:
    """No-op base class for campaign progress hooks."""

    def on_campaign_start(self, circuits: tuple[str, ...], config) -> None:
        """The campaign is about to run ``circuits``."""

    def on_campaign_end(self, result, seconds: float) -> None:
        """The campaign finished; ``result`` is the CampaignResult."""

    def on_circuit_start(self, circuit: str) -> None:
        """Work on ``circuit`` is starting."""

    def on_circuit_done(
        self, circuit: str, result, seconds: float, cached: bool = False
    ) -> None:
        """``circuit`` finished; ``result`` is its CircuitResult."""

    def on_stage_start(self, circuit: str, stage: str) -> None:
        """Stage ``stage`` is starting for ``circuit``."""

    def on_stage_end(self, circuit: str, stage: str, seconds: float) -> None:
        """Stage ``stage`` finished for ``circuit``."""

    def on_unit_start(self, unit) -> None:
        """Grid work ``unit`` (a :class:`repro.grid.WorkUnit`) was
        scheduled (pooled backends report submission, not pickup)."""

    def on_unit_done(self, unit, seconds: float, cached: bool = False) -> None:
        """Grid work ``unit`` finished (``cached=True``: resumed from
        the job store without recomputation)."""

    def on_unit_result(self, unit, result: dict) -> None:
        """Grid work ``unit``'s raw result dict, right before
        ``on_unit_done`` (cached units included).  Consumers must
        treat ``result`` as read-only — it is the same object the
        pipeline folds back in."""


#: Hook names :class:`GuardedEvents` protects (everything above).
_HOOKS = (
    "on_campaign_start",
    "on_campaign_end",
    "on_circuit_start",
    "on_circuit_done",
    "on_stage_start",
    "on_stage_end",
    "on_unit_start",
    "on_unit_done",
    "on_unit_result",
)


class GuardedEvents(CampaignEvents):
    """Exception barrier around another events instance.

    A raising hook used to abort the whole campaign mid-run; wrapped,
    the first :class:`Exception` a hook raises is reported on stderr
    and that hook is suppressed from then on (one warning per hook,
    not one per event).  ``BaseException`` — ``KeyboardInterrupt`` in
    particular — passes through untouched.
    """

    def __init__(self, inner: CampaignEvents, stream=None):
        self._inner = inner
        self._stream = stream if stream is not None else sys.stderr
        self._broken: set[str] = set()

    @property
    def inner(self) -> CampaignEvents:
        return self._inner

    def _call(self, hook: str, *args, **kwargs) -> None:
        if hook in self._broken:
            m = _metrics.active()
            if m.enabled:
                m.counter("events.suppressed_firings")
            return
        try:
            getattr(self._inner, hook)(*args, **kwargs)
        except Exception as exc:
            self._broken.add(hook)
            m = _metrics.active()
            if m.enabled:
                m.counter("events.hook_errors")
                m.counter(f"events.hook_errors.{hook}")
            print(
                f"campaign: events hook {hook} raised "
                f"{type(exc).__name__}: {exc} — suppressing this hook "
                f"for the rest of the run",
                file=self._stream,
                flush=True,
            )


def _guarded_hook(hook: str):
    def method(self, *args, **kwargs):
        self._call(hook, *args, **kwargs)

    method.__name__ = hook
    method.__doc__ = f"Guarded delegation of ``{hook}``."
    return method


for _hook in _HOOKS:
    setattr(GuardedEvents, _hook, _guarded_hook(_hook))
del _hook


def guard_events(events: CampaignEvents | None) -> GuardedEvents:
    """Wrap ``events`` in a :class:`GuardedEvents` (idempotent)."""
    if isinstance(events, GuardedEvents):
        return events
    return GuardedEvents(events if events is not None else CampaignEvents())


#: Bump when the envelope shapes below change incompatibly.
ENVELOPE_VERSION = 1


def unit_envelope(unit) -> dict:
    """The JSON-able identity of a grid work unit (no spec payload)."""
    return {
        "uid": unit.uid,
        "circuit": unit.circuit,
        "stage": unit.stage,
        "key": unit.key,
        "index": unit.index,
        "total": unit.total,
    }


class RecordingEvents(CampaignEvents):
    """Serializes every hook call into a JSON-able envelope.

    Each hook becomes one plain-dict envelope — ``{"event": <kind>,
    ...}`` with only JSON-native values — handed to the ``emit``
    callable.  This is the wire format of the campaign service's
    event stream (:mod:`repro.net`): the coordinator appends a
    monotonic ``seq`` to each envelope as it lands in the per-campaign
    buffer, and polling clients resume from any sequence number.

    Envelopes deliberately carry identities and timings, not results:
    the final :class:`CampaignResult` travels once, at the end,
    through its own channel.
    """

    def __init__(self, emit):
        self._emit = emit

    def on_campaign_start(self, circuits, config) -> None:
        self._emit({
            "event": "campaign-start",
            "circuits": list(circuits),
            "fingerprint": config.fingerprint(),
        })

    def on_campaign_end(self, result, seconds) -> None:
        self._emit({
            "event": "campaign-end",
            "circuits": len(result.circuits),
            "cache_hits": list(result.cache_hits),
            "seconds": seconds,
        })

    def on_circuit_start(self, circuit) -> None:
        self._emit({"event": "circuit-start", "circuit": circuit})

    def on_circuit_done(self, circuit, result, seconds, cached=False) -> None:
        self._emit({
            "event": "circuit-done",
            "circuit": circuit,
            "seconds": seconds,
            "cached": bool(cached),
        })

    def on_stage_start(self, circuit, stage) -> None:
        self._emit({
            "event": "stage-start", "circuit": circuit, "stage": stage,
        })

    def on_stage_end(self, circuit, stage, seconds) -> None:
        self._emit({
            "event": "stage-end",
            "circuit": circuit,
            "stage": stage,
            "seconds": seconds,
        })

    def on_unit_start(self, unit) -> None:
        self._emit({"event": "unit-start", "unit": unit_envelope(unit)})

    def on_unit_done(self, unit, seconds, cached=False) -> None:
        self._emit({
            "event": "unit-done",
            "unit": unit_envelope(unit),
            "seconds": seconds,
            "cached": bool(cached),
        })

    def on_unit_result(self, unit, result) -> None:
        # Counts only — summarize_result never copies payload data
        # into the stream, keeping the envelope contract above.
        from ..obs.progress import summarize_result

        self._emit({
            "event": "unit-result",
            "unit": unit_envelope(unit),
            "summary": summarize_result(unit.kind, result),
        })


class TracingEvents(CampaignEvents):
    """Projects the hook stream onto a :class:`repro.obs.Tracer`.

    Span layout: the campaign is one duration span on tid
    ``"campaign"``; each circuit gets its own tid
    (``"circuit:<name>"``) carrying the circuit span and its nested
    stage spans, so interleaved circuit completion under ``jobs > 1``
    cannot break B/E nesting.  Work units become *async* spans keyed
    by ``unit.uid`` because pooled schedulers overlap them freely.
    Done-events that never had a start (cache hits, store-resumed
    units) are recorded as instants instead of unbalanced ends.
    """

    def __init__(self, tracer=None):
        from ..obs import trace as _trace

        self._tracer = tracer if tracer is not None else _trace.active()
        self._open_circuits: set[str] = set()
        self._open_stages: set[tuple[str, str]] = set()
        self._open_units: set[str] = set()

    @staticmethod
    def _circuit_tid(circuit: str) -> str:
        return f"circuit:{circuit}"

    def on_campaign_start(self, circuits, config) -> None:
        self._tracer.begin(
            "campaign", "campaign",
            {"circuits": list(circuits),
             "fingerprint": config.fingerprint()},
        )

    def on_campaign_end(self, result, seconds) -> None:
        self._tracer.end("campaign", "campaign")

    def on_circuit_start(self, circuit) -> None:
        self._open_circuits.add(circuit)
        self._tracer.begin(f"circuit:{circuit}", self._circuit_tid(circuit))

    def on_circuit_done(self, circuit, result, seconds, cached=False) -> None:
        if circuit in self._open_circuits:
            self._open_circuits.discard(circuit)
            self._tracer.end(f"circuit:{circuit}", self._circuit_tid(circuit))
        else:
            self._tracer.instant(
                f"circuit:{circuit} (cached)" if cached
                else f"circuit:{circuit}",
                self._circuit_tid(circuit),
            )

    def on_stage_start(self, circuit, stage) -> None:
        self._open_stages.add((circuit, stage))
        self._tracer.begin(f"stage:{stage}", self._circuit_tid(circuit),
                           {"circuit": circuit})

    def on_stage_end(self, circuit, stage, seconds) -> None:
        if (circuit, stage) in self._open_stages:
            self._open_stages.discard((circuit, stage))
            self._tracer.end(f"stage:{stage}", self._circuit_tid(circuit))

    def on_unit_start(self, unit) -> None:
        self._open_units.add(unit.uid)
        self._tracer.async_begin(
            f"unit:{unit.stage}", unit.uid, args=unit_envelope(unit))

    def on_unit_done(self, unit, seconds, cached=False) -> None:
        if unit.uid in self._open_units:
            self._open_units.discard(unit.uid)
            self._tracer.async_end(f"unit:{unit.stage}", unit.uid)
        else:
            self._tracer.instant(
                f"unit:{unit.stage} (cached)" if cached
                else f"unit:{unit.stage}",
                "unit",
                args=unit_envelope(unit),
            )


class TeeEvents(CampaignEvents):
    """Fans every hook out to several events objects, in order."""

    def __init__(self, *sinks: CampaignEvents):
        self._sinks = tuple(sinks)

    @property
    def sinks(self) -> tuple[CampaignEvents, ...]:
        return self._sinks

    def _fanout(self, hook: str, *args, **kwargs) -> None:
        for sink in self._sinks:
            getattr(sink, hook)(*args, **kwargs)


def _tee_hook(hook: str):
    def method(self, *args, **kwargs):
        self._fanout(hook, *args, **kwargs)

    method.__name__ = hook
    method.__doc__ = f"Fan-out delegation of ``{hook}``."
    return method


for _hook in _HOOKS:
    setattr(TeeEvents, _hook, _tee_hook(_hook))
del _hook


class ProgressEvents(CampaignEvents):
    """Line-per-event progress on a stream (default: stderr)."""

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stderr

    def _emit(self, message: str) -> None:
        print(message, file=self._stream, flush=True)

    def on_campaign_start(self, circuits, config) -> None:
        grid = (
            f", grid={config.grid}x{config.grid_workers}"
            if config.grid else ""
        )
        self._emit(
            f"campaign: {len(circuits)} circuit(s) "
            f"[{', '.join(circuits)}], jobs={config.jobs}{grid}"
        )

    def on_campaign_end(self, result, seconds) -> None:
        self._emit(f"campaign: done in {seconds:.1f}s")

    def on_circuit_start(self, circuit) -> None:
        self._emit(f"[{circuit}] start")

    def on_circuit_done(self, circuit, result, seconds, cached=False) -> None:
        suffix = " (cached)" if cached else f" in {seconds:.1f}s"
        self._emit(f"[{circuit}] done{suffix}")

    def on_stage_end(self, circuit, stage, seconds) -> None:
        self._emit(f"[{circuit}] {stage}: {seconds:.2f}s")

    def on_unit_done(self, unit, seconds, cached=False) -> None:
        suffix = " (cached)" if cached else f" in {seconds:.2f}s"
        self._emit(
            f"[{unit.circuit}] {unit.stage} {unit.key} "
            f"unit {unit.index + 1}/{unit.total}{suffix}"
        )
