"""Event hooks for campaign progress reporting.

The pipeline never prints; it reports through a :class:`CampaignEvents`
instance instead, so front ends decide how (and whether) to render
progress.  Subclass and override the hooks you care about — the base
class is all no-ops, so implementations stay forward-compatible when
hooks are added.

Hook timing:

* ``on_campaign_start`` / ``on_campaign_end`` wrap the whole run;
* ``on_circuit_start`` / ``on_circuit_done`` wrap one circuit
  (``on_circuit_done`` also fires for cache hits, with ``cached=True``);
* ``on_stage_start`` / ``on_stage_end`` wrap one pipeline stage.
  Stage hooks fire only for circuits executed in-process: with
  ``jobs > 1`` the stages run in worker processes and only the
  circuit-level hooks are observable from the parent.
"""

from __future__ import annotations

import sys


class CampaignEvents:
    """No-op base class for campaign progress hooks."""

    def on_campaign_start(self, circuits: tuple[str, ...], config) -> None:
        """The campaign is about to run ``circuits``."""

    def on_campaign_end(self, result, seconds: float) -> None:
        """The campaign finished; ``result`` is the CampaignResult."""

    def on_circuit_start(self, circuit: str) -> None:
        """Work on ``circuit`` is starting."""

    def on_circuit_done(
        self, circuit: str, result, seconds: float, cached: bool = False
    ) -> None:
        """``circuit`` finished; ``result`` is its CircuitResult."""

    def on_stage_start(self, circuit: str, stage: str) -> None:
        """Stage ``stage`` is starting for ``circuit``."""

    def on_stage_end(self, circuit: str, stage: str, seconds: float) -> None:
        """Stage ``stage`` finished for ``circuit``."""


class ProgressEvents(CampaignEvents):
    """Line-per-event progress on a stream (default: stderr)."""

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stderr

    def _emit(self, message: str) -> None:
        print(message, file=self._stream, flush=True)

    def on_campaign_start(self, circuits, config) -> None:
        self._emit(
            f"campaign: {len(circuits)} circuit(s) "
            f"[{', '.join(circuits)}], jobs={config.jobs}"
        )

    def on_campaign_end(self, result, seconds) -> None:
        self._emit(f"campaign: done in {seconds:.1f}s")

    def on_circuit_start(self, circuit) -> None:
        self._emit(f"[{circuit}] start")

    def on_circuit_done(self, circuit, result, seconds, cached=False) -> None:
        suffix = " (cached)" if cached else f" in {seconds:.1f}s"
        self._emit(f"[{circuit}] done{suffix}")

    def on_stage_end(self, circuit, stage, seconds) -> None:
        self._emit(f"[{circuit}] {stage}: {seconds:.2f}s")
