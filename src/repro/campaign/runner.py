"""The campaign runner: serial or process-parallel over circuits.

``Campaign(config).run(circuits)`` is the single entry point for the
whole mutation-sampling flow.  Per circuit it executes the configured
stage pipeline over a fresh :class:`CircuitContext` and condenses the
context into a plain-data :class:`CircuitResult`.

Circuits are independent — every random stream is derived from
``(seed, labels...)`` with the circuit name in the labels — so the
parallel path (``config.jobs > 1``) farms whole circuits out to a
:class:`~concurrent.futures.ProcessPoolExecutor` and is bit-for-bit
identical to the serial path.  Results cross the process boundary as
dicts (the same payload the on-disk cache stores).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed

from repro.campaign.cache import ResultCache
from repro.campaign.config import CampaignConfig
from repro.campaign.events import CampaignEvents
from repro.campaign.result import (
    CampaignResult,
    CircuitResult,
    OperatorRow,
    StrategyRow,
)
from repro.campaign.stages import (
    OPERATOR_TARGET,
    STRATEGY_TARGET,
    CircuitContext,
    get_stage,
)
from repro.mutation.score import MutationScore

_NULL_EVENTS = CampaignEvents()


def run_circuit(
    circuit: str,
    config: CampaignConfig,
    events: CampaignEvents | None = None,
) -> CircuitResult:
    """Run the configured stage pipeline for one circuit."""
    events = events or _NULL_EVENTS
    ctx = CircuitContext(circuit, config)
    for name in config.stages:
        stage = get_stage(name)
        events.on_stage_start(circuit, name)
        started = time.monotonic()
        stage.run(ctx)
        events.on_stage_end(circuit, name, time.monotonic() - started)
    return _build_result(ctx)


def _build_result(ctx: CircuitContext) -> CircuitResult:
    lab = ctx.lab
    stats = lab.netlist.stats() if lab is not None else {}
    population = len(ctx.population) if ctx.population is not None else 0
    equivalents = ctx.equivalence.count if ctx.equivalence is not None else 0

    operators = []
    for target in ctx.targets.values():
        if target.kind != OPERATOR_TARGET or target.report is None:
            continue
        report = target.report
        operators.append(
            OperatorRow(
                operator=target.name,
                mutants=len(target.mutants),
                test_length=report.mutation_length,
                mfc_pct=100.0 * report.mfc,
                dfc_pct=report.delta_fc_pct,
                dl_pct=report.delta_l_pct,
                nlfce=report.nlfce,
                reached_mfc=report.reached_mfc,
            )
        )

    strategies = []
    for target in ctx.targets.values():
        if target.kind != STRATEGY_TARGET:
            continue
        vectors = list(target.testgen.vectors) if target.testgen else []
        if target.killed is not None:
            killed = len(target.killed)
        elif target.testgen is not None:
            # Whole-population scoring was not run (no fault-validation
            # stage): fall back to the kills within the sample itself.
            killed = len(target.testgen.killed_mids)
        else:
            killed = 0
        score = MutationScore(
            total=population, killed=killed, equivalents=equivalents
        )
        strategies.append(
            StrategyRow(
                strategy=target.name,
                population=population,
                selected=len(target.mutants),
                equivalents=equivalents,
                killed=killed,
                ms_pct=score.percent,
                test_length=(
                    target.report.mutation_length if target.report else 0
                ),
                nlfce=target.report.nlfce if target.report else 0.0,
                vectors=vectors,
            )
        )

    return CircuitResult(
        circuit=ctx.circuit,
        sequential=lab.design.is_sequential if lab is not None else False,
        gates=stats.get("gates", 0),
        dffs=stats.get("dffs", 0),
        depth=stats.get("depth", 0),
        faults=len(lab.faults) if lab is not None else 0,
        mutants=population,
        equivalents=equivalents,
        operators=operators,
        strategies=strategies,
        weights=ctx.weights,
    )


def _circuit_payload(circuit: str, config_data: dict) -> dict:
    """Worker entry point: rebuild the config, return a plain dict.

    The circuit's own runtime is measured in the worker so the parent
    can report it (wall clock since pool start would be wrong for every
    completion after the first).
    """
    config = CampaignConfig.from_dict(config_data)
    started = time.monotonic()
    result = run_circuit(circuit, config)
    return {
        "seconds": time.monotonic() - started,
        "result": result.to_dict(),
    }


class Campaign:
    """One composable, parallel, resumable mutation-sampling run."""

    def __init__(
        self,
        config: CampaignConfig | None = None,
        events: CampaignEvents | None = None,
    ):
        self.config = config or CampaignConfig()
        self.events = events or _NULL_EVENTS

    def run(self, circuits=None) -> CampaignResult:
        """Run the pipeline over ``circuits`` (default: the config's).

        Cached circuits are loaded, the rest computed — serially, or on
        a process pool when ``config.jobs > 1`` — and every freshly
        computed result is written back to the cache.
        """
        config = self.config
        events = self.events
        names = tuple(circuits) if circuits is not None else config.circuits
        events.on_campaign_start(names, config)
        started = time.monotonic()

        cache = (
            ResultCache(config.cache_dir, config) if config.cache_dir else None
        )
        results: dict[str, CircuitResult] = {}
        hits: list[str] = []
        pending: list[str] = []
        for name in names:
            if name in results or name in pending:
                continue
            cached = cache.load(name) if cache is not None else None
            if cached is not None:
                results[name] = cached
                hits.append(name)
                events.on_circuit_done(name, cached, 0.0, cached=True)
            else:
                pending.append(name)

        if config.jobs > 1 and len(pending) > 1:
            self._run_parallel(pending, results)
        else:
            for name in pending:
                events.on_circuit_start(name)
                circuit_started = time.monotonic()
                results[name] = run_circuit(name, config, events)
                events.on_circuit_done(
                    name, results[name],
                    time.monotonic() - circuit_started,
                )

        if cache is not None:
            for name in pending:
                cache.store(results[name])

        result = CampaignResult(
            config=config,
            circuits=[results[name] for name in dict.fromkeys(names)],
            cache_hits=tuple(hits),
        )
        events.on_campaign_end(result, time.monotonic() - started)
        return result

    def _run_parallel(
        self, pending: list[str], results: dict[str, CircuitResult]
    ) -> None:
        config, events = self.config, self.events
        config_data = config.to_dict()
        workers = min(config.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_circuit_payload, name, config_data): name
                for name in pending
            }
            for name in pending:
                events.on_circuit_start(name)
            for future in as_completed(futures):
                name = futures[future]
                payload = future.result()
                results[name] = CircuitResult.from_dict(payload["result"])
                events.on_circuit_done(
                    name, results[name], payload["seconds"]
                )
