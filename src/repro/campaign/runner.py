"""The campaign runner: serial, process-parallel, or grid-sharded.

``Campaign(config).run(circuits)`` is the single entry point for the
whole mutation-sampling flow.  Per circuit it executes the configured
stage pipeline over a fresh :class:`CircuitContext` and condenses the
context into a plain-data :class:`CircuitResult`.

Two parallelism axes, both bit-for-bit identical to serial:

* **Per-circuit** (``config.jobs > 1``): circuits are independent —
  every random stream is derived from ``(seed, labels...)`` with the
  circuit name in the labels — so whole circuits are farmed out to a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Results cross the
  process boundary as dicts (the same payload the on-disk cache
  stores).  Speedup caps at the circuit count.
* **Within-circuit** (``config.grid``): the heavy axis-parallel
  operations (fault validation, kill analysis, the equivalence sweep)
  are sharded into :mod:`repro.grid` work units and executed on the
  configured scheduler, with every finished unit persisted to the job
  store when a cache directory is set.  ``run(..., resume=True)``
  reuses those stored units, so a killed campaign picks up where it
  stopped.  When both axes are requested, the grid wins: circuits run
  in the parent (nesting process pools would oversubscribe) and units
  fan out instead.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager

from repro.campaign.cache import ResultCache
from repro.campaign.config import CampaignConfig
from repro.campaign.events import CampaignEvents, guard_events
from repro.campaign.result import (
    CampaignResult,
    CircuitResult,
    OperatorRow,
    StrategyRow,
)
from repro.campaign.stages import (
    OPERATOR_TARGET,
    STRATEGY_TARGET,
    CircuitContext,
    get_stage,
)
from repro.mutation.score import MutationScore
from repro.obs import metrics as _metrics

_NULL_EVENTS = CampaignEvents()


@contextmanager
def _telemetry_scope(config: CampaignConfig):
    """Install a metrics registry for the run when the config asks.

    Yields the registry collecting this run's metrics, or ``None``
    when telemetry is off.  If a registry is already active (an
    enclosing scope — e.g. a worker-side ``collecting()`` — or an
    explicit ``obs.enable_metrics()``), it is reused rather than
    shadowed so nested campaigns fold into one set of totals.
    """
    if not config.telemetry:
        yield None
        return
    current = _metrics.active()
    if current.enabled:
        yield current
        return
    with _metrics.collecting() as registry:
        yield registry


def run_circuit(
    circuit: str,
    config: CampaignConfig,
    events: CampaignEvents | None = None,
    grid=None,
) -> CircuitResult:
    """Run the configured stage pipeline for one circuit.

    ``grid`` (a :class:`repro.grid.GridExecutor`) shards the heavy
    operations inside the stages; ``None`` keeps the classic path.
    """
    events = guard_events(events if events is not None else _NULL_EVENTS)
    ctx = CircuitContext(circuit, config, grid=grid)
    m = _metrics.active()
    for name in config.stages:
        stage = get_stage(name)
        events.on_stage_start(circuit, name)
        started = time.monotonic()
        stage.run(ctx)
        seconds = time.monotonic() - started
        if m.enabled:
            m.counter("campaign.stage_runs")
            m.observe(f"stage.{name}.seconds", seconds)
        events.on_stage_end(circuit, name, seconds)
    return _build_result(ctx)


def _build_result(ctx: CircuitContext) -> CircuitResult:
    lab = ctx.lab
    stats = lab.netlist.stats() if lab is not None else {}
    population = len(ctx.population) if ctx.population is not None else 0
    equivalents = ctx.equivalence.count if ctx.equivalence is not None else 0

    operators = []
    for target in ctx.targets.values():
        if target.kind != OPERATOR_TARGET or target.report is None:
            continue
        report = target.report
        operators.append(
            OperatorRow(
                operator=target.name,
                mutants=len(target.mutants),
                test_length=report.mutation_length,
                mfc_pct=100.0 * report.mfc,
                dfc_pct=report.delta_fc_pct,
                dl_pct=report.delta_l_pct,
                nlfce=report.nlfce,
                reached_mfc=report.reached_mfc,
            )
        )

    strategies = []
    for target in ctx.targets.values():
        if target.kind != STRATEGY_TARGET:
            continue
        vectors = list(target.testgen.vectors) if target.testgen else []
        if target.killed is not None:
            killed = len(target.killed)
        elif target.testgen is not None:
            # Whole-population scoring was not run (no fault-validation
            # stage): fall back to the kills within the sample itself.
            killed = len(target.testgen.killed_mids)
        else:
            killed = 0
        score = MutationScore(
            total=population, killed=killed, equivalents=equivalents
        )
        strategies.append(
            StrategyRow(
                strategy=target.name,
                population=population,
                selected=len(target.mutants),
                equivalents=equivalents,
                killed=killed,
                ms_pct=score.percent,
                test_length=(
                    target.report.mutation_length if target.report else 0
                ),
                nlfce=target.report.nlfce if target.report else 0.0,
                vectors=vectors,
                triage={
                    k: sorted(v) for k, v in (target.triage or {}).items()
                },
                # String mid keys survive a JSON round-trip unchanged,
                # so cached and fresh results compare bit-identical.
                witnesses={
                    str(mid): [cycle, reason]
                    for mid, (cycle, reason) in sorted(
                        (target.witnesses or {}).items()
                    )
                },
            )
        )

    return CircuitResult(
        circuit=ctx.circuit,
        sequential=lab.design.is_sequential if lab is not None else False,
        gates=stats.get("gates", 0),
        dffs=stats.get("dffs", 0),
        depth=stats.get("depth", 0),
        faults=len(lab.faults) if lab is not None else 0,
        mutants=population,
        equivalents=equivalents,
        operators=operators,
        strategies=strategies,
        weights=ctx.weights,
    )


def _circuit_payload(circuit: str, config_data: dict) -> dict:
    """Worker entry point: rebuild the config, return a plain dict.

    The circuit's own runtime is measured in the worker so the parent
    can report it (wall clock since pool start would be wrong for every
    completion after the first).
    """
    config = CampaignConfig.from_dict(config_data)
    started = time.monotonic()
    if config.telemetry:
        with _metrics.collecting() as registry:
            result = run_circuit(circuit, config)
        payload = {
            "seconds": time.monotonic() - started,
            "result": result.to_dict(),
        }
        if not registry.is_empty():
            payload["metrics"] = registry.snapshot()
        return payload
    result = run_circuit(circuit, config)
    return {
        "seconds": time.monotonic() - started,
        "result": result.to_dict(),
    }


class Campaign:
    """One composable, parallel, resumable mutation-sampling run."""

    def __init__(
        self,
        config: CampaignConfig | None = None,
        events: CampaignEvents | None = None,
    ):
        self.config = config or CampaignConfig()
        self.events = events or _NULL_EVENTS
        #: the metrics registry of the most recent ``run`` (``None``
        #: when ``config.telemetry`` is off) — front ends read it to
        #: print or export the collected totals.
        self.last_metrics: _metrics.Metrics | None = None

    def run(self, circuits=None, resume: bool = False) -> CampaignResult:
        """Run the pipeline over ``circuits`` (default: the config's).

        Cached circuits are loaded, the rest computed — serially, on a
        process pool (``config.jobs > 1``), or sharded through a grid
        scheduler (``config.grid``) — and every freshly computed result
        is written back to the cache as it completes.  ``resume=True``
        (requires ``cache_dir``) additionally reuses finished work
        units from the grid job store when a grid scheduler is
        configured, so a killed run picks up from its last completed
        unit; without a grid, resume granularity is whatever the
        result cache holds (whole circuits), which the cache provides
        on any run.
        """
        from repro.errors import CampaignError

        config = self.config
        events = guard_events(self.events)
        names = tuple(circuits) if circuits is not None else config.circuits
        if resume and not config.cache_dir:
            raise CampaignError(
                "resume needs the cache_dir option (set cache_dir in "
                "the config, or pass --cache-dir on the CLI): finished "
                "circuits and work units live there"
            )
        with _telemetry_scope(config) as registry:
            self.last_metrics = registry
            return self._execute(names, config, events, resume)

    def _execute(
        self,
        names: tuple[str, ...],
        config: CampaignConfig,
        events: CampaignEvents,
        resume: bool,
    ) -> CampaignResult:
        m = _metrics.active()
        events.on_campaign_start(names, config)
        started = time.monotonic()

        cache = (
            ResultCache(
                config.cache_dir, config,
                max_entries=config.cache_max_entries,
            )
            if config.cache_dir else None
        )
        grid = None
        if config.grid:
            from repro.grid import GridExecutor

            grid = GridExecutor(config, events=events, resume=resume)
        results: dict[str, CircuitResult] = {}
        hits: list[str] = []
        pending: list[str] = []
        for name in names:
            if name in results or name in pending:
                continue
            cached = cache.load(name) if cache is not None else None
            if cached is not None:
                results[name] = cached
                hits.append(name)
                events.on_circuit_done(name, cached, 0.0, cached=True)
            else:
                pending.append(name)

        try:
            if grid is None and config.jobs > 1 and len(pending) > 1:
                self._run_parallel(pending, results, events)
                if cache is not None:
                    for name in pending:
                        cache.store(results[name])
            else:
                for name in pending:
                    events.on_circuit_start(name)
                    circuit_started = time.monotonic()
                    results[name] = run_circuit(
                        name, config, events, grid=grid
                    )
                    circuit_seconds = time.monotonic() - circuit_started
                    if m.enabled:
                        m.counter("campaign.circuits_run")
                        m.observe("circuit.seconds", circuit_seconds)
                    events.on_circuit_done(
                        name, results[name], circuit_seconds,
                    )
                    # Persist per circuit (not all at the end) so an
                    # interrupted multi-circuit run keeps what finished.
                    if cache is not None:
                        cache.store(results[name])
        finally:
            if grid is not None:
                grid.close()

        result = CampaignResult(
            config=config,
            circuits=[results[name] for name in dict.fromkeys(names)],
            cache_hits=tuple(hits),
        )
        campaign_seconds = time.monotonic() - started
        if m.enabled:
            m.gauge("campaign.seconds", campaign_seconds)
            m.counter("campaign.runs")
        events.on_campaign_end(result, campaign_seconds)
        return result

    def _run_parallel(
        self,
        pending: list[str],
        results: dict[str, CircuitResult],
        events: CampaignEvents,
    ) -> None:
        config = self.config
        config_data = config.to_dict()
        workers = min(config.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_circuit_payload, name, config_data): name
                for name in pending
            }
            for name in pending:
                events.on_circuit_start(name)
            for future in as_completed(futures):
                name = futures[future]
                payload = future.result()
                results[name] = CircuitResult.from_dict(payload["result"])
                snapshot = payload.get("metrics")
                if snapshot:
                    _metrics.active().merge(snapshot)
                events.on_circuit_done(
                    name, results[name], payload["seconds"]
                )
