"""repro.campaign — the unified pipeline API for the whole flow.

One entry point subsumes the paper's end-to-end mutation-sampling flow
(synthesis → mutant generation → sampling → mutation-adequate test
generation → stuck-at fault validation → NLFCE metrics)::

    from repro.campaign import Campaign, CampaignConfig

    config = CampaignConfig(fraction=0.10, jobs=2)
    result = Campaign(config).run(["c17", "b01"])
    print(result.table2())          # the paper's Table-2 rows
    print(result.to_json())         # archive-ready JSON

Pieces:

* :class:`CampaignConfig` — typed, JSON-round-trippable configuration
  unifying lab budgets, testgen knobs, sampling selection, the stage
  pipeline and execution policy (``jobs``, ``cache_dir``).
* Stages (:mod:`repro.campaign.stages`) — pluggable, registered by
  name; compose custom pipelines via ``config.stages``.
* :class:`CircuitResult` / :class:`CampaignResult` — plain-data results
  that serialize to JSON and render the paper's tables.
* :class:`CampaignEvents` — progress hooks replacing print-based
  reporting.
* :class:`Campaign` — the runner: serial, process-parallel over
  circuits, or sharded *within* circuits through a :mod:`repro.grid`
  scheduler (``config.grid``; bit-for-bit identical every way), with
  an on-disk result cache keyed by ``(circuit, config fingerprint,
  version)`` and unit-level resume (``run(..., resume=True)``) backed
  by the grid job store.
"""

from repro.campaign.cache import CACHE_VERSION, ResultCache
from repro.campaign.config import (
    DEFAULT_CIRCUITS,
    DEFAULT_OPERATORS,
    DEFAULT_PIPELINE,
    WEIGHT_SCHEMES,
    CampaignConfig,
)
from repro.campaign.events import (
    CampaignEvents,
    GuardedEvents,
    ProgressEvents,
    RecordingEvents,
    TeeEvents,
    TracingEvents,
    guard_events,
)
from repro.campaign.result import (
    CampaignResult,
    CircuitResult,
    OperatorRow,
    StrategyRow,
)
from repro.campaign.runner import Campaign, run_circuit
from repro.campaign.stages import (
    STAGE_REGISTRY,
    CircuitContext,
    FaultValidationStage,
    MetricsStage,
    MutantStage,
    SamplingStage,
    SearchStage,
    Stage,
    SynthStage,
    Target,
    TestGenStage,
    get_stage,
    register_stage,
    stage_names,
)

__all__ = [
    "CACHE_VERSION",
    "Campaign",
    "CampaignConfig",
    "CampaignEvents",
    "CampaignResult",
    "CircuitContext",
    "CircuitResult",
    "DEFAULT_CIRCUITS",
    "DEFAULT_OPERATORS",
    "DEFAULT_PIPELINE",
    "FaultValidationStage",
    "GuardedEvents",
    "MetricsStage",
    "MutantStage",
    "OperatorRow",
    "ProgressEvents",
    "RecordingEvents",
    "ResultCache",
    "STAGE_REGISTRY",
    "SamplingStage",
    "SearchStage",
    "Stage",
    "StrategyRow",
    "SynthStage",
    "Target",
    "TeeEvents",
    "TestGenStage",
    "TracingEvents",
    "WEIGHT_SCHEMES",
    "get_stage",
    "guard_events",
    "register_stage",
    "run_circuit",
    "stage_names",
]
