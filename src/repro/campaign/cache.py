"""On-disk per-circuit result cache.

A cache entry is keyed by ``(circuit, config fingerprint, format
version)`` — the fingerprint covers every result-affecting config field
(see :meth:`repro.campaign.CampaignConfig.fingerprint`), so a budget or
seed change misses cleanly while re-running the same science on more
jobs, or with a different circuit list, hits.  Entries are plain JSON
(:meth:`CircuitResult.to_dict`); anything unreadable or structurally
stale is treated as a miss, never an error.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.campaign.result import CircuitResult
from repro.errors import ConfigError

#: Bump when the cached payload's shape or semantics change.
CACHE_VERSION = 1


def _writer_alive(tmp_name: str) -> bool:
    """Whether the pid embedded in ``<name>.<pid>.tmp`` still runs."""
    try:
        pid = int(tmp_name.rsplit(".", 2)[-2])
    except (IndexError, ValueError):
        return False  # malformed: nobody owns it
    if os.name != "posix":
        # os.kill(pid, 0) is only a probe on POSIX (on Windows it
        # terminates); with no safe liveness check, assume alive and
        # let the writer's own failure cleanup handle its tmp.
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # e.g. EPERM: somebody's process, leave it alone
    return True


class ResultCache:
    """Load/store :class:`CircuitResult` objects under a directory."""

    def __init__(self, directory, config):
        self._dir = Path(directory)
        self._fingerprint = config.fingerprint()
        # Fail fast on an unusable cache location, before any compute.
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigError(f"unusable cache directory: {exc}") from exc
        # Sweep droppings of writers that died between write and rename
        # (store() cleans up after exceptions, but not after SIGKILL).
        # The writer's pid is embedded in the name; a tmp whose writer
        # is still alive is an in-flight store, not a dropping.
        for stale in self._dir.glob("*.tmp"):
            if _writer_alive(stale.name):
                continue
            try:
                stale.unlink()
            except OSError:
                pass  # already gone, or not ours to remove

    def path(self, circuit: str) -> Path:
        return self._dir / (
            f"{circuit}-{self._fingerprint}-v{CACHE_VERSION}.json"
        )

    def load(self, circuit: str) -> CircuitResult | None:
        """The cached result, or ``None`` on any kind of miss."""
        try:
            text = self.path(circuit).read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return CircuitResult.from_dict(json.loads(text))
        except (ValueError, TypeError, KeyError, ConfigError):
            return None  # corrupt or stale entry: recompute

    def store(self, result: CircuitResult) -> None:
        target = self.path(result.circuit)
        payload = json.dumps(result.to_dict(), sort_keys=True)
        # Write-then-rename so concurrent readers never see half a file.
        tmp = target.with_name(target.name + f".{os.getpid()}.tmp")
        try:
            tmp.write_text(payload, encoding="utf-8")
            tmp.replace(target)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
