"""On-disk per-circuit result cache.

A cache entry is keyed by ``(circuit, config fingerprint, format
version)`` — the fingerprint covers every result-affecting config field
(see :meth:`repro.campaign.CampaignConfig.fingerprint`), so a budget or
seed change misses cleanly while re-running the same science on more
jobs, or with a different circuit list, hits.  Entries are plain JSON
(:meth:`CircuitResult.to_dict`); anything unreadable or structurally
stale is treated as a miss, never an error.  An optional
``max_entries`` bound turns the directory into an LRU cache
(mtime-ordered sweep on every store).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.campaign.result import CircuitResult
from repro.errors import ConfigError
from repro.obs import metrics as _metrics

#: Bump when the cached payload's shape or semantics change.
#: v2: strategy rows carry survivor ``triage`` and kill ``witnesses``.
CACHE_VERSION = 2


def _writer_alive(tmp_name: str) -> bool:
    """Whether the pid embedded in ``<name>.<pid>.tmp`` still runs."""
    try:
        pid = int(tmp_name.rsplit(".", 2)[-2])
    except (IndexError, ValueError):
        return False  # malformed: nobody owns it
    if os.name != "posix":
        # os.kill(pid, 0) is only a probe on POSIX (on Windows it
        # terminates); with no safe liveness check, assume alive and
        # let the writer's own failure cleanup handle its tmp.
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # e.g. EPERM: somebody's process, leave it alone
    return True


class ResultCache:
    """Load/store :class:`CircuitResult` objects under a directory.

    ``max_entries`` bounds the number of on-disk entries with an LRU
    sweep: every store (and init) drops the least-recently-used entry
    files — mtime-ordered, across fingerprints, hits refresh mtime —
    beyond the bound.  ``None`` (the default) keeps the historical
    unbounded behavior.
    """

    def __init__(self, directory, config, max_entries: int | None = None):
        if max_entries is not None and max_entries < 1:
            raise ConfigError(
                f"cache max_entries must be >= 1, got {max_entries}"
            )
        self._dir = Path(directory)
        self._fingerprint = config.fingerprint()
        self._max_entries = max_entries
        # Fail fast on an unusable cache location, before any compute.
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigError(f"unusable cache directory: {exc}") from exc
        # Sweep droppings of writers that died between write and rename
        # (store() cleans up after exceptions, but not after SIGKILL).
        # The writer's pid is embedded in the name; a tmp whose writer
        # is still alive is an in-flight store, not a dropping.
        for stale in self._dir.glob("*.tmp"):
            if _writer_alive(stale.name):
                continue
            try:
                stale.unlink()
            except OSError:
                pass  # already gone, or not ours to remove
        self._sweep()

    def path(self, circuit: str) -> Path:
        return self._dir / (
            f"{circuit}-{self._fingerprint}-v{CACHE_VERSION}.json"
        )

    def load(self, circuit: str) -> CircuitResult | None:
        """The cached result, or ``None`` on any kind of miss."""
        path = self.path(circuit)
        m = _metrics.active()
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            if m.enabled:
                m.counter("cache.result.miss")
            return None
        try:
            result = CircuitResult.from_dict(json.loads(text))
        except (ValueError, TypeError, KeyError, ConfigError):
            if m.enabled:
                m.counter("cache.result.miss")
                m.counter("cache.result.corrupt")
            return None  # corrupt or stale entry: recompute
        if m.enabled:
            m.counter("cache.result.hit")
        # A hit counts as use: refresh mtime so the LRU sweep keeps the
        # entries campaigns actually read.
        try:
            os.utime(path)
        except OSError:
            pass
        return result

    def store(self, result: CircuitResult) -> None:
        target = self.path(result.circuit)
        payload = json.dumps(result.to_dict(), sort_keys=True)
        # Write-then-rename so concurrent readers never see half a file.
        tmp = target.with_name(target.name + f".{os.getpid()}.tmp")
        try:
            tmp.write_text(payload, encoding="utf-8")
            tmp.replace(target)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        m = _metrics.active()
        if m.enabled:
            m.counter("cache.result.store")
        self._sweep()

    def _sweep(self) -> None:
        """Unlink least-recently-used entries beyond ``max_entries``.

        Only files shaped like current-version cache entries
        (``<circuit>-<fingerprint>-v<CACHE_VERSION>.json``) are
        candidates — the grid job store lives in ``grid-*``
        subdirectories, and foreign files a user keeps in the cache
        directory (archives, notes) are never touched.  Races (another
        process removing a file mid-sweep) are benign.
        """
        if self._max_entries is None:
            return
        entries = []
        for path in self._dir.glob(f"*-*-v{CACHE_VERSION}.json"):
            try:
                entries.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue  # vanished mid-scan
        entries.sort(reverse=True)  # newest first; name breaks mtime ties
        m = _metrics.active()
        for _, _, path in entries[self._max_entries:]:
            try:
                path.unlink()
            except OSError:
                continue
            if m.enabled:
                m.counter("cache.result.evict")
