"""repro — mutation sampling for structural test data generation.

A from-scratch reproduction of M. Scholivé et al., "Mutation Sampling
Technique for the Generation of Structural Test Data", DATE 2005.

The stack, bottom to top: a VHDL-subset front end and delta-cycle
simulator (``repro.hdl`` / ``repro.sim``), logic synthesis to gate-level
netlists (``repro.synth`` / ``repro.netlist``), single-stuck-at fault
simulation (``repro.fault``) on pluggable simulation backends
(``repro.engine``), the ten-operator mutation engine
(``repro.mutation``), mutation-adequate / random / deterministic test
generation (``repro.testgen``) with coverage-guided candidate search
(``repro.search``), the NLFCE metric (``repro.metrics``), mutant
sampling strategies (``repro.sampling``), the campaign pipeline
(``repro.campaign``) and the experiment facade regenerating the paper's
tables (``repro.experiments``).

Quickstart — the whole flow is one campaign::

    from repro import Campaign, CampaignConfig

    config = CampaignConfig(fraction=0.10, jobs=2)
    result = Campaign(config).run(["c17", "b01"])
    for circuit in result.circuits:
        row = circuit.strategy("test-oriented")
        print(circuit.circuit, f"MS={row.ms_pct:.1f}%",
              f"NLFCE={row.nlfce:.1f}")
    print(result.to_json())        # archive / replay the exact run

``CampaignConfig`` is JSON-round-trippable, the stage pipeline is
pluggable by name (see :mod:`repro.campaign`), and ``jobs=N`` runs
circuits on a process pool with bit-identical results.  The low-level
pieces stay available for custom flows::

    from repro import load_circuit, generate_mutants, MutationTestGenerator

    design = load_circuit("b01")
    mutants = generate_mutants(design)
    data = MutationTestGenerator(design, seed=1).generate(mutants)
    print(len(data.vectors), "validation vectors")
"""

from repro.campaign import (
    Campaign,
    CampaignConfig,
    CampaignEvents,
    CampaignResult,
    CircuitResult,
)
from repro.circuits import circuit_names, get_circuit, load_circuit
from repro.engine import DEFAULT_ENGINE, build_engine, engine_names
from repro.errors import ReproError
from repro.fault import collapse_faults, generate_faults, simulate_stuck_at
from repro.hdl import load_design
from repro.metrics import compute_nlfce
from repro.mutation import MutationEngine, generate_mutants, mutants_by_operator
from repro.sampling import RandomSampling, TestOrientedSampling
from repro.search import (
    DEFAULT_SEARCH,
    SearchBudget,
    SearchStrategy,
    build_search_strategy,
    search_strategy_names,
)
from repro.sim import StimulusEncoder, Testbench
from repro.synth import synthesize
from repro.testgen import MutationTestGenerator, RandomVectorGenerator

__version__ = "1.3.0"

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignEvents",
    "CampaignResult",
    "CircuitResult",
    "MutationEngine",
    "MutationTestGenerator",
    "RandomSampling",
    "RandomVectorGenerator",
    "ReproError",
    "SearchBudget",
    "SearchStrategy",
    "StimulusEncoder",
    "Testbench",
    "TestOrientedSampling",
    "DEFAULT_ENGINE",
    "DEFAULT_SEARCH",
    "__version__",
    "build_engine",
    "build_search_strategy",
    "circuit_names",
    "collapse_faults",
    "compute_nlfce",
    "engine_names",
    "generate_faults",
    "generate_mutants",
    "get_circuit",
    "load_circuit",
    "load_design",
    "mutants_by_operator",
    "search_strategy_names",
    "simulate_stuck_at",
    "synthesize",
]
