"""Fault models and fault simulation.

* :mod:`repro.fault.model` — stuck-at fault sites (net stems + fanout
  branches)
* :mod:`repro.fault.collapse` — structural equivalence collapsing
* :mod:`repro.fault.comb_sim` — pattern-parallel single-fault simulation
  (combinational circuits; all patterns ride one big-int word per net)
* :mod:`repro.fault.seq_sim` — fault-parallel simulation (sequential
  circuits; each bit lane is one faulty machine)
* :mod:`repro.fault.coverage` — detection records and coverage curves
* :mod:`repro.fault.models` — the pluggable fault-model registry
  (``stuck-at``, ``transition``, ``seu``) behind
  :func:`simulate_faults`, the campaign config and the CLI
"""

from repro.fault.collapse import collapse_faults
from repro.fault.comb_sim import CombFaultSimulator
from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault, generate_faults
from repro.fault.models import (
    DEFAULT_FAULT_MODEL,
    FaultModel,
    SeuFault,
    SeuModel,
    StuckAtModel,
    TransitionFault,
    TransitionModel,
    build_fault_model,
    fault_model_names,
    get_fault_model,
    register_fault_model,
)
from repro.fault.seq_sim import SeqFaultSimulator
from repro.fault.runner import simulate_faults, simulate_stuck_at

__all__ = [
    "CombFaultSimulator",
    "DEFAULT_FAULT_MODEL",
    "FaultModel",
    "FaultSimResult",
    "SeqFaultSimulator",
    "SeuFault",
    "SeuModel",
    "StuckAtFault",
    "StuckAtModel",
    "TransitionFault",
    "TransitionModel",
    "build_fault_model",
    "collapse_faults",
    "fault_model_names",
    "generate_faults",
    "get_fault_model",
    "register_fault_model",
    "simulate_faults",
    "simulate_stuck_at",
]
