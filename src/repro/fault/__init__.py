"""Single stuck-at fault model and fault simulation.

* :mod:`repro.fault.model` — fault sites (net stems + fanout branches)
* :mod:`repro.fault.collapse` — structural equivalence collapsing
* :mod:`repro.fault.comb_sim` — pattern-parallel single-fault simulation
  (combinational circuits; all patterns ride one big-int word per net)
* :mod:`repro.fault.seq_sim` — fault-parallel simulation (sequential
  circuits; each bit lane is one faulty machine)
* :mod:`repro.fault.coverage` — detection records and coverage curves
"""

from repro.fault.collapse import collapse_faults
from repro.fault.comb_sim import CombFaultSimulator
from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault, generate_faults
from repro.fault.seq_sim import SeqFaultSimulator
from repro.fault.runner import simulate_stuck_at

__all__ = [
    "CombFaultSimulator",
    "FaultSimResult",
    "SeqFaultSimulator",
    "StuckAtFault",
    "collapse_faults",
    "generate_faults",
    "simulate_stuck_at",
]
