"""Structural fault-equivalence collapsing.

Classic rules (Abramovici/Breuer/Friedman):

* AND : any input s-a-0  ==  output s-a-0
* NAND: any input s-a-0  ==  output s-a-1
* OR  : any input s-a-1  ==  output s-a-1
* NOR : any input s-a-1  ==  output s-a-0
* NOT : input s-a-v      ==  output s-a-(1-v)
* BUF : input s-a-v      ==  output s-a-v

XOR/XNOR gates collapse nothing.  The "input fault" of a single-load
net is its driver's stem fault, so equivalences chain through gate
cascades.  Union-find merges classes; one representative per class is
kept (stems preferred for readable reports).
"""

from __future__ import annotations

from repro.fault.model import StuckAtFault, generate_faults
from repro.netlist.cells import GateType
from repro.netlist.netlist import Netlist


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent is item or parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def collapse_faults(
    netlist: Netlist, faults: list[StuckAtFault] | None = None
) -> list[StuckAtFault]:
    """Collapse ``faults`` (default: the full universe) to representatives."""
    if faults is None:
        faults = generate_faults(netlist)
    universe = {(f.net, f.stuck, f.gate, f.pin, f.dff): f for f in faults}
    loads: dict[int, int] = {}
    for gate in netlist.gates:
        for nid in gate.inputs:
            loads[nid] = loads.get(nid, 0) + 1
    for dff in netlist.dffs:
        loads[dff.d] = loads.get(dff.d, 0) + 1

    uf = _UnionFind()

    def input_fault_key(gate, pin: int, stuck: int):
        nid = gate.inputs[pin]
        if loads.get(nid, 0) > 1:
            return (nid, stuck, gate.gid, pin, None)
        return (nid, stuck, None, None, None)

    for gate in netlist.gates:
        out = gate.output
        if gate.gate_type in (GateType.AND, GateType.NAND):
            control, out_inv = 0, gate.gate_type is GateType.NAND
        elif gate.gate_type in (GateType.OR, GateType.NOR):
            control, out_inv = 1, gate.gate_type is GateType.NOR
        elif gate.gate_type in (GateType.NOT, GateType.BUF):
            inv = gate.gate_type is GateType.NOT
            for stuck in (0, 1):
                in_key = input_fault_key(gate, 0, stuck)
                out_key = (out, stuck ^ inv, None, None, None)
                if in_key in universe and out_key in universe:
                    uf.union(in_key, out_key)
            continue
        else:
            continue
        out_stuck = control ^ (1 if out_inv else 0)
        out_key = (out, out_stuck, None, None, None)
        for pin in range(len(gate.inputs)):
            in_key = input_fault_key(gate, pin, control)
            if in_key in universe and out_key in universe:
                uf.union(in_key, out_key)

    classes: dict = {}
    for key in universe:
        classes.setdefault(uf.find(key), []).append(key)
    representatives: list[StuckAtFault] = []
    for members in classes.values():
        # Prefer stem faults; tie-break on net id for determinism.
        members.sort(key=lambda k: (k[2] is not None or k[4] is not None, k))
        representatives.append(universe[members[0]])
    representatives.sort(key=lambda f: (f.net, f.stuck, f.gate or -1,
                                        f.pin or -1, f.dff or -1))
    return representatives
