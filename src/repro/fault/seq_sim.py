"""Fault-parallel stuck-at simulation for sequential circuits.

Each bit lane of a net word is one faulty machine; the good machine is
simulated separately with single-bit words and replicated for the
output compare.  Faults are processed in chunks of ``lanes`` machines —
multiplied by the engine's ``lane_batch`` hint, so word-parallel
backends like ``vector`` evaluate several chunks per call.  Injection
masks are pre-compiled per chunk:

* stem faults override the net word after its driver evaluates;
* branch faults override one gate's (or one DFF's) view of its input.

Every cycle performs the evaluate / clock / re-evaluate sequence that
matches :class:`repro.sim.testbench.Testbench`, so detection cycles are
directly comparable with behavioural runs.  The per-gate work runs on a
pluggable :mod:`repro.engine` backend; the ``compiled`` backend bakes
each chunk's injection masks into generated straight-line code.
"""

from __future__ import annotations

import time

from repro.engine import InjectionPlan, build_engine
from repro.errors import FaultSimError
from repro.fault.collapse import collapse_faults
from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import unpack_patterns
from repro.obs import metrics as _metrics


class SeqFaultSimulator:
    """Stuck-at fault simulation of a sequential netlist."""

    def __init__(
        self,
        netlist: Netlist,
        faults: list[StuckAtFault] | None = None,
        lanes: int = 256,
        engine=None,
    ):
        if lanes < 1:
            raise FaultSimError("lanes must be >= 1")
        self._netlist = netlist
        self._engine = build_engine(engine)
        self._faults = (
            faults if faults is not None else collapse_faults(netlist)
        )
        self._lanes = lanes
        # Word-parallel backends advertise how many chunks of the
        # configured lane width they want packed per call; detection
        # results are lane-layout independent, so widening the chunk is
        # purely a throughput lever.
        self._chunk_lanes = lanes * max(
            1, int(getattr(self._engine, "lane_batch", 1))
        )
        self._outputs = netlist.output_bits

    @property
    def faults(self) -> list[StuckAtFault]:
        return self._faults

    @property
    def netlist(self) -> Netlist:
        return self._netlist

    @property
    def engine(self):
        return self._engine

    @property
    def lanes(self) -> int:
        return self._lanes

    @property
    def effective_lanes(self) -> int:
        """Fault machines per chunk after the engine's lane batching."""
        return self._chunk_lanes

    def simulate(self, stimuli: list[int]) -> FaultSimResult:
        """Fault-simulate a packed input sequence (applied after reset)."""
        detection: list[int | None] = [None] * len(self._faults)
        m = _metrics.active()
        started = time.monotonic() if m.enabled else 0.0
        chunks = 0
        for start in range(0, len(self._faults), self._chunk_lanes):
            chunk = self._faults[start : start + self._chunk_lanes]
            plan = self._compile(chunk)
            chunk_detect = self._run_chunk(plan, stimuli)
            for offset, cycle in enumerate(chunk_detect):
                detection[start + offset] = cycle
            chunks += 1
        if m.enabled:
            # Per-simulate coarse counters; the per-cycle loop inside
            # _run_chunk is the hot path and stays untouched.
            name = getattr(self._engine, "name", "engine")
            m.counter(f"engine.{name}.seq.passes")
            m.counter(f"engine.{name}.seq.faults", len(self._faults))
            m.counter(f"engine.{name}.seq.cycles", len(stimuli))
            m.counter(f"engine.{name}.seq.chunks", chunks)
            m.observe(
                f"engine.{name}.seq.seconds", time.monotonic() - started
            )
        return FaultSimResult(
            list(self._faults), detection, len(stimuli)
        )

    def _compile(self, chunk: list[StuckAtFault]) -> InjectionPlan:
        plan = InjectionPlan(faults=chunk)

        def merge(table: dict, key, lane: int, stuck: int) -> None:
            clear, setm = table.get(key, (0, 0))
            clear |= 1 << lane
            if stuck:
                setm |= 1 << lane
            table[key] = (clear, setm)

        for lane, fault in enumerate(chunk):
            if fault.gate is not None:
                merge(plan.branch, (fault.gate, fault.pin), lane, fault.stuck)
            elif fault.dff is not None:
                merge(plan.dff_branch, fault.dff, lane, fault.stuck)
            else:
                merge(plan.stem, fault.net, lane, fault.stuck)
        return plan

    def _run_chunk(
        self, plan: InjectionPlan, stimuli: list[int]
    ) -> list[int | None]:
        mask = (1 << len(plan.faults)) - 1
        netlist, engine = self._netlist, self._engine
        # Faulty-lane state and good-machine state.
        state = {
            dff.q: mask if dff.reset_value else 0 for dff in netlist.dffs
        }
        good_state = {
            dff.q: dff.reset_value for dff in netlist.dffs
        }
        # Stem faults on DFF outputs must corrupt the reset state too.
        for q in state:
            if q in plan.stem:
                clear, setm = plan.stem[q]
                state[q] = (state[q] & ~clear) | setm
        detect_cycle: list[int | None] = [None] * len(plan.faults)
        alive = mask

        for cycle, packed in enumerate(stimuli):
            single = unpack_patterns([packed], netlist.input_bits)
            inputs = {nid: mask if word else 0 for nid, word in single.items()}
            words = engine.eval_injected(
                netlist, plan, {**inputs, **state}, mask
            )
            good = engine.eval_full(netlist, {**single, **good_state}, 1)
            next_state = self._next_state(plan, words, mask)
            good_next = {dff.q: good[dff.d] for dff in netlist.dffs}
            words = engine.eval_injected(
                netlist, plan, {**inputs, **next_state}, mask
            )
            good = engine.eval_full(netlist, {**single, **good_next}, 1)
            state, good_state = next_state, good_next

            diff = 0
            for nid in self._outputs:
                good_rep = mask if good[nid] else 0
                diff |= words[nid] ^ good_rep
            newly = diff & alive
            if newly:
                alive &= ~newly
                while newly:
                    low = newly & -newly
                    lane = low.bit_length() - 1
                    detect_cycle[lane] = cycle
                    newly ^= low
                if not alive:
                    break
        return detect_cycle

    def _next_state(
        self, plan: InjectionPlan, words: dict[int, int], mask: int
    ) -> dict[int, int]:
        next_state: dict[int, int] = {}
        for dff in self._netlist.dffs:
            word = words[dff.d]
            override = plan.dff_branch.get(dff.fid)
            if override is not None:
                clear, setm = override
                word = (word & ~clear) | setm
            next_state[dff.q] = word
            # Stem faults on the Q net keep forcing the state element.
            stem = plan.stem.get(dff.q)
            if stem is not None:
                clear, setm = stem
                next_state[dff.q] = (next_state[dff.q] & ~clear) | setm
        return next_state
