"""Fault-parallel stuck-at simulation for sequential circuits.

Each bit lane of a net word is one faulty machine; the good machine is
simulated separately with single-bit words and replicated for the
output compare.  Faults are processed in chunks of ``lanes`` machines.
Injection masks are pre-compiled per chunk:

* stem faults override the net word after its driver evaluates;
* branch faults override one gate's (or one DFF's) view of its input.

Every cycle performs the evaluate / clock / re-evaluate sequence that
matches :class:`repro.sim.testbench.Testbench`, so detection cycles are
directly comparable with behavioural runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultSimError
from repro.fault.collapse import collapse_faults
from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault
from repro.netlist.cells import eval_gate
from repro.netlist.levelize import topo_gates
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import unpack_patterns


@dataclass
class _ChunkPlan:
    """Pre-compiled injection masks for one chunk of faults."""

    faults: list[StuckAtFault]
    #: net id -> (clear_mask, set_mask) applied after the net is computed
    stem: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: (gate gid, pin) -> (clear_mask, set_mask)
    branch: dict[tuple[int, int], tuple[int, int]] = field(
        default_factory=dict
    )
    #: dff fid -> (clear_mask, set_mask) on its D input view
    dff_branch: dict[int, tuple[int, int]] = field(default_factory=dict)


class SeqFaultSimulator:
    """Stuck-at fault simulation of a sequential netlist."""

    def __init__(
        self,
        netlist: Netlist,
        faults: list[StuckAtFault] | None = None,
        lanes: int = 256,
    ):
        if lanes < 1:
            raise FaultSimError("lanes must be >= 1")
        self._netlist = netlist
        self._order = topo_gates(netlist)
        self._faults = (
            faults if faults is not None else collapse_faults(netlist)
        )
        self._lanes = lanes
        self._outputs = netlist.output_bits

    @property
    def faults(self) -> list[StuckAtFault]:
        return self._faults

    @property
    def netlist(self) -> Netlist:
        return self._netlist

    def simulate(self, stimuli: list[int]) -> FaultSimResult:
        """Fault-simulate a packed input sequence (applied after reset)."""
        detection: list[int | None] = [None] * len(self._faults)
        for start in range(0, len(self._faults), self._lanes):
            chunk = self._faults[start : start + self._lanes]
            plan = self._compile(chunk)
            chunk_detect = self._run_chunk(plan, stimuli)
            for offset, cycle in enumerate(chunk_detect):
                detection[start + offset] = cycle
        return FaultSimResult(
            list(self._faults), detection, len(stimuli)
        )

    def _compile(self, chunk: list[StuckAtFault]) -> _ChunkPlan:
        plan = _ChunkPlan(faults=chunk)

        def merge(table: dict, key, lane: int, stuck: int) -> None:
            clear, setm = table.get(key, (0, 0))
            clear |= 1 << lane
            if stuck:
                setm |= 1 << lane
            table[key] = (clear, setm)

        for lane, fault in enumerate(chunk):
            if fault.gate is not None:
                merge(plan.branch, (fault.gate, fault.pin), lane, fault.stuck)
            elif fault.dff is not None:
                merge(plan.dff_branch, fault.dff, lane, fault.stuck)
            else:
                merge(plan.stem, fault.net, lane, fault.stuck)
        return plan

    def _run_chunk(
        self, plan: _ChunkPlan, stimuli: list[int]
    ) -> list[int | None]:
        mask = (1 << len(plan.faults)) - 1
        netlist = self._netlist
        # Faulty-lane state and good-machine state.
        state = {
            dff.q: mask if dff.reset_value else 0 for dff in netlist.dffs
        }
        good_state = {
            dff.q: dff.reset_value for dff in netlist.dffs
        }
        # Stem faults on DFF outputs must corrupt the reset state too.
        for q in state:
            if q in plan.stem:
                clear, setm = plan.stem[q]
                state[q] = (state[q] & ~clear) | setm
        detect_cycle: list[int | None] = [None] * len(plan.faults)
        alive = mask

        for cycle, packed in enumerate(stimuli):
            single = unpack_patterns([packed], netlist.input_bits)
            inputs = {nid: mask if word else 0 for nid, word in single.items()}
            words = self._eval(plan, inputs, state, mask)
            good = self._eval(None, single, good_state, 1)
            next_state = self._next_state(plan, words, mask)
            good_next = {dff.q: good[dff.d] for dff in netlist.dffs}
            words = self._eval(plan, inputs, next_state, mask)
            good = self._eval(None, single, good_next, 1)
            state, good_state = next_state, good_next

            diff = 0
            for nid in self._outputs:
                good_rep = mask if good[nid] else 0
                diff |= words[nid] ^ good_rep
            newly = diff & alive
            if newly:
                alive &= ~newly
                while newly:
                    low = newly & -newly
                    lane = low.bit_length() - 1
                    detect_cycle[lane] = cycle
                    newly ^= low
                if not alive:
                    break
        return detect_cycle

    def _eval(
        self,
        plan: _ChunkPlan | None,
        input_words: dict[int, int],
        state: dict[int, int],
        mask: int,
    ) -> dict[int, int]:
        words = dict(input_words)
        words.update(state)
        if plan is not None:
            for nid, (clear, setm) in plan.stem.items():
                if nid in words:
                    words[nid] = (words[nid] & ~clear) | setm
        for gate in self._order:
            if plan is not None and plan.branch:
                inputs = []
                for pin, nid in enumerate(gate.inputs):
                    word = words[nid]
                    override = plan.branch.get((gate.gid, pin))
                    if override is not None:
                        clear, setm = override
                        word = (word & ~clear) | setm
                    inputs.append(word)
            else:
                inputs = [words[nid] for nid in gate.inputs]
            out = eval_gate(gate.gate_type, inputs, mask)
            if plan is not None:
                override = plan.stem.get(gate.output)
                if override is not None:
                    clear, setm = override
                    out = (out & ~clear) | setm
            words[gate.output] = out
        return words

    def _next_state(
        self, plan: _ChunkPlan, words: dict[int, int], mask: int
    ) -> dict[int, int]:
        next_state: dict[int, int] = {}
        for dff in self._netlist.dffs:
            word = words[dff.d]
            override = plan.dff_branch.get(dff.fid)
            if override is not None:
                clear, setm = override
                word = (word & ~clear) | setm
            next_state[dff.q] = word
            # Stem faults on the Q net keep forcing the state element.
            stem = plan.stem.get(dff.q)
            if stem is not None:
                clear, setm = stem
                next_state[dff.q] = (next_state[dff.q] & ~clear) | setm
        return next_state
