"""Fault-simulation results and coverage curves."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fault.model import StuckAtFault


@dataclass
class FaultSimResult:
    """First-detection record per collapsed fault.

    ``detection[i]`` is the 0-based index of the first pattern (or
    cycle, for sequential circuits) at which fault *i* was observed at a
    primary output, or ``None`` if the test set never detects it.
    """

    faults: list[StuckAtFault]
    detection: list[int | None]
    num_patterns: int

    def __post_init__(self) -> None:
        if len(self.faults) != len(self.detection):
            raise ValueError("faults/detection length mismatch")

    @property
    def num_faults(self) -> int:
        return len(self.faults)

    @property
    def detected(self) -> int:
        return sum(1 for d in self.detection if d is not None)

    def coverage(self, length: int | None = None) -> float:
        """Fault coverage after the first ``length`` patterns (default all)."""
        if self.num_faults == 0:
            return 1.0
        if length is None:
            length = self.num_patterns
        hit = sum(
            1 for d in self.detection if d is not None and d < length
        )
        return hit / self.num_faults

    def coverage_curve(self) -> list[float]:
        """Cumulative coverage; entry *l* is the coverage of length l+1."""
        counts = [0] * (self.num_patterns + 1)
        for d in self.detection:
            if d is not None:
                counts[d + 1] += 1
        curve: list[float] = []
        running = 0
        for length in range(1, self.num_patterns + 1):
            running += counts[length]
            curve.append(
                running / self.num_faults if self.num_faults else 1.0
            )
        return curve

    def length_to_reach(self, target: float) -> int | None:
        """Shortest prefix length whose coverage >= ``target``, if any."""
        if self.num_faults == 0:
            return 0
        needed = target * self.num_faults - 1e-12
        counts = [0] * (self.num_patterns + 1)
        for d in self.detection:
            if d is not None:
                counts[d + 1] += 1
        running = 0
        for length in range(1, self.num_patterns + 1):
            running += counts[length]
            if running >= needed:
                return length
        return None

    def undetected_faults(self) -> list[StuckAtFault]:
        return [
            fault
            for fault, d in zip(self.faults, self.detection)
            if d is None
        ]
