"""Model-aware fault-simulation dispatch."""

from __future__ import annotations

from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault
from repro.fault.models.base import build_fault_model
from repro.netlist.netlist import Netlist


def simulate_faults(
    netlist: Netlist,
    stimuli: list[int],
    faults: list | None = None,
    lanes: int = 256,
    engine=None,
    model=None,
) -> FaultSimResult:
    """Fault-simulate packed stimuli on ``netlist`` under a fault model.

    ``model`` is a registered model name, a model instance, or ``None``
    for the default (single stuck-at).  ``faults`` defaults to the
    model's collapsed fault list; ``engine`` selects the
    :mod:`repro.engine` backend by name (default backend when ``None``).
    """
    model = build_fault_model(model)
    return model.simulate(
        netlist, stimuli, faults=faults, lanes=lanes, engine=engine
    )


def simulate_stuck_at(
    netlist: Netlist,
    stimuli: list[int],
    faults: list[StuckAtFault] | None = None,
    lanes: int = 256,
    engine=None,
) -> FaultSimResult:
    """Stuck-at fault simulation (the historical entry point).

    Sequential netlists (any DFF) use the fault-parallel simulator;
    pure combinational ones the pattern-parallel simulator.  Kept as a
    thin wrapper over the registered ``stuck-at`` model so callers that
    predate the model registry keep their exact behavior.
    """
    return simulate_faults(
        netlist, stimuli, faults=faults, lanes=lanes, engine=engine,
        model="stuck-at",
    )
