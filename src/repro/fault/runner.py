"""Dispatch fault simulation by circuit style."""

from __future__ import annotations

from repro.fault.collapse import collapse_faults
from repro.fault.comb_sim import CombFaultSimulator
from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault
from repro.fault.seq_sim import SeqFaultSimulator
from repro.netlist.netlist import Netlist


def simulate_stuck_at(
    netlist: Netlist,
    stimuli: list[int],
    faults: list[StuckAtFault] | None = None,
    lanes: int = 256,
    engine=None,
) -> FaultSimResult:
    """Fault-simulate packed stimuli on ``netlist``.

    Sequential netlists (any DFF) use the fault-parallel simulator;
    pure combinational ones the pattern-parallel simulator.  ``faults``
    defaults to the collapsed fault list; ``engine`` selects the
    :mod:`repro.engine` backend by name (default backend when ``None``).
    """
    if faults is None:
        faults = collapse_faults(netlist)
    if netlist.dffs:
        return SeqFaultSimulator(
            netlist, faults, lanes, engine=engine
        ).simulate(stimuli)
    return CombFaultSimulator(netlist, faults, engine=engine).simulate(
        stimuli
    )
