"""Stuck-at fault sites of a gate-level netlist.

The classical single stuck-at model places faults on every line: each
net *stem* (the driver's output) and, where a net fans out to several
loads, each *branch* (one gate input pin or one DFF data pin).  Branches
of single-load nets are identical to their stem and are not enumerated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class StuckAtFault:
    """One stuck-at fault.

    ``gate``/``pin`` identify a branch site (a gate input); ``dff``
    identifies a flip-flop data-input branch.  When both are ``None``
    the fault sits on the net stem.
    """

    net: int
    stuck: int                  # 0 or 1
    gate: int | None = None    # gate gid for branch faults
    pin: int | None = None
    dff: int | None = None     # dff fid for state-input branch faults

    @property
    def is_stem(self) -> bool:
        return self.gate is None and self.dff is None

    def describe(self, netlist: Netlist) -> str:
        base = f"{netlist.net_name(self.net)} s-a-{self.stuck}"
        if self.gate is not None:
            return f"{base} @ gate{self.gate}.in{self.pin}"
        if self.dff is not None:
            return f"{base} @ dff{self.dff}.d"
        return base


def generate_faults(netlist: Netlist) -> list[StuckAtFault]:
    """The uncollapsed fault universe of ``netlist``.

    Stem faults on every driven net plus branch faults on every load of
    a multi-fanout net, both polarities.
    """
    faults: list[StuckAtFault] = []
    loads: dict[int, int] = {}
    for gate in netlist.gates:
        for nid in gate.inputs:
            loads[nid] = loads.get(nid, 0) + 1
    for dff in netlist.dffs:
        loads[dff.d] = loads.get(dff.d, 0) + 1

    driven: list[int] = list(netlist.input_bits)
    driven.extend(gate.output for gate in netlist.gates)
    driven.extend(dff.q for dff in netlist.dffs)
    for nid in driven:
        for stuck in (0, 1):
            faults.append(StuckAtFault(net=nid, stuck=stuck))
    for gate in netlist.gates:
        for pin, nid in enumerate(gate.inputs):
            if loads.get(nid, 0) > 1:
                for stuck in (0, 1):
                    faults.append(
                        StuckAtFault(
                            net=nid, stuck=stuck, gate=gate.gid, pin=pin
                        )
                    )
    for dff in netlist.dffs:
        if loads.get(dff.d, 0) > 1:
            for stuck in (0, 1):
                faults.append(
                    StuckAtFault(net=dff.d, stuck=stuck, dff=dff.fid)
                )
    return faults
