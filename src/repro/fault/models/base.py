"""The ``FaultModel`` protocol and the named fault-model registry.

A *fault model* decides what can break in a netlist: it enumerates the
fault universe, collapses structurally equivalent faults, and simulates
a fault list over packed stimuli by lowering each fault to the word
operations (``fault_diff`` cone diffs, static ``InjectionPlan``
overrides, plain ``eval_full`` sweeps) the :mod:`repro.engine` backends
already execute.  Models are pluggable by name — mirroring
:func:`repro.engine.register_engine` — so the campaign pipeline, the
grid workers and the CLI select one from configuration without
importing concrete classes.

A model implements four operations:

* ``generate(netlist)`` — the uncollapsed fault universe, in a
  deterministic order.
* ``collapse(netlist, faults=None)`` — representatives of structural
  equivalence classes (identity for models without collapsing rules).
* ``describe(fault, netlist)`` — a one-line human description of a
  fault.
* ``simulate(netlist, stimuli, faults=None, lanes=256, engine=None)``
  — first-detection records as a
  :class:`~repro.fault.coverage.FaultSimResult`.

Determinism contract: the fault universe and collapsed list must be
pure functions of the netlist and the model's knobs — never of the
stimuli — so grid planners can shard a fault list before any vectors
exist; and ``simulate`` must return bit-identical detection records on
every registered engine and any fault-list sharding.
"""

from __future__ import annotations

from repro.errors import FaultError
from repro.util.registry import Registry

#: The model used when none is selected explicitly.
DEFAULT_FAULT_MODEL = "stuck-at"


class FaultModel:
    """Base class for registered fault models.

    Subclasses set a non-empty ``name``, implement the four protocol
    methods, and validate their knobs (constructor keyword arguments)
    in ``__init__`` by raising :class:`FaultError`.
    """

    name: str = ""

    def generate(self, netlist) -> list:
        """The uncollapsed fault universe of ``netlist``."""
        raise NotImplementedError

    def collapse(self, netlist, faults: list | None = None) -> list:
        """Collapse ``faults`` (default: the universe) to representatives."""
        raise NotImplementedError

    def describe(self, fault, netlist) -> str:
        """One-line human description of ``fault``."""
        return str(fault)

    def simulate(self, netlist, stimuli: list[int],
                 faults: list | None = None, lanes: int = 256,
                 engine=None):
        """First-detection records for ``faults`` over packed stimuli."""
        raise NotImplementedError


# -- registry ----------------------------------------------------------------

#: name -> fault-model class.
FAULT_MODELS: dict[str, type] = {}


_REGISTRY = Registry("fault model", FaultError, entries=FAULT_MODELS)


def register_fault_model(cls: type | None = None, *,
                         replace: bool = False):
    """Class decorator adding ``cls`` to the registry under ``cls.name``.

    Mirrors :func:`repro.engine.register_engine`: registering a
    *different* class under a taken name raises :class:`FaultError`
    (a silent overwrite would let a plug-in hijack a built-in model by
    accident); ``replace=True`` overwrites explicitly; re-registering
    the same class is a no-op so module re-imports stay idempotent.
    """
    return _REGISTRY.register(cls, replace=replace)


def get_fault_model(name: str) -> type:
    """Look up a registered fault-model class by name."""
    return _REGISTRY.get(name)


def fault_model_names() -> tuple[str, ...]:
    return _REGISTRY.names()


def build_fault_model(model=None, knobs: dict | None = None):
    """Resolve a fault-model selection into a model instance.

    ``None`` means :data:`DEFAULT_FAULT_MODEL`.  A string resolves the
    registered class and instantiates it with ``knobs`` as keyword
    arguments (the model validates them).  Anything else is assumed to
    already be a model instance and passed through — in which case
    ``knobs`` must be ``None``: an instance carries its own.
    """
    if model is None:
        model = DEFAULT_FAULT_MODEL
    if isinstance(model, str):
        cls = get_fault_model(model)
        try:
            return cls(**dict(knobs or {}))
        except TypeError as exc:
            raise FaultError(
                f"invalid knobs for fault model {model!r}: {exc}"
            ) from None
    if knobs:
        raise FaultError(
            "fault-model knobs only apply when selecting a model by "
            "name; the given instance already carries its own"
        )
    return model


def first_lane(word: int) -> int | None:
    """Index of the lowest set bit, or ``None`` for an all-zero word.

    Shared detection-word helper: lane *i* is pattern (or fault
    machine) *i* everywhere in the fault layer.
    """
    if word == 0:
        return None
    return (word & -word).bit_length() - 1
