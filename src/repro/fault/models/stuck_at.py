"""The single stuck-at model, wrapped as a registered fault model.

This is the pinned reference behavior: it delegates to the exact
functions the fault layer used before the registry existed
(:func:`repro.fault.model.generate_faults`,
:func:`repro.fault.collapse.collapse_faults`, and the two simulators),
so existing configurations produce bit-identical fault lists and
detection records.
"""

from __future__ import annotations

from repro.fault.collapse import collapse_faults
from repro.fault.comb_sim import CombFaultSimulator
from repro.fault.model import StuckAtFault, generate_faults
from repro.fault.models.base import FaultModel, register_fault_model
from repro.fault.seq_sim import SeqFaultSimulator


@register_fault_model
class StuckAtModel(FaultModel):
    """Classical single stuck-at faults (stems + fanout branches)."""

    name = "stuck-at"

    def generate(self, netlist) -> list[StuckAtFault]:
        return generate_faults(netlist)

    def collapse(self, netlist,
                 faults: list | None = None) -> list[StuckAtFault]:
        return collapse_faults(netlist, faults)

    def describe(self, fault: StuckAtFault, netlist) -> str:
        return fault.describe(netlist)

    def simulate(self, netlist, stimuli: list[int],
                 faults: list | None = None, lanes: int = 256,
                 engine=None):
        if faults is None:
            faults = self.collapse(netlist)
        if netlist.dffs:
            return SeqFaultSimulator(
                netlist, faults, lanes, engine=engine
            ).simulate(stimuli)
        return CombFaultSimulator(netlist, faults, engine=engine).simulate(
            stimuli
        )
