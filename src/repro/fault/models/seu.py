"""Single-event upsets: transient one-cycle bit-flips.

A radiation-style transient corrupts one storage element (or, in a
purely combinational circuit, one net) for a single cycle; whether it
is ever *observed* depends on how the corruption propagates afterwards.
The fault universe pairs every site with a deterministic sample of
injection cycles, so the universe is a pure function of the netlist and
the model's knobs — never of the stimuli — which is what lets grid
planners shard the list before any vectors exist.  A fault whose cycle
lies beyond the test length is simply never activated.

Knobs (``CampaignConfig.fault_model_knobs`` / ``build_fault_model``):

* ``cycles`` — how many injection cycles to sample (default 8).
* ``stride`` — spacing between sampled cycles (default 7); cycle *j*
  of the sample is ``j * stride``, so the defaults probe cycles
  0, 7, 14, ... 49.

Execution:

* **Sequential**: one flipped DFF bit per (dff, cycle) pair.  Lanes
  are fault machines, as in :class:`repro.fault.SeqFaultSimulator`,
  but no :class:`~repro.engine.InjectionPlan` is needed at all: each
  lane's state bit is XOR-flipped once, at its scheduled cycle, and the
  corrupted state then evolves freely through plain ``eval_full``
  sweeps — transient by construction, persistent only through real
  feedback paths.
* **Combinational**: a single-event transient on one driven net during
  one pattern.  Pattern-parallel: per net, both stuck-at polarity
  difference words combine into the flip-difference word
  ``(diff_sa0 & good) | (diff_sa1 & ~good)`` — bit *t* set iff
  *inverting* the net is observed at an output under pattern *t* — and
  each (net, cycle) fault just tests its cycle's bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import build_engine
from repro.errors import FaultError, FaultSimError
from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault
from repro.fault.models.base import FaultModel, register_fault_model
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import unpack_patterns

DEFAULT_CYCLES = 8
DEFAULT_STRIDE = 7


@dataclass(frozen=True)
class SeuFault:
    """One transient bit-flip: ``net`` inverted during ``cycle``.

    ``net`` is a DFF output (state bit) in sequential circuits, any
    driven net in combinational ones; ``cycle`` is the 0-based clock
    cycle (or pattern index) of the upset.
    """

    net: int
    cycle: int

    def describe(self, netlist: Netlist) -> str:
        return f"{netlist.net_name(self.net)} seu @ cycle {self.cycle}"


@register_fault_model
class SeuModel(FaultModel):
    """Transient bit-flips at deterministically sampled cycles."""

    name = "seu"

    def __init__(self, cycles: int = DEFAULT_CYCLES,
                 stride: int = DEFAULT_STRIDE):
        if not isinstance(cycles, int) or cycles < 1:
            raise FaultError(
                f"seu 'cycles' knob must be a positive integer, "
                f"got {cycles!r}"
            )
        if not isinstance(stride, int) or stride < 1:
            raise FaultError(
                f"seu 'stride' knob must be a positive integer, "
                f"got {stride!r}"
            )
        self.cycles = cycles
        self.stride = stride

    def sampled_cycles(self) -> list[int]:
        """The deterministic injection schedule: j * stride per sample."""
        return [j * self.stride for j in range(self.cycles)]

    def generate(self, netlist: Netlist) -> list[SeuFault]:
        if netlist.dffs:
            sites = [dff.q for dff in netlist.dffs]
        else:
            sites = list(netlist.input_bits)
            sites.extend(gate.output for gate in netlist.gates)
        return [
            SeuFault(net=nid, cycle=cycle)
            for nid in sites
            for cycle in self.sampled_cycles()
        ]

    def collapse(self, netlist: Netlist,
                 faults: list | None = None) -> list[SeuFault]:
        """Identity: distinct (site, cycle) upsets are never equivalent
        structurally — equal observability is a property of the
        stimuli, which collapsing must not depend on."""
        if faults is None:
            faults = self.generate(netlist)
        return list(faults)

    def describe(self, fault: SeuFault, netlist: Netlist) -> str:
        return fault.describe(netlist)

    def simulate(self, netlist: Netlist, stimuli: list[int],
                 faults: list | None = None, lanes: int = 256,
                 engine=None) -> FaultSimResult:
        if faults is None:
            faults = self.collapse(netlist)
        if netlist.dffs:
            return self._simulate_seq(netlist, stimuli, faults, lanes,
                                      engine)
        return self._simulate_comb(netlist, stimuli, faults, engine)

    # -- combinational: single-event transients, pattern-parallel -------

    def _simulate_comb(self, netlist: Netlist, patterns: list[int],
                       faults: list, engine) -> FaultSimResult:
        count = len(patterns)
        if count == 0:
            return FaultSimResult(list(faults), [None] * len(faults), 0)
        engine = build_engine(engine)
        mask = (1 << count) - 1
        good = engine.eval_full(
            netlist, unpack_patterns(patterns, netlist.input_bits), mask
        )
        # Per distinct net, one flip-difference word serves every cycle
        # sample: bit t set iff inverting the net changes an output
        # under pattern t.  Built from both stuck-at polarities in one
        # batched call so the vector backend's row packing applies.
        nets = sorted({fault.net for fault in faults})
        lowered = [
            StuckAtFault(net=nid, stuck=stuck)
            for nid in nets
            for stuck in (0, 1)
        ]
        batch = getattr(engine, "fault_diff_batch", None)
        if batch is not None:
            words = batch(netlist, lowered, good, mask)
        else:
            words = [
                engine.fault_diff(netlist, sa, good, mask)
                for sa in lowered
            ]
        flip: dict[int, int] = {}
        for index, nid in enumerate(nets):
            diff_sa0, diff_sa1 = words[2 * index], words[2 * index + 1]
            flip[nid] = (diff_sa0 & good[nid]) | (diff_sa1 & ~good[nid] & mask)
        detection: list[int | None] = []
        for fault in faults:
            hit = (
                fault.cycle < count
                and (flip[fault.net] >> fault.cycle) & 1
            )
            detection.append(fault.cycle if hit else None)
        return FaultSimResult(list(faults), detection, count)

    # -- sequential: one flipped state bit per lane ---------------------

    def _simulate_seq(self, netlist: Netlist, stimuli: list[int],
                      faults: list, lanes: int,
                      engine) -> FaultSimResult:
        if lanes < 1:
            raise FaultSimError("lanes must be >= 1")
        engine = build_engine(engine)
        chunk_lanes = lanes * max(
            1, int(getattr(engine, "lane_batch", 1))
        )
        detection: list[int | None] = [None] * len(faults)
        for start in range(0, len(faults), chunk_lanes):
            chunk = faults[start : start + chunk_lanes]
            for offset, cycle in enumerate(
                self._run_chunk(netlist, engine, chunk, stimuli)
            ):
                detection[start + offset] = cycle
        return FaultSimResult(list(faults), detection, len(stimuli))

    def _run_chunk(self, netlist: Netlist, engine, chunk: list,
                   stimuli: list[int]) -> list[int | None]:
        mask = (1 << len(chunk)) - 1
        # cycle -> {state net -> lane bits to flip when entering it}
        flips: dict[int, dict[int, int]] = {}
        for lane, fault in enumerate(chunk):
            per_net = flips.setdefault(fault.cycle, {})
            per_net[fault.net] = per_net.get(fault.net, 0) | (1 << lane)

        state = {
            dff.q: mask if dff.reset_value else 0 for dff in netlist.dffs
        }
        good_state = {dff.q: dff.reset_value for dff in netlist.dffs}
        outputs = netlist.output_bits
        detect_cycle: list[int | None] = [None] * len(chunk)
        alive = mask

        for cycle, packed in enumerate(stimuli):
            # The upset strikes the state entering this cycle (cycle 0
            # flips the reset state).
            for nid, bits in flips.get(cycle, {}).items():
                state[nid] ^= bits
            single = unpack_patterns([packed], netlist.input_bits)
            inputs = {
                nid: mask if word else 0 for nid, word in single.items()
            }
            words = engine.eval_full(
                netlist, {**inputs, **state}, mask
            )
            good = engine.eval_full(
                netlist, {**single, **good_state}, 1
            )
            next_state = {dff.q: words[dff.d] for dff in netlist.dffs}
            good_next = {dff.q: good[dff.d] for dff in netlist.dffs}
            words = engine.eval_full(
                netlist, {**inputs, **next_state}, mask
            )
            good = engine.eval_full(
                netlist, {**single, **good_next}, 1
            )
            state, good_state = next_state, good_next

            diff = 0
            for nid in outputs:
                good_rep = mask if good[nid] else 0
                diff |= words[nid] ^ good_rep
            newly = diff & alive
            if newly:
                alive &= ~newly
                while newly:
                    low = newly & -newly
                    detect_cycle[low.bit_length() - 1] = cycle
                    newly ^= low
                if not alive:
                    break
        return detect_cycle
