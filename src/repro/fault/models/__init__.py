"""Pluggable fault models: what can break, enumerated and simulated.

* :mod:`repro.fault.models.base` — the :class:`FaultModel` protocol
  and the named registry (mirrors :mod:`repro.engine`)
* :mod:`repro.fault.models.stuck_at` — classical single stuck-at
  (the pinned reference: bit-identical to the pre-registry fault layer)
* :mod:`repro.fault.models.transition` — slow-to-rise/fall delay
  faults via launch/capture two-pattern tests
* :mod:`repro.fault.models.seu` — single-event upsets: transient
  bit-flips at deterministically sampled cycles
"""

from repro.fault.models.base import (
    DEFAULT_FAULT_MODEL,
    FAULT_MODELS,
    FaultModel,
    build_fault_model,
    fault_model_names,
    get_fault_model,
    register_fault_model,
)
from repro.fault.models.seu import SeuFault, SeuModel
from repro.fault.models.stuck_at import StuckAtModel
from repro.fault.models.transition import TransitionFault, TransitionModel

__all__ = [
    "DEFAULT_FAULT_MODEL",
    "FAULT_MODELS",
    "FaultModel",
    "SeuFault",
    "SeuModel",
    "StuckAtModel",
    "TransitionFault",
    "TransitionModel",
    "build_fault_model",
    "fault_model_names",
    "get_fault_model",
    "register_fault_model",
]
