"""Transition (delay) faults: slow-to-rise / slow-to-fall nets.

A transition fault delays one edge of one net past the cycle boundary.
Detecting ``slow-to-rise n`` takes a two-pattern launch/capture test:
the *launch* pattern sets ``n`` to 0, the *capture* pattern attempts
the 0->1 transition and propagates the (still stuck) old value to an
observed output.  A slow net therefore behaves, during the capture
evaluation, exactly like a stuck-at fault at its *initial* value — a
conditional stuck-at activated only when the launch value was the
initial value.  That lowering is what this model executes:

* **Combinational** (pattern-parallel): consecutive test patterns are
  the launch/capture pairs.  The capture-side difference word is the
  plain stuck-at cone diff (``fault_diff``/``fault_diff_batch``, so the
  batched ``vector`` backend applies); the launch condition is one
  shift of the good word (``good << 1`` holds each pattern's
  predecessor value); their AND is the detection word.
* **Sequential** (fault-parallel): faults ride the same lane-chunk
  machinery as :class:`repro.fault.SeqFaultSimulator` with one *static*
  :class:`~repro.engine.InjectionPlan` per chunk forcing each lane's
  net to its initial value — so the compiled backend bakes the chunk
  into code once, exactly like stuck-at chunks.  The launch condition
  is evaluated per cycle per lane against the *good* machine (the
  classical fault-free-launch approximation: a slow net misbehaves in
  a cycle iff its previous settled good value was the edge's initial
  value; cycle 0 has no launch), and each cycle's faulty evaluation
  merges the injected and the free words lane-wise under that
  activation mask.  The faulty machine's state is persistent: a
  corrupted value captured into a flip-flop keeps propagating through
  later (possibly inactive) cycles until it reaches an output, exactly
  like a stuck-at fault effect — which is what makes transition faults
  on state-cone nets observable in FSM-style circuits at all.

The fault universe is both edges on every driven net (stems only —
a per-branch delay distinction has no observable meaning here), and
collapsing chains through NOT/BUF gates on single-load nets: a buffer
preserves the slow edge, an inverter maps slow-to-rise to the output's
slow-to-fall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import InjectionPlan, build_engine
from repro.errors import FaultSimError
from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault
from repro.fault.models.base import (
    FaultModel,
    first_lane,
    register_fault_model,
)
from repro.netlist.cells import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import unpack_patterns


@dataclass(frozen=True)
class TransitionFault:
    """One slow edge on one net stem."""

    net: int
    rise: bool  # True: slow-to-rise (0->1 delayed); False: slow-to-fall

    @property
    def initial(self) -> int:
        """The launch value — the value the slow net is stuck at."""
        return 0 if self.rise else 1

    def describe(self, netlist: Netlist) -> str:
        edge = "rise" if self.rise else "fall"
        return f"{netlist.net_name(self.net)} slow-to-{edge}"


@register_fault_model
class TransitionModel(FaultModel):
    """Slow-to-rise/fall faults via launch/capture two-pattern tests."""

    name = "transition"

    def generate(self, netlist: Netlist) -> list[TransitionFault]:
        faults: list[TransitionFault] = []
        driven: list[int] = list(netlist.input_bits)
        driven.extend(gate.output for gate in netlist.gates)
        driven.extend(dff.q for dff in netlist.dffs)
        for nid in driven:
            for rise in (False, True):
                faults.append(TransitionFault(net=nid, rise=rise))
        return faults

    def collapse(self, netlist: Netlist,
                 faults: list | None = None) -> list[TransitionFault]:
        """Chain slow edges through single-load NOT/BUF gates."""
        if faults is None:
            faults = self.generate(netlist)
        universe = {(f.net, f.rise): f for f in faults}
        loads: dict[int, int] = {}
        for gate in netlist.gates:
            for nid in gate.inputs:
                loads[nid] = loads.get(nid, 0) + 1
        for dff in netlist.dffs:
            loads[dff.d] = loads.get(dff.d, 0) + 1

        parent: dict[tuple[int, bool], tuple[int, bool]] = {}

        def find(key):
            root = parent.setdefault(key, key)
            if root == key:
                return key
            root = find(root)
            parent[key] = root
            return root

        for gate in netlist.gates:
            if gate.gate_type not in (GateType.NOT, GateType.BUF):
                continue
            nid = gate.inputs[0]
            if loads.get(nid, 0) > 1:
                continue  # a shared net's delay is not the gate's alone
            inv = gate.gate_type is GateType.NOT
            for rise in (False, True):
                in_key = (nid, rise)
                out_key = (gate.output, rise ^ inv)
                if in_key in universe and out_key in universe:
                    ra, rb = find(in_key), find(out_key)
                    if ra != rb:
                        parent[ra] = rb

        classes: dict = {}
        for key in universe:
            classes.setdefault(find(key), []).append(key)
        representatives = [
            universe[min(members)] for members in classes.values()
        ]
        representatives.sort(key=lambda f: (f.net, f.rise))
        return representatives

    def describe(self, fault: TransitionFault, netlist: Netlist) -> str:
        return fault.describe(netlist)

    def simulate(self, netlist: Netlist, stimuli: list[int],
                 faults: list | None = None, lanes: int = 256,
                 engine=None) -> FaultSimResult:
        if faults is None:
            faults = self.collapse(netlist)
        if netlist.dffs:
            return self._simulate_seq(netlist, stimuli, faults, lanes,
                                      engine)
        return self._simulate_comb(netlist, stimuli, faults, engine)

    # -- combinational: pattern-parallel --------------------------------

    def _simulate_comb(self, netlist: Netlist, patterns: list[int],
                       faults: list, engine) -> FaultSimResult:
        count = len(patterns)
        if count == 0:
            return FaultSimResult(list(faults), [None] * len(faults), 0)
        engine = build_engine(engine)
        mask = (1 << count) - 1
        good = engine.eval_full(
            netlist, unpack_patterns(patterns, netlist.input_bits), mask
        )
        # Capture side: each slow net acts as stuck at its initial value.
        lowered = [
            StuckAtFault(net=fault.net, stuck=fault.initial)
            for fault in faults
        ]
        batch = getattr(engine, "fault_diff_batch", None)
        if batch is not None:
            words = batch(netlist, lowered, good, mask)
        else:
            words = [
                engine.fault_diff(netlist, sa, good, mask)
                for sa in lowered
            ]
        detection: list[int | None] = []
        for fault, word in zip(faults, words):
            # Bit t of (good << 1) is the net's value at pattern t-1 —
            # the launch value.  Pattern 0 has no launch partner.
            launch = good[fault.net] << 1
            act = (~launch if fault.rise else launch) & mask & ~1
            detection.append(first_lane(word & act))
        return FaultSimResult(list(faults), detection, count)

    # -- sequential: fault-parallel lane chunks -------------------------

    def _simulate_seq(self, netlist: Netlist, stimuli: list[int],
                      faults: list, lanes: int,
                      engine) -> FaultSimResult:
        if lanes < 1:
            raise FaultSimError("lanes must be >= 1")
        engine = build_engine(engine)
        chunk_lanes = lanes * max(
            1, int(getattr(engine, "lane_batch", 1))
        )
        detection: list[int | None] = [None] * len(faults)
        for start in range(0, len(faults), chunk_lanes):
            chunk = faults[start : start + chunk_lanes]
            for offset, cycle in enumerate(
                self._run_chunk(netlist, engine, chunk, stimuli)
            ):
                detection[start + offset] = cycle
        return FaultSimResult(list(faults), detection, len(stimuli))

    def _run_chunk(self, netlist: Netlist, engine, chunk: list,
                   stimuli: list[int]) -> list[int | None]:
        mask = (1 << len(chunk)) - 1
        # One static plan per chunk: every lane's net forced to its
        # initial value.  Activation is applied afterwards as a lane
        # mask on the output difference, so the plan (and the compiled
        # backend's generated code) never varies per cycle.
        plan = InjectionPlan(faults=list(chunk))
        for lane, fault in enumerate(chunk):
            clear, setm = plan.stem.get(fault.net, (0, 0))
            clear |= 1 << lane
            if fault.initial:
                setm |= 1 << lane
            plan.stem[fault.net] = (clear, setm)

        outputs = netlist.output_bits
        state = {
            dff.q: mask if dff.reset_value else 0 for dff in netlist.dffs
        }
        good_state = {dff.q: dff.reset_value for dff in netlist.dffs}
        prev_good: dict[int, int] | None = None  # settled values, cycle t-1
        detect_cycle: list[int | None] = [None] * len(chunk)
        alive = mask

        for cycle, packed in enumerate(stimuli):
            single = unpack_patterns([packed], netlist.input_bits)
            inputs = {
                nid: mask if word else 0 for nid, word in single.items()
            }
            pre = engine.eval_full(netlist, {**single, **good_state}, 1)
            good_next = {dff.q: pre[dff.d] for dff in netlist.dffs}
            good = engine.eval_full(netlist, {**single, **good_next}, 1)
            # Launch condition: the previous cycle's settled good value
            # was the slow edge's initial value.  Cycle 0 has no launch.
            act = 0
            if prev_good is not None:
                for lane, fault in enumerate(chunk):
                    if prev_good[fault.net] == fault.initial:
                        act |= 1 << lane
            prev_good = good
            nact = mask & ~act

            # Pre-clock: active lanes see their site forced; the merge
            # under ``act`` keeps the plan static per chunk.
            free = engine.eval_full(netlist, {**inputs, **state}, mask)
            if act:
                inj = engine.eval_injected(
                    netlist, plan, {**inputs, **state}, mask
                )
                next_state = {
                    dff.q: (inj[dff.d] & act) | (free[dff.d] & nact)
                    for dff in netlist.dffs
                }
            else:
                next_state = {
                    dff.q: free[dff.d] for dff in netlist.dffs
                }
            # Post-clock: captured corruption is now ordinary state
            # divergence and propagates on inactive lanes too.
            free = engine.eval_full(
                netlist, {**inputs, **next_state}, mask
            )
            if act:
                inj = engine.eval_injected(
                    netlist, plan, {**inputs, **next_state}, mask
                )
            state, good_state = next_state, good_next

            diff = 0
            for nid in outputs:
                good_rep = mask if good[nid] else 0
                word = free[nid]
                if act:
                    word = (inj[nid] & act) | (word & nact)
                diff |= word ^ good_rep
            newly = diff & alive
            if newly:
                alive &= ~newly
                while newly:
                    low = newly & -newly
                    detect_cycle[low.bit_length() - 1] = cycle
                    newly ^= low
                if not alive:
                    break
        return detect_cycle
