"""Pattern-parallel single-fault simulation for combinational circuits.

All patterns of the test set ride one arbitrary-precision integer per
net (lane *i* = pattern *i*).  For each collapsed fault the faulty
machine is re-evaluated only over the fault's output cone by the
selected :mod:`repro.engine` backend.  The XOR of faulty and good
primary-output words gives the per-pattern detection word; the lowest
set bit is the first-detecting pattern.
"""

from __future__ import annotations

import time

from repro.engine import build_engine
from repro.errors import FaultSimError
from repro.fault.collapse import collapse_faults
from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import unpack_patterns
from repro.obs import metrics as _metrics


class CombFaultSimulator:
    """Stuck-at fault simulation of a combinational netlist."""

    def __init__(self, netlist: Netlist,
                 faults: list[StuckAtFault] | None = None,
                 engine=None):
        if netlist.dffs:
            raise FaultSimError(
                "CombFaultSimulator requires a purely combinational "
                "netlist; use SeqFaultSimulator instead"
            )
        self._netlist = netlist
        self._engine = build_engine(engine)
        self._faults = (
            faults if faults is not None else collapse_faults(netlist)
        )

    @property
    def faults(self) -> list[StuckAtFault]:
        return self._faults

    @property
    def netlist(self) -> Netlist:
        return self._netlist

    @property
    def engine(self):
        return self._engine

    def simulate(self, patterns: list[int]) -> FaultSimResult:
        """Fault-simulate packed input patterns (MSB-first packing)."""
        count = len(patterns)
        if count == 0:
            return FaultSimResult(list(self._faults),
                                  [None] * len(self._faults), 0)
        mask = (1 << count) - 1
        netlist, engine = self._netlist, self._engine
        m = _metrics.active()
        started = time.monotonic() if m.enabled else 0.0
        good = engine.eval_full(
            netlist, unpack_patterns(patterns, netlist.input_bits), mask
        )
        # One batched call: backends that propagate many faults per
        # pass (the ``vector`` backend packs one fault per row) get the
        # whole collapsed list; engines without the optional batch hook
        # (duck-typed instances predating it) keep the fault_diff loop.
        batch = getattr(engine, "fault_diff_batch", None)
        if batch is not None:
            words = batch(netlist, self._faults, good, mask)
        else:
            words = [
                engine.fault_diff(netlist, fault, good, mask)
                for fault in self._faults
            ]
        if m.enabled:
            # Per-pass coarse counters: one simulate call is one full
            # eval plus one batched diff over the collapsed fault list
            # (the per-fault loop is too hot to touch).
            name = getattr(engine, "name", "engine")
            m.counter(f"engine.{name}.comb.passes")
            m.counter(f"engine.{name}.comb.patterns", count)
            m.counter(f"engine.{name}.comb.faults", len(self._faults))
            m.counter(f"engine.{name}.comb.diff_words", len(words))
            m.observe(
                f"engine.{name}.comb.seconds", time.monotonic() - started
            )
        detection = [_first_lane(word) for word in words]
        return FaultSimResult(list(self._faults), detection, count)


def _first_lane(word: int) -> int | None:
    if word == 0:
        return None
    return (word & -word).bit_length() - 1
