"""Pattern-parallel single-fault simulation for combinational circuits.

All patterns of the test set ride one arbitrary-precision integer per
net (lane *i* = pattern *i*).  For each collapsed fault the faulty
machine is re-evaluated only over the fault's output cone, in level
order, stopping early when the frontier dies out.  The XOR of faulty
and good primary-output words gives the per-pattern detection word; the
lowest set bit is the first-detecting pattern.
"""

from __future__ import annotations

import heapq

from repro.errors import FaultSimError
from repro.fault.collapse import collapse_faults
from repro.fault.coverage import FaultSimResult
from repro.fault.model import StuckAtFault
from repro.netlist.cells import eval_gate
from repro.netlist.levelize import levelize, topo_gates
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.simulate import unpack_patterns


class CombFaultSimulator:
    """Stuck-at fault simulation of a combinational netlist."""

    def __init__(self, netlist: Netlist,
                 faults: list[StuckAtFault] | None = None):
        if netlist.dffs:
            raise FaultSimError(
                "CombFaultSimulator requires a purely combinational "
                "netlist; use SeqFaultSimulator instead"
            )
        self._netlist = netlist
        self._order = topo_gates(netlist)
        self._levels = levelize(netlist)
        self._fanout: dict[int, list[tuple[Gate, int]]] = netlist.fanout_map()
        self._faults = (
            faults if faults is not None else collapse_faults(netlist)
        )
        self._outputs = netlist.output_bits

    @property
    def faults(self) -> list[StuckAtFault]:
        return self._faults

    @property
    def netlist(self) -> Netlist:
        return self._netlist

    def simulate(self, patterns: list[int]) -> FaultSimResult:
        """Fault-simulate packed input patterns (MSB-first packing)."""
        count = len(patterns)
        if count == 0:
            return FaultSimResult(list(self._faults),
                                  [None] * len(self._faults), 0)
        mask = (1 << count) - 1
        good = dict(unpack_patterns(patterns, self._netlist.input_bits))
        for gate in self._order:
            good[gate.output] = eval_gate(
                gate.gate_type, [good[n] for n in gate.inputs], mask
            )
        detection: list[int | None] = []
        for fault in self._faults:
            detect_word = self._propagate(fault, good, mask)
            detection.append(_first_lane(detect_word))
        return FaultSimResult(list(self._faults), detection, count)

    def _propagate(
        self, fault: StuckAtFault, good: dict[int, int], mask: int
    ) -> int:
        """Forward-propagate one fault; returns the PO difference word."""
        stuck_word = mask if fault.stuck else 0
        faulty: dict[int, int] = {}
        heap: list[tuple[int, int, Gate]] = []
        queued: set[int] = set()

        def enqueue(gate: Gate) -> None:
            if gate.gid not in queued:
                queued.add(gate.gid)
                heapq.heappush(
                    heap, (self._levels[gate.output], gate.gid, gate)
                )

        if fault.is_stem:
            if good.get(fault.net) == stuck_word:
                return 0  # fault never activated anywhere
            faulty[fault.net] = stuck_word
            for gate, _pin in self._fanout.get(fault.net, ()):
                enqueue(gate)
        else:
            # Branch fault: only one gate sees the stuck value.
            gates = self._netlist.gates
            if fault.gate is None or not 0 <= fault.gate < len(gates):
                raise FaultSimError(
                    f"fault references unknown gate {fault.gate}"
                )
            target = gates[fault.gate]
            inputs = []
            for pin, nid in enumerate(target.inputs):
                word = good[nid]
                if pin == fault.pin:
                    word = stuck_word
                inputs.append(word)
            out_word = eval_gate(target.gate_type, inputs, mask)
            if out_word == good[target.output]:
                return 0
            faulty[target.output] = out_word
            for gate, _pin in self._fanout.get(target.output, ()):
                enqueue(gate)

        while heap:
            _level, _gid, gate = heapq.heappop(heap)
            queued.discard(gate.gid)
            inputs = [faulty.get(n, good[n]) for n in gate.inputs]
            out_word = eval_gate(gate.gate_type, inputs, mask)
            previous = faulty.get(gate.output, good[gate.output])
            if out_word == previous:
                continue
            faulty[gate.output] = out_word
            for load, _pin in self._fanout.get(gate.output, ()):
                enqueue(load)

        detect = 0
        for nid in self._outputs:
            if nid in faulty:
                detect |= faulty[nid] ^ good[nid]
        # A stem fault directly on an output net detects wherever the
        # good value differs from the stuck value.
        if fault.is_stem and fault.net in self._outputs:
            detect |= good[fault.net] ^ stuck_word
        return detect & mask


def _first_lane(word: int) -> int | None:
    if word == 0:
        return None
    return (word & -word).bit_length() - 1
