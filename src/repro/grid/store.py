"""Persistent per-unit job store: the campaign's resume ledger.

One JSON file per finished :class:`~repro.grid.units.WorkUnit`, under a
``grid-<config fingerprint>-v<version>`` directory inside the campaign
cache directory — the same fingerprint scheme
:class:`repro.campaign.cache.ResultCache` uses for whole circuits, one
level finer.  The file name embeds the unit's spec digest, so a stored
result can never be replayed against a unit whose inputs changed, and a
fingerprint change (different seeds, budgets, engine, shard size)
misses cleanly into a sibling directory.

Writes are write-then-rename (crash-safe, like the result cache) and
happen as each unit completes, so a campaign killed mid-flight — even
mid-wave — resumes from every unit that finished.  Anything unreadable
is treated as a miss, never an error: a corrupt or truncated unit file
(a machine that died mid-write before the rename, a torn copy) is
skipped with one stderr warning and simply recomputed.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.errors import ConfigError
from repro.grid.units import WorkUnit
from repro.obs import metrics as _metrics

#: Bump when the stored payload's shape or semantics change.
#: v2: mutant-part results carry per-kill ``witnesses`` records.
STORE_VERSION = 2


class JobStore:
    """Load/store per-unit results under a campaign cache directory."""

    def __init__(self, directory, config):
        self._dir = (
            Path(directory)
            / f"grid-{config.fingerprint()}-v{STORE_VERSION}"
        )
        try:
            self._dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigError(f"unusable job-store directory: {exc}") from exc
        self._warned: set[str] = set()

    @property
    def directory(self) -> Path:
        return self._dir

    def path(self, unit: WorkUnit) -> Path:
        return self._dir / f"{unit.uid}.json"

    def load(self, unit: WorkUnit) -> dict | None:
        """The stored result for ``unit``, or ``None`` on any miss.

        A file that exists but does not parse (truncated mid-write on
        a crashed machine, torn copy) is a miss too — reported once on
        stderr per file, then silently recomputed; a resume must never
        crash on a damaged ledger.
        """
        path = self.path(unit)
        m = _metrics.active()
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            if m.enabled:
                m.counter("store.unit.miss")
            return None
        try:
            payload = json.loads(text)
            result = payload["result"]
        except (ValueError, TypeError, KeyError) as exc:
            self._warn_corrupt(path, exc)
            if m.enabled:
                m.counter("store.unit.miss")
                m.counter("store.unit.corrupt")
            return None  # corrupt entry: recompute
        if not isinstance(result, dict):
            self._warn_corrupt(path, "result is not an object")
            if m.enabled:
                m.counter("store.unit.miss")
                m.counter("store.unit.corrupt")
            return None
        if m.enabled:
            m.counter("store.unit.hit")
        return result

    def _warn_corrupt(self, path: Path, reason) -> None:
        """One stderr warning per corrupt unit file, then recompute."""
        if path.name in self._warned:
            return
        self._warned.add(path.name)
        print(
            f"job store: skipping corrupt unit file {path} ({reason}); "
            f"the unit will be recomputed",
            file=sys.stderr,
            flush=True,
        )

    def store(self, unit: WorkUnit, result: dict, seconds: float) -> None:
        """Persist one finished unit (atomic write-then-rename)."""
        target = self.path(unit)
        descriptor = unit.to_dict()
        # The spec (vectors, mutant ids) is covered by the digest in the
        # file name; storing it again would bloat the ledger without
        # adding identity.
        descriptor.pop("spec", None)
        payload = json.dumps(
            {
                "unit": descriptor,
                "digest": unit.digest,
                "seconds": seconds,
                "result": result,
            },
            sort_keys=True,
        )
        tmp = target.with_name(target.name + f".{os.getpid()}.tmp")
        try:
            tmp.write_text(payload, encoding="utf-8")
            tmp.replace(target)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        m = _metrics.active()
        if m.enabled:
            m.counter("store.unit.store")

    def entries(self) -> list[dict]:
        """Descriptors of every stored unit (for ``repro grid`` listing)."""
        return self.read_directory(self._dir)

    @staticmethod
    def read_directory(directory) -> list[dict]:
        """Stored-unit descriptors in any store directory.

        The single parser behind :meth:`entries` and the CLI's
        ``repro grid --store`` listing (which also scans directories
        without knowing the fingerprint); unreadable files are
        skipped, never an error.
        """
        rows: list[dict] = []
        for path in sorted(Path(directory).glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                unit = payload["unit"]
            except (OSError, ValueError, TypeError, KeyError):
                continue
            if isinstance(unit, dict):
                unit = dict(unit)
                unit["seconds"] = payload.get("seconds")
                rows.append(unit)
        return rows
