"""Shard planners: decompose campaign operations into work units.

Planning is deliberately *execution-independent*: the partition of an
axis depends only on the axis length and the fingerprinted
``grid_shard`` knob — never on the worker count — so a campaign killed
on two workers resumes on eight without invalidating a single stored
unit, and the job-store keys stay stable across machines.
"""

from __future__ import annotations

from repro.errors import GridError
from repro.grid.units import (
    EQUIV_PART,
    FAULT_CHUNK,
    MUTANT_PART,
    WorkUnit,
)

#: Auto-sharding splits an axis into at most this many units.  Fixed
#: (rather than derived from the worker count) so unit boundaries are a
#: pure function of the fingerprinted configuration.
AUTO_UNITS = 16


def shard_size(total: int, configured: int) -> int:
    """Items per unit: the configured size, or an auto split.

    ``configured == 0`` (the default) splits the axis into up to
    :data:`AUTO_UNITS` equal chunks, which keeps per-unit overhead
    negligible while feeding typical worker counts.
    """
    if configured < 0:
        raise GridError(f"shard size must be >= 0, got {configured}")
    if configured:
        return configured
    return max(1, -(-total // AUTO_UNITS))


def shard_ranges(total: int, size: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` ranges covering ``range(total)``."""
    if size < 1:
        raise GridError(f"shard size must be >= 1, got {size}")
    return [
        (start, min(start + size, total)) for start in range(0, total, size)
    ]


def plan_fault_sim(
    circuit: str,
    key: str,
    num_faults: int,
    vectors: list[int],
    shard: int = 0,
) -> list[WorkUnit]:
    """Fault-validation units: contiguous chunks of the collapsed list.

    Each unit fault-simulates the whole vector set over its chunk; the
    merge concatenates the per-chunk detection lists in index order,
    which is bit-identical to serial because every fault's detection is
    independent of how faults are grouped (pattern-parallel comb,
    lane-layout-independent seq).
    """
    ranges = shard_ranges(num_faults, shard_size(num_faults, shard))
    vectors = list(vectors)
    return [
        WorkUnit(
            circuit=circuit,
            stage="fault-validation",
            key=key,
            kind=FAULT_CHUNK,
            index=index,
            total=len(ranges),
            spec={
                "start": start,
                "stop": stop,
                "num_faults": num_faults,
                "vectors": vectors,
            },
        )
        for index, (start, stop) in enumerate(ranges)
    ]


def plan_kill_analysis(
    circuit: str,
    key: str,
    mids: list[int],
    vectors: list[int],
    shard: int = 0,
) -> list[WorkUnit]:
    """Kill-analysis units: partitions of the mutant-id list.

    The merge is a pure set union — each mutant's verdict against a
    fixed vector set is independent of every other mutant.
    """
    ranges = shard_ranges(len(mids), shard_size(len(mids), shard))
    vectors = list(vectors)
    return [
        WorkUnit(
            circuit=circuit,
            stage="kill-analysis",
            key=key,
            kind=MUTANT_PART,
            index=index,
            total=len(ranges),
            spec={"mids": list(mids[start:stop]), "vectors": vectors},
        )
        for index, (start, stop) in enumerate(ranges)
    ]


def plan_equivalence(
    circuit: str,
    mids: list[int],
    shard: int = 0,
) -> list[WorkUnit]:
    """Equivalence-sweep units: partitions of the mutant population.

    The stimulus set is derived in the worker from the fingerprinted
    ``(seed, equivalence_budget)`` pair, so the spec carries only the
    mutant ids; survivors and kill cycles merge by union.
    """
    ranges = shard_ranges(len(mids), shard_size(len(mids), shard))
    return [
        WorkUnit(
            circuit=circuit,
            stage="equivalence",
            key="population",
            kind=EQUIV_PART,
            index=index,
            total=len(ranges),
            spec={"mids": list(mids[start:stop])},
        )
        for index, (start, stop) in enumerate(ranges)
    ]
