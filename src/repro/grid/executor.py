"""The grid executor: plan → (resume) → schedule → merge.

:class:`GridExecutor` is the object a :class:`repro.campaign.Campaign`
threads through its circuit contexts when ``config.grid`` names a
scheduler.  Each campaign operation becomes one *wave*: the planner
shards the axis into work units, completed units are loaded from the
:class:`~repro.grid.store.JobStore` (when resuming), the remainder runs
on the scheduler, every fresh result is persisted as it lands, and the
merged result is bit-identical to the serial computation.

The executor owns one scheduler instance for the whole campaign, so
pooled backends keep their workers (and the workers their memoized
labs) warm across waves; call :meth:`close` — ``Campaign.run`` does,
in a ``finally`` — to release them.
"""

from __future__ import annotations

from repro.campaign.events import CampaignEvents
from repro.fault.coverage import FaultSimResult
from repro.grid.planner import plan_equivalence, plan_fault_sim, plan_kill_analysis
from repro.grid.scheduler import build_scheduler
from repro.grid.store import JobStore
from repro.grid.units import (
    WorkUnit,
    merge_detections,
    merge_equivalence,
    merge_killed,
    merge_witnesses,
)
from repro.mutation.score import EquivalenceAnalysis, equivalence_stimuli
from repro.obs import metrics as _metrics

_NULL_EVENTS = CampaignEvents()


class GridExecutor:
    """Executes sharded campaign operations on a pluggable scheduler."""

    def __init__(self, config, events=None, resume: bool = False):
        self._config = config
        self._events = events if events is not None else _NULL_EVENTS
        self._scheduler = build_scheduler(config.grid, config.grid_workers)
        self._store = (
            JobStore(config.cache_dir, config) if config.cache_dir else None
        )
        self._resume = resume

    @property
    def scheduler(self):
        return self._scheduler

    @property
    def store(self) -> JobStore | None:
        return self._store

    def close(self) -> None:
        """Shut down the scheduler's pooled resources."""
        self._scheduler.close()

    # -- operations ----------------------------------------------------------

    def fault_sim(self, lab, vectors: list[int], key: str) -> FaultSimResult:
        """Sharded fault validation, bit-identical to ``lab.fault_sim``.

        The fault list (and its model) lives in the fingerprinted
        config every worker rebuilds, so units carry only index ranges.
        Planning and sharding run over the post-prune ``sim_faults``
        list (identical to ``faults`` unless ``prune_untestable`` is
        on); the merged detections are re-inflated to the full universe
        by the lab, exactly like the serial path.
        """
        units = plan_fault_sim(
            lab.name, key, len(lab.sim_faults), vectors,
            self._config.grid_shard,
        )
        results = self._dispatch(units)
        return lab.expand_detection(FaultSimResult(
            list(lab.sim_faults), merge_detections(results), len(vectors)
        ))

    def killed_mids(self, lab, mutants, vectors: list[int], key: str) -> set[int]:
        """Sharded kill analysis over an explicit mutant list."""
        return self.kill_analysis(lab, mutants, vectors, key)[0]

    def kill_analysis(
        self, lab, mutants, vectors: list[int], key: str
    ) -> tuple[set[int], dict[int, tuple[int | None, str]]]:
        """Sharded kill analysis plus the per-kill replay witnesses."""
        units = plan_kill_analysis(
            lab.name, key, [m.mid for m in mutants], vectors,
            self._config.grid_shard,
        )
        results = self._dispatch(units)
        return merge_killed(results), merge_witnesses(results)

    def equivalence(self, lab) -> EquivalenceAnalysis:
        """Sharded budgeted equivalence sweep over the population."""
        config = self._config
        units = plan_equivalence(
            lab.name, [m.mid for m in lab.all_mutants], config.grid_shard
        )
        survivors, kill_cycle = merge_equivalence(self._dispatch(units))
        # The stimulus metadata (actual length, exhaustive flag) is a
        # cheap pure-RNG derivation; the sweeps themselves ran sharded.
        stimuli, exhaustive = equivalence_stimuli(
            lab.design, config.equivalence_budget, config.seed
        )
        return EquivalenceAnalysis(
            equivalent_mids=survivors,
            budget=len(stimuli),
            seed=config.seed,
            exhaustive=exhaustive,
            kill_cycle=kill_cycle,
        )

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, units: list[WorkUnit]) -> list[dict]:
        """Run one wave of units; results come back in plan order."""
        events = self._events
        m = _metrics.active()
        results: list[dict | None] = [None] * len(units)
        pending: list[int] = []
        for index, unit in enumerate(units):
            cached = (
                self._store.load(unit)
                if (self._store is not None and self._resume)
                else None
            )
            if cached is not None:
                results[index] = cached
                if m.enabled:
                    m.counter("grid.unit.cached")
                events.on_unit_result(unit, cached)
                events.on_unit_done(unit, 0.0, cached=True)
            else:
                pending.append(index)
        if pending:
            position = {units[index].uid: index for index in pending}

            def on_start(unit: WorkUnit) -> None:
                events.on_unit_start(unit)

            def on_done(unit: WorkUnit, seconds: float, result: dict) -> None:
                # Persist before reporting, so a hook that aborts the
                # run cannot lose a finished unit.
                if self._store is not None:
                    self._store.store(unit, result, seconds)
                results[position[unit.uid]] = result
                if m.enabled:
                    m.counter("grid.unit.done")
                    m.observe("grid.unit.seconds", seconds)
                events.on_unit_result(unit, result)
                events.on_unit_done(unit, seconds)

            self._scheduler.run(
                [units[index] for index in pending],
                self._config,
                on_start=on_start,
                on_done=on_done,
            )
        return results  # type: ignore[return-value]
