"""repro.grid — sharded work-unit execution with a resumable job store.

The campaign flow is embarrassingly parallel *inside* a circuit: every
collapsed fault's detection and every mutant's verdict is independent
of its neighbours.  This package decomposes the heavy per-circuit
operations — stuck-at validation, whole-population kill analysis, the
budgeted equivalence sweep — into deterministic, order-independent
:class:`WorkUnit` shards whose merges are pure unions/concatenations,
so any scheduler reproduces the serial campaign bit for bit::

    from repro.campaign import Campaign, CampaignConfig

    config = CampaignConfig(grid="process", grid_workers=4,
                            cache_dir="cache/")
    result = Campaign(config).run(["c432"])          # sharded inside c432
    Campaign(config).run(["c432"], resume=True)      # reuse finished units

Pieces:

* :class:`WorkUnit` (:mod:`repro.grid.units`) — one shard: circuit ×
  stage × partition, with a spec digest as identity.
* Planners (:mod:`repro.grid.planner`) — fault chunks and mutant
  partitions, sized by the fingerprinted ``grid_shard`` knob only
  (never by worker count), so resumes survive re-sizing the pool.
* Schedulers (:mod:`repro.grid.scheduler`) — named registry:
  ``serial`` reference, ``thread`` pool, ``process`` work-stealing
  pool with a graceful ``KeyboardInterrupt`` drain, and ``remote``
  (units dispatched to a :mod:`repro.net` coordinator over HTTP).
* :class:`JobStore` (:mod:`repro.grid.store`) — JSON-per-unit ledger
  under the campaign cache's fingerprint scheme; powers
  ``repro run --resume``.
* :class:`GridExecutor` (:mod:`repro.grid.executor`) — plan → resume →
  schedule → merge; what the campaign stages dispatch through.
"""

from repro.grid.executor import GridExecutor
from repro.grid.planner import (
    AUTO_UNITS,
    plan_equivalence,
    plan_fault_sim,
    plan_kill_analysis,
    shard_ranges,
    shard_size,
)
from repro.grid.scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULERS,
    ProcessScheduler,
    RemoteScheduler,
    Scheduler,
    SerialScheduler,
    ThreadScheduler,
    build_scheduler,
    get_scheduler,
    register_scheduler,
    scheduler_names,
)
from repro.grid.store import STORE_VERSION, JobStore
from repro.grid.units import (
    EQUIV_PART,
    FAULT_CHUNK,
    MUTANT_PART,
    UNIT_KINDS,
    WorkUnit,
    merge_detections,
    merge_equivalence,
    merge_killed,
    merge_witnesses,
)
from repro.grid.worker import execute_unit, process_entry

__all__ = [
    "AUTO_UNITS",
    "DEFAULT_SCHEDULER",
    "EQUIV_PART",
    "FAULT_CHUNK",
    "GridExecutor",
    "JobStore",
    "MUTANT_PART",
    "ProcessScheduler",
    "RemoteScheduler",
    "SCHEDULERS",
    "STORE_VERSION",
    "Scheduler",
    "SerialScheduler",
    "ThreadScheduler",
    "UNIT_KINDS",
    "WorkUnit",
    "build_scheduler",
    "execute_unit",
    "get_scheduler",
    "merge_detections",
    "merge_equivalence",
    "merge_killed",
    "merge_witnesses",
    "plan_equivalence",
    "plan_fault_sim",
    "plan_kill_analysis",
    "process_entry",
    "register_scheduler",
    "scheduler_names",
    "shard_ranges",
    "shard_size",
]
