"""Scheduler backends: how planned work units get executed.

Four backends ship with the library, registered by name (mirroring
:mod:`repro.engine` and :mod:`repro.sampling.registry`):

* ``serial`` — the reference: units run inline, in plan order.  Still
  worthwhile on one worker because every finished unit lands in the
  job store, making a killed campaign resumable at unit granularity.
* ``thread`` — a persistent :class:`~concurrent.futures.ThreadPoolExecutor`.
  Python-level gate evaluation holds the GIL, so this backend pays off
  with engines that release it (the numpy-backed ``vector`` engine) or
  once unit work is I/O-bound.
* ``process`` — a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
  fed from one shared queue, so idle workers steal the next pending
  unit and stragglers never serialize the tail.  Workers rebuild
  per-circuit state through the memoized lab lookup (synthesis is paid
  once per circuit per worker) and stream ``(seconds, result)``
  payloads back as futures complete.
* ``remote`` — units go to a :mod:`repro.net` coordinator over HTTP
  and execute on whatever worker daemons are attached, on any machine.
  Needs ``config.coordinator`` (``--coordinator http://host:port``).

All backends call ``on_done`` as each unit finishes — *before*
returning — so the executor can persist results incrementally.  On
any abort (:class:`KeyboardInterrupt`, a unit raising in its worker,
a broken pool) the pools drain gracefully: pending units are
cancelled, already-finished futures are still harvested through
``on_done`` (and therefore reach the job store), and the exception is
re-raised for the caller.

Determinism: schedulers affect only *where/when* units run.  Results
are reassembled in plan order by the caller, and every unit is a pure
function of its spec, so all backends are bit-identical by contract.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

from repro.errors import GridError
from repro.grid.units import WorkUnit
from repro.grid.worker import execute_unit, process_entry
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.util.registry import Registry

DEFAULT_SCHEDULER = "serial"


class Scheduler:
    """A named policy for executing planned work units.

    ``run`` executes ``units`` and returns their result dicts in the
    same order; ``on_start(unit)`` / ``on_done(unit, seconds, result)``
    fire per unit (``on_start`` at submission time for pooled
    backends).  Pools persist across ``run`` calls — one campaign
    dispatches many small waves — until :meth:`close`.
    """

    name: str = ""

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise GridError(f"grid workers must be >= 1, got {workers}")
        self.workers = workers

    def run(self, units, config, on_start=None, on_done=None) -> list[dict]:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (idempotent)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} workers={self.workers}>"


#: name -> scheduler class.
SCHEDULERS: dict[str, type[Scheduler]] = {}


_REGISTRY = Registry("grid scheduler", GridError, entries=SCHEDULERS)


def register_scheduler(cls: type[Scheduler] | None = None, *,
                       replace: bool = False):
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    return _REGISTRY.register(cls, replace=replace)


def get_scheduler(name: str) -> type[Scheduler]:
    """Look up a registered scheduler class by name."""
    return _REGISTRY.get(name)


def scheduler_names() -> tuple[str, ...]:
    return _REGISTRY.names()


def build_scheduler(name: str, workers: int = 1) -> Scheduler:
    """Instantiate the registered scheduler called ``name``."""
    return get_scheduler(name)(workers)


@register_scheduler
class SerialScheduler(Scheduler):
    """Units run inline, in plan order (the pinned reference)."""

    name = "serial"

    def run(self, units, config, on_start=None, on_done=None) -> list[dict]:
        results: list[dict] = []
        for unit in units:
            if on_start is not None:
                on_start(unit)
            started = time.monotonic()
            result = execute_unit(unit, config)
            if on_done is not None:
                on_done(unit, time.monotonic() - started, result)
            results.append(result)
        return results


class _PooledScheduler(Scheduler):
    """Shared future-draining logic for the thread/process pools."""

    def _pool(self):
        raise NotImplementedError

    def _submit(self, pool, unit: WorkUnit, config) -> Future:
        raise NotImplementedError

    @staticmethod
    def _payload(future: Future) -> tuple[float, dict]:
        """(seconds, result) from a finished future.

        Worker envelopes may carry a ``metrics`` snapshot (telemetry
        collected in the worker process) and a ``spans`` trace buffer;
        both are folded into the parent's active registry/tracer here,
        at harvest time.
        """
        payload = future.result()
        snapshot = payload.get("metrics")
        if snapshot:
            _metrics.active().merge(snapshot)
        spans = payload.get("spans")
        if spans:
            _trace.active().absorb(spans)
        return payload["seconds"], payload["result"]

    def run(self, units, config, on_start=None, on_done=None) -> list[dict]:
        units = list(units)
        if not units:
            return []
        pool = self._pool()
        futures: dict[Future, int] = {}
        for index, unit in enumerate(units):
            if on_start is not None:
                on_start(unit)
            futures[self._submit(pool, unit, config)] = index
        results: list[dict | None] = [None] * len(units)
        try:
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    seconds, result = self._payload(future)
                    results[index] = result
                    if on_done is not None:
                        on_done(units[index], seconds, result)
        except BaseException:
            # KeyboardInterrupt, a unit raising in its worker, a
            # broken pool: either way the wave is over — drain so
            # every *finished* unit still reaches on_done (and hence
            # the job store) before the exception propagates.
            self._drain(units, futures, results, on_done)
            raise
        return results  # type: ignore[return-value]

    def _drain(self, units, futures, results, on_done) -> None:
        """Graceful abort: cancel the queue, harvest finished units."""
        for future in futures:
            future.cancel()
        for future, index in futures.items():
            if results[index] is not None or not future.done() or (
                future.cancelled()
            ):
                continue
            try:
                seconds, result = self._payload(future)
            except BaseException:
                continue  # the worker itself was interrupted mid-unit
            results[index] = result
            if on_done is not None:
                try:
                    on_done(units[index], seconds, result)
                except Exception:
                    # Drain persistence is best-effort: a store that
                    # fails mid-abort must neither stop the harvest of
                    # the remaining finished units nor supplant the
                    # original exception (the unit just recomputes on
                    # resume).
                    continue
        self.close()


@register_scheduler
class ThreadScheduler(_PooledScheduler):
    """A persistent thread pool sharing the parent's labs.

    Pays off with engines that release the GIL (numpy ``vector``);
    pure-Python engines serialize on the interpreter lock and should
    prefer ``process``.
    """

    name = "thread"

    def __init__(self, workers: int = 1):
        super().__init__(workers)
        self._executor: ThreadPoolExecutor | None = None

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-grid",
            )
        return self._executor

    def _submit(self, pool, unit, config) -> Future:
        def call() -> dict:
            started = time.monotonic()
            result = execute_unit(unit, config)
            return {"seconds": time.monotonic() - started, "result": result}

        return pool.submit(call)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


@register_scheduler
class RemoteScheduler(Scheduler):
    """Units execute on workers attached to a repro.net coordinator.

    The wave protocol: submit every unit of the wave (with the config)
    to the coordinator in one POST, then poll the wave's completion
    log with a ``since`` cursor, firing ``on_done`` for each newly
    landed unit — the same incremental-persistence contract as the
    local pools.  Parallelism is however many workers are attached to
    the coordinator; the ``workers`` count is ignored.  Results come
    back in plan order, and since every unit is a pure function of its
    spec, the output is bit-identical to ``serial`` no matter which
    machine computed what, or how often (lease reassignment can make
    delivery at-least-once).

    A unit that *raises* on a worker fails the wave with a
    :class:`~repro.errors.GridError`, after harvesting every other
    finished unit in the log — matching the local drain semantics.  An
    abort (``KeyboardInterrupt``) cancels the wave so the coordinator
    drops its pending units.
    """

    name = "remote"

    def __init__(self, workers: int = 1):
        super().__init__(workers)
        self._client = None

    def _coordinator(self, config):
        from repro.net.client import CoordinatorClient

        url = getattr(config, "coordinator", None)
        if not url:
            raise GridError(
                "the remote scheduler needs a coordinator URL: pass "
                "--coordinator http://host:port (or set the "
                "'coordinator' config option)"
            )
        if self._client is None or self._client.url != url.rstrip("/"):
            self._client = CoordinatorClient(url)
        return self._client

    def run(self, units, config, on_start=None, on_done=None) -> list[dict]:
        from repro.net.protocol import DEFAULT_POLL_INTERVAL

        units = list(units)
        if not units:
            return []
        client = self._coordinator(config)
        for unit in units:
            if on_start is not None:
                on_start(unit)
        wave = client.submit_wave(
            [unit.to_dict() for unit in units], config.to_dict()
        )
        wid = wave["wave"]
        results: list[dict | None] = [None] * len(units)
        done = 0
        since = 0
        try:
            while done < len(units):
                status = client.wave_status(wid, since)
                since = status["next"]
                failure = None
                for record in status["log"]:
                    index = record["index"]
                    if "error" in record:
                        failure = failure or GridError(
                            f"unit {record['uid']} failed on worker "
                            f"{record['worker']}: {record['error']}"
                        )
                        continue
                    results[index] = record["result"]
                    done += 1
                    snapshot = record.get("metrics")
                    if snapshot:
                        _metrics.active().merge(snapshot)
                    spans = record.get("spans")
                    if spans:
                        _trace.active().absorb(spans)
                    if on_done is not None:
                        on_done(
                            units[index],
                            float(record.get("seconds") or 0.0),
                            record["result"],
                        )
                if failure is not None:
                    raise failure
                if done < len(units):
                    time.sleep(DEFAULT_POLL_INTERVAL)
        except BaseException:
            # The wave is over either way: drop its pending units so
            # attached workers go idle instead of computing for no one.
            try:
                client.cancel_wave(wid)
            except Exception:
                pass
            raise
        return results  # type: ignore[return-value]


@register_scheduler
class ProcessScheduler(_PooledScheduler):
    """A persistent work-stealing process pool.

    All units go onto one shared queue; idle workers pull (steal) the
    next pending unit, so shards of uneven cost balance themselves.
    """

    name = "process"

    def __init__(self, workers: int = 1):
        super().__init__(workers)
        self._executor: ProcessPoolExecutor | None = None
        self._config_data: dict | None = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def _submit(self, pool, unit, config) -> Future:
        if self._config_data is None:
            self._config_data = config.to_dict()
        return pool.submit(process_entry, unit.to_dict(), self._config_data)

    def run(self, units, config, on_start=None, on_done=None) -> list[dict]:
        self._config_data = None  # re-serialize per wave, configs may differ
        return super().run(units, config, on_start=on_start, on_done=on_done)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
