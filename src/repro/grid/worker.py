"""Work-unit execution: the same code path in every scheduler.

:func:`execute_unit` turns one :class:`~repro.grid.units.WorkUnit` into
a plain JSON-serializable result dict.  It rebuilds per-circuit state
through the memoized :func:`repro.experiments.context.get_lab`, so a
process worker pays synthesis once per circuit and amortizes it over
every subsequent unit, while the serial and thread schedulers share the
parent's lab outright.

:func:`process_entry` is the top-level function a
:class:`~concurrent.futures.ProcessPoolExecutor` pickles: it rebuilds
the config from plain data, times the unit, and ships the timing back
so the parent can stream accurate ``on_unit_done`` events.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextlib import ExitStack

from repro.errors import GridError
from repro.grid.units import EQUIV_PART, FAULT_CHUNK, MUTANT_PART, WorkUnit

#: Good-machine reference responses, shared by every unit of a wave.
#: All units of one kill-analysis (or equivalence) wave replay the same
#: stimulus set, and mutant sweeps only need the *reference* once — so
#: it is memoized per (circuit, stimuli) instead of recomputed per
#: partition.  Keyed purely by design-determining inputs (the
#: behavioural mutation engine does not depend on the netlist backend);
#: bounded so long campaigns cannot grow it without limit.
_REFERENCE_MEMO: OrderedDict = OrderedDict()
_REFERENCE_MEMO_MAX = 8
_REFERENCE_LOCK = threading.Lock()


def _memoized_reference(key: tuple, compute):
    with _REFERENCE_LOCK:
        if key in _REFERENCE_MEMO:
            _REFERENCE_MEMO.move_to_end(key)
            return _REFERENCE_MEMO[key]
        value = compute()
        _REFERENCE_MEMO[key] = value
        while len(_REFERENCE_MEMO) > _REFERENCE_MEMO_MAX:
            _REFERENCE_MEMO.popitem(last=False)
        return value


def execute_unit(unit: WorkUnit, config) -> dict:
    """Compute one work unit; returns a JSON-serializable result."""
    from repro.experiments.context import get_lab
    from repro.mutation.score import equivalence_stimuli

    lab = get_lab(unit.circuit, config.lab_config())

    if unit.kind == FAULT_CHUNK:
        spec = unit.spec
        if len(lab.sim_faults) != spec["num_faults"]:
            raise GridError(
                f"unit {unit.uid}: fault list drifted "
                f"({len(lab.sim_faults)} != {spec['num_faults']})"
            )
        # The lab's fault model (and post-prune list) is rebuilt from
        # the same fingerprinted config on every worker, so the slice
        # is the same one the planner sharded — no model tag in the
        # unit spec.
        faults = lab.sim_faults[spec["start"]:spec["stop"]]
        result = lab.fault_model.simulate(
            lab.netlist,
            spec["vectors"],
            faults,
            config.fault_lanes,
            engine=config.engine,
        )
        return {"detection": result.detection}

    if unit.kind == MUTANT_PART:
        wanted = set(unit.spec["mids"])
        # Population order, so the relative run order inside a partition
        # matches the serial sweep (the union is order-free regardless).
        mutants = [m for m in lab.all_mutants if m.mid in wanted]
        if len(mutants) != len(wanted):
            raise GridError(
                f"unit {unit.uid}: {len(wanted) - len(mutants)} mutant "
                f"id(s) not in the population"
            )
        vectors = unit.spec["vectors"]
        reference = _memoized_reference(
            ("kill", unit.circuit, tuple(vectors)),
            lambda: lab.engine.reference_outputs(vectors),
        )
        records = lab.engine.run_all(mutants, vectors, reference)
        return {
            "killed": sorted(r.mid for r in records if r.killed),
            # JSON object keys are strings; the merge converts back.
            "witnesses": {
                str(r.mid): [r.cycle, r.reason]
                for r in records
                if r.killed
            },
        }

    if unit.kind == EQUIV_PART:
        wanted = set(unit.spec["mids"])
        mutants = [m for m in lab.all_mutants if m.mid in wanted]
        if len(mutants) != len(wanted):
            raise GridError(
                f"unit {unit.uid}: {len(wanted) - len(mutants)} mutant "
                f"id(s) not in the population"
            )

        def compute():
            stimuli, _ = equivalence_stimuli(
                lab.design, config.equivalence_budget, config.seed
            )
            return stimuli, lab.engine.reference_outputs(stimuli)

        stimuli, reference = _memoized_reference(
            ("equiv", unit.circuit, config.equivalence_budget, config.seed),
            compute,
        )
        survivors: list[int] = []
        kill_cycle: dict[str, int | None] = {}
        for mutant in mutants:
            record = lab.engine.run_mutant(mutant, stimuli, reference)
            # JSON object keys are strings; the merge converts back.
            kill_cycle[str(mutant.mid)] = record.cycle
            if not record.killed:
                survivors.append(mutant.mid)
        return {"survivors": survivors, "kill_cycle": kill_cycle}

    raise GridError(f"unknown work-unit kind {unit.kind!r}")


def worker_pid() -> str:
    """The trace ``pid`` lane of this worker process."""
    return f"worker-{os.getpid()}"


def process_entry(unit_data: dict, config_data: dict) -> dict:
    """Process-pool entry point: plain dicts in, plain dict out.

    When the config enables telemetry the unit runs under its own
    :mod:`repro.obs` registry and the envelope carries a ``metrics``
    snapshot for the parent to fold in — counters travel with results,
    not through a side channel.  ``config.trace`` works the same way:
    the unit runs under a worker-local tracer whose span buffer rides
    the envelope as ``spans``, and the parent stitches it into the
    campaign trace under this worker's ``pid`` lane.
    """
    from repro.campaign.config import CampaignConfig
    from repro.obs import metrics as _metrics
    from repro.obs import trace as _trace

    unit = WorkUnit.from_dict(unit_data)
    config = CampaignConfig.from_dict(config_data)
    started = time.monotonic()
    registry = None
    tracer = None
    with ExitStack() as stack:
        if config.telemetry:
            registry = stack.enter_context(_metrics.collecting())
        if config.trace:
            tracer = stack.enter_context(
                _trace.tracing(_trace.Tracer(pid=worker_pid()))
            )
            stack.enter_context(tracer.span(
                f"unit:{unit.kind}", "unit",
                {"uid": unit.uid, "circuit": unit.circuit,
                 "stage": unit.stage},
            ))
        result = execute_unit(unit, config)
    envelope = {
        "seconds": time.monotonic() - started,
        "result": result,
    }
    if registry is not None and not registry.is_empty():
        envelope["metrics"] = registry.snapshot()
    if tracer is not None and len(tracer):
        envelope["spans"] = tracer.export_buffer()
    return envelope
