"""Work units: the deterministic shards a grid campaign executes.

A :class:`WorkUnit` is one self-contained slice of a campaign
operation — a fault chunk of a stuck-at validation, a mutant partition
of a whole-population kill analysis, or a mutant partition of the
budgeted equivalence sweep.  Units are *order-independent*: each one is
a pure function of ``(circuit, config, spec)``, and the per-operation
merge is a pure union (mutant kinds) or an index-ordered concatenation
(fault chunks), so any execution order on any scheduler reproduces the
serial result bit for bit.

A unit's identity (:attr:`WorkUnit.uid`) hashes the spec alongside the
coordinates, so the :class:`repro.grid.store.JobStore` can never hand a
stale result to a unit whose inputs (vectors, mutant ids, fault range)
changed.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import GridError

#: Unit kinds (the shard axis).
FAULT_CHUNK = "fault-chunk"     #: a contiguous slice of the collapsed fault list
MUTANT_PART = "mutant-part"     #: a subset of mutant ids for a kill sweep
EQUIV_PART = "equiv-part"       #: a subset of mutant ids for the equivalence sweep

UNIT_KINDS = (FAULT_CHUNK, MUTANT_PART, EQUIV_PART)

_SLUG = re.compile(r"[^A-Za-z0-9_.-]+")


@dataclass(frozen=True)
class WorkUnit:
    """One deterministic shard of a campaign operation.

    ``stage`` names the operation ("fault-validation", "kill-analysis",
    "equivalence"), ``key`` the target within the circuit (a target
    label such as ``operator:LOR``, or ``baseline``), and ``spec`` the
    shard inputs (fault index range / mutant ids, plus the stimulus
    vectors where the operation needs them).
    """

    circuit: str
    stage: str
    key: str
    kind: str
    index: int
    total: int
    spec: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in UNIT_KINDS:
            raise GridError(
                f"unknown work-unit kind {self.kind!r} "
                f"(known: {', '.join(UNIT_KINDS)})"
            )
        if not 0 <= self.index < self.total:
            raise GridError(
                f"unit index {self.index} outside 0..{self.total - 1}"
            )

    @cached_property
    def digest(self) -> str:
        """Stable hash over coordinates and spec (the unit's identity).

        Cached: the spec embeds the full stimulus list, and the id is
        read on every store/load/bookkeeping touch of the dispatch
        path.  (``cached_property`` writes straight into ``__dict__``,
        which frozen dataclasses permit; equality stays field-based.)
        """
        payload = json.dumps(
            {
                "circuit": self.circuit,
                "stage": self.stage,
                "key": self.key,
                "kind": self.kind,
                "index": self.index,
                "total": self.total,
                "spec": self.spec,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @cached_property
    def uid(self) -> str:
        """Human-greppable unique id (job-store file stem)."""
        slug = _SLUG.sub("-", f"{self.circuit}-{self.stage}-{self.key}")
        return f"{slug}-{self.index:03d}of{self.total:03d}-{self.digest}"

    def describe(self) -> str:
        return (
            f"{self.circuit} {self.stage} {self.key} "
            f"[{self.index + 1}/{self.total}]"
        )

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "stage": self.stage,
            "key": self.key,
            "kind": self.kind,
            "index": self.index,
            "total": self.total,
            "spec": self.spec,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkUnit":
        try:
            return cls(
                circuit=data["circuit"],
                stage=data["stage"],
                key=data["key"],
                kind=data["kind"],
                index=int(data["index"]),
                total=int(data["total"]),
                spec=dict(data.get("spec", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise GridError(f"malformed work-unit payload: {exc}") from exc


# -- merges ------------------------------------------------------------------
#
# Each merge is the pure union/concatenation that makes sharding
# bit-identical to serial execution: per-fault detections and per-mutant
# verdicts never depend on which shard computed them.

def merge_detections(results: list[dict]) -> list:
    """Concatenate per-chunk ``detection`` lists in unit-index order."""
    detection: list = []
    for result in results:
        detection.extend(result["detection"])
    return detection


def merge_killed(results: list[dict]) -> set[int]:
    """Union the per-partition killed mutant ids."""
    killed: set[int] = set()
    for result in results:
        killed.update(result["killed"])
    return killed


def merge_witnesses(
    results: list[dict],
) -> dict[int, tuple[int | None, str]]:
    """Union the per-partition kill witnesses.

    JSON object keys arrive as strings and the stored ``[cycle,
    reason]`` pairs as lists; the merge restores the in-memory shape
    (``mid -> (cycle, reason)``).  Payloads predating the witness
    field (store version 1) merge to an empty dict.
    """
    witnesses: dict[int, tuple[int | None, str]] = {}
    for result in results:
        for mid, record in result.get("witnesses", {}).items():
            witnesses[int(mid)] = (record[0], record[1])
    return witnesses


def merge_equivalence(results: list[dict]) -> tuple[set[int], dict]:
    """Union per-partition survivors and kill-cycle records."""
    survivors: set[int] = set()
    kill_cycle: dict[int, int | None] = {}
    for result in results:
        survivors.update(result["survivors"])
        for mid, cycle in result["kill_cycle"].items():
            kill_cycle[int(mid)] = cycle
    return survivors, kill_cycle
