"""Named registry of mutant-sampling strategies.

Strategies are pluggable by name so higher layers (the campaign
pipeline, the CLI) can select them from configuration without importing
concrete classes.  A strategy class needs:

* a non-empty class attribute ``name`` (the registry key),
* ``sample(mutants, seed, *labels) -> list[Mutant]``, deterministic for
  a fixed ``(seed, labels)``,
* optionally ``fraction`` / ``weights`` constructor keywords, which
  :func:`build_strategy` forwards when the signature accepts them.
"""

from __future__ import annotations

import inspect

from repro.errors import SamplingError
from repro.util.registry import Registry

#: name -> strategy class.
STRATEGIES: dict[str, type] = {}

_REGISTRY = Registry("sampling strategy", SamplingError, entries=STRATEGIES)


def register_strategy(cls: type | None = None, *, replace: bool = False):
    """Class decorator adding ``cls`` to the registry under ``cls.name``."""
    return _REGISTRY.register(cls, replace=replace)


def get_strategy(name: str) -> type:
    """Look up a registered strategy class by name."""
    return _REGISTRY.get(name)


def strategy_names() -> tuple[str, ...]:
    return _REGISTRY.names()


def build_strategy(name: str, fraction: float = 0.10, weights=None):
    """Instantiate a registered strategy, forwarding the keywords its
    constructor declares (``fraction`` and/or ``weights``)."""
    cls = get_strategy(name)
    parameters = inspect.signature(cls.__init__).parameters
    kwargs: dict = {}
    if "fraction" in parameters:
        kwargs["fraction"] = fraction
    if "weights" in parameters and weights is not None:
        kwargs["weights"] = weights
    return cls(**kwargs)
