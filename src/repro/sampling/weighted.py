"""Test-oriented (operator-weighted) mutant sampling — the paper's §4.

The sampling rate of each operator stratum is proportional to the
operator's stuck-at-efficiency weight; quotas are water-filled so the
total sample size equals the classical strategy's exactly, then filled
uniformly inside each stratum.

Weights come from either:

* :func:`weights_from_nlfce` — a Table-1-style calibration (per-operator
  NLFCE measurements on the circuit under test), or
* :data:`PAPER_RANK_WEIGHTS` — the ordering the paper reports
  (LOR < VR < CVR < CR) as rank weights, with unlisted operators at the
  middle rank.
"""

from __future__ import annotations

from repro.errors import SamplingError
from repro.mutation.generator import mutants_by_operator
from repro.mutation.mutant import Mutant
from repro.sampling.allocation import waterfill_rates
from repro.sampling.registry import register_strategy
from repro.util.rng import rng_stream

#: Rank weights encoding the paper's reported operator ordering.
PAPER_RANK_WEIGHTS: dict[str, float] = {
    "LOR": 1.0,
    "VR": 2.0,
    "CVR": 3.0,
    "CR": 4.0,
    # Operators the paper does not rank: middle weight.
    "AOR": 2.0,
    "ROR": 2.0,
    "UOI": 2.0,
    "VCR": 2.0,
    "SDL": 2.0,
    "CCR": 2.0,
}

#: Floor applied to calibrated weights so no operator is starved.
_WEIGHT_FLOOR = 0.05


def weights_from_nlfce(nlfce_by_operator: dict[str, float]) -> dict[str, float]:
    """Normalize per-operator NLFCE measurements into sampling weights.

    Negative or missing efficiencies are floored: the paper still keeps
    a non-zero share of every operator (it selects "different
    percentages of mutants" per operator, not zero for the weak ones).
    """
    if not nlfce_by_operator:
        raise SamplingError("no operator efficiencies given")
    best = max(nlfce_by_operator.values())
    scale = best if best > 0 else 1.0
    return {
        op: max(value / scale, _WEIGHT_FLOOR)
        for op, value in nlfce_by_operator.items()
    }


@register_strategy
class TestOrientedSampling:
    """The paper's sampling strategy."""

    name = "test-oriented"

    def __init__(
        self,
        weights: dict[str, float] | None = None,
        fraction: float = 0.10,
    ):
        if not 0.0 < fraction <= 1.0:
            raise SamplingError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.weights = dict(weights or PAPER_RANK_WEIGHTS)

    def sample_size(self, population: int) -> int:
        return max(1, round(self.fraction * population)) if population else 0

    def quotas(self, mutants: list[Mutant]) -> dict[str, int]:
        groups = mutants_by_operator(mutants)
        sizes = {op: len(group) for op, group in groups.items()}
        weights = {
            op: self.weights.get(op, _WEIGHT_FLOOR) for op in sizes
        }
        return waterfill_rates(weights, sizes, self.sample_size(len(mutants)))

    def sample(
        self, mutants: list[Mutant], seed: int, *labels: str
    ) -> list[Mutant]:
        groups = mutants_by_operator(mutants)
        quotas = self.quotas(mutants)
        chosen: list[Mutant] = []
        for op in sorted(groups):
            quota = quotas.get(op, 0)
            if quota <= 0:
                continue
            rng = rng_stream(seed, self.name, op, *labels)
            chosen.extend(rng.sample(groups[op], quota))
        return sorted(chosen, key=lambda m: m.mid)
