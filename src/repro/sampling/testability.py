"""Testability-weighted mutant sampling.

Weights each mutant by the SCOAP difficulty of the logic its host
process drives (:mod:`repro.analyze.scoap` over the synthesized
netlist, mapped back to behavioural signals through
``Netlist.signal_map``), then draws a weighted sample without
replacement using the Efraimidis–Spirakis key method.

Rationale: mutants in *easy* logic are killed by almost any vector set
and carry little information per simulation, so the sample leans
toward hard-to-test sites — the mutants whose kill status actually
discriminates between test sets.  Provably dead logic is the
exception: its mutants are near-certain equivalents, so they get a
floor weight instead of the (infinite) SCOAP cost.

Like every strategy, the draw is deterministic for a fixed
``(seed, labels)`` and independent of set/dict iteration order.
"""

from __future__ import annotations

import math

from repro.errors import SamplingError
from repro.mutation.mutant import Mutant
from repro.sampling.registry import register_strategy
from repro.util.rng import rng_stream

#: Weight given to mutants in provably dead (unobservable) logic and
#: to processes whose written signals left no trace in the netlist.
_DEAD_WEIGHT = 0.05


@register_strategy
class TestabilitySampling:
    """SCOAP-difficulty-weighted sampling without replacement."""

    name = "testability"

    def __init__(self, fraction: float = 0.10):
        if not 0.0 < fraction <= 1.0:
            raise SamplingError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def sample_size(self, population: int) -> int:
        return max(1, round(self.fraction * population)) if population else 0

    def _weights(self, mutants: list[Mutant],
                 circuit: str | None) -> dict[int, float]:
        """mid -> weight.  Uniform when no circuit context is available
        (toy mutant lists in unit tests, unnamed designs)."""
        if circuit is None:
            return {m.mid: 1.0 for m in mutants}
        try:
            # Late imports: the sampling layer stays importable without
            # pulling in the HDL front end until a circuit is named.
            from repro.analyze.scoap import INF, analyze_testability
            from repro.circuits.registry import load_circuit
            from repro.errors import ConfigError
            from repro.synth.synthesize import synthesize

            design = load_circuit(circuit)
        except ConfigError:
            return {m.mid: 1.0 for m in mutants}
        netlist = synthesize(design)
        analysis = analyze_testability(netlist)
        writes = {p.label: sorted(p.writes) for p in design.processes}
        weights: dict[int, float] = {}
        for mutant in mutants:
            nets = [
                nid
                for signal in writes.get(mutant.process_label, ())
                for nid in netlist.signal_map.get(signal, ())
            ]
            costs = [
                analysis.difficulty(nid)
                for nid in nets
                if analysis.difficulty(nid) < INF
            ]
            if costs:
                # Log compression keeps deep-logic mutants favoured
                # without letting one pathological cone eat the sample.
                weights[mutant.mid] = 1.0 + math.log2(1 + max(costs))
            else:
                weights[mutant.mid] = _DEAD_WEIGHT
        return weights

    def sample(
        self, mutants: list[Mutant], seed: int, *labels: str
    ) -> list[Mutant]:
        count = self.sample_size(len(mutants))
        if count >= len(mutants):
            return sorted(mutants, key=lambda m: m.mid)
        circuit = labels[0] if labels else None
        weights = self._weights(mutants, circuit)
        rng = rng_stream(seed, self.name, *labels)
        # Efraimidis–Spirakis: per-item key u**(1/w), keep the top-k.
        # Uniforms are drawn in sorted-mid order so the draw is a pure
        # function of (seed, labels, mutant ids).
        keyed = []
        for mutant in sorted(mutants, key=lambda m: m.mid):
            u = rng.random()
            w = weights[mutant.mid]
            keyed.append((u ** (1.0 / w), mutant.mid, mutant))
        keyed.sort(key=lambda item: (-item[0], item[1]))
        chosen = [mutant for _, _, mutant in keyed[:count]]
        return sorted(chosen, key=lambda m: m.mid)
