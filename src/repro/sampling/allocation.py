"""Quota allocation helpers for stratified sampling."""

from __future__ import annotations

from repro.errors import SamplingError


def largest_remainder(
    shares: dict[str, float], total: int
) -> dict[str, int]:
    """Integer quotas summing to ``total``, proportional to ``shares``.

    The largest-remainder (Hamilton) method: floor everything, then hand
    the leftover units to the largest fractional parts.  Deterministic
    tie-break on the group key.
    """
    if total < 0:
        raise SamplingError("total must be non-negative")
    weight_sum = sum(shares.values())
    if weight_sum <= 0:
        raise SamplingError("shares must contain positive mass")
    exact = {
        key: total * value / weight_sum for key, value in shares.items()
    }
    quotas = {key: int(exact[key]) for key in shares}
    leftover = total - sum(quotas.values())
    by_remainder = sorted(
        shares, key=lambda key: (-(exact[key] - quotas[key]), key)
    )
    for key in by_remainder[:leftover]:
        quotas[key] += 1
    return quotas


def waterfill_rates(
    weights: dict[str, float],
    sizes: dict[str, int],
    total: int,
) -> dict[str, int]:
    """Per-group quotas with sampling *rates* proportional to weights.

    Solves for ``c`` such that ``sum(min(c * w_g, 1) * n_g) = total``,
    then rounds with the largest-remainder method within the uncapped
    groups.  A group's quota never exceeds its size.
    """
    if total > sum(sizes.values()):
        raise SamplingError(
            f"cannot sample {total} from {sum(sizes.values())} mutants"
        )
    capped: set[str] = set()
    while True:
        remaining = total - sum(sizes[g] for g in capped)
        mass = sum(
            weights[g] * sizes[g] for g in sizes if g not in capped
        )
        if mass <= 0 or remaining <= 0:
            break
        scale = remaining / mass
        newly_capped = [
            g
            for g in sizes
            if g not in capped and scale * weights[g] >= 1.0
        ]
        if not newly_capped:
            break
        capped.update(newly_capped)
    quotas = {g: sizes[g] for g in capped}
    open_groups = {g: sizes[g] for g in sizes if g not in capped}
    remaining = total - sum(quotas.values())
    if open_groups and remaining > 0:
        shares = {
            g: weights[g] * size for g, size in open_groups.items()
        }
        if sum(shares.values()) <= 0:
            shares = dict(open_groups)
        open_quotas = largest_remainder(shares, remaining)
        # Cap and redistribute any overshoot deterministically.
        overflow = 0
        for g in sorted(open_quotas):
            if open_quotas[g] > open_groups[g]:
                overflow += open_quotas[g] - open_groups[g]
                open_quotas[g] = open_groups[g]
        while overflow > 0:
            for g in sorted(open_quotas):
                if open_quotas[g] < open_groups[g]:
                    open_quotas[g] += 1
                    overflow -= 1
                    if overflow == 0:
                        break
            else:
                break
        quotas.update(open_quotas)
    elif open_groups:
        quotas.update({g: 0 for g in open_groups})
    return quotas
