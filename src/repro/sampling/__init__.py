"""Mutant sampling strategies (paper, section 4).

Both strategies draw the same overall fraction of the mutant
population; they differ only in *where* the samples come from:

* :class:`RandomSampling` — the classical approach [6]: uniform over
  the whole population.
* :class:`TestOrientedSampling` — the paper's contribution: a
  per-operator sampling rate proportional to the operator's stuck-at
  efficiency weight, water-filled so the total matches exactly.
"""

from repro.sampling.allocation import largest_remainder, waterfill_rates
from repro.sampling.random_sampling import ExhaustiveSampling, RandomSampling
from repro.sampling.registry import (
    STRATEGIES,
    build_strategy,
    get_strategy,
    register_strategy,
    strategy_names,
)
from repro.sampling.testability import TestabilitySampling
from repro.sampling.weighted import (
    PAPER_RANK_WEIGHTS,
    TestOrientedSampling,
    weights_from_nlfce,
)

__all__ = [
    "ExhaustiveSampling",
    "PAPER_RANK_WEIGHTS",
    "RandomSampling",
    "STRATEGIES",
    "TestOrientedSampling",
    "TestabilitySampling",
    "build_strategy",
    "get_strategy",
    "largest_remainder",
    "register_strategy",
    "strategy_names",
    "waterfill_rates",
    "weights_from_nlfce",
]
