"""Classical uniform mutant sampling (Offutt/Untch style)."""

from __future__ import annotations

from repro.errors import SamplingError
from repro.mutation.mutant import Mutant
from repro.sampling.registry import register_strategy
from repro.util.rng import rng_stream


@register_strategy
class RandomSampling:
    """Select ``fraction`` of the population uniformly, no replacement."""

    name = "random"

    def __init__(self, fraction: float = 0.10):
        if not 0.0 < fraction <= 1.0:
            raise SamplingError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def sample_size(self, population: int) -> int:
        return max(1, round(self.fraction * population)) if population else 0

    def sample(
        self, mutants: list[Mutant], seed: int, *labels: str
    ) -> list[Mutant]:
        count = self.sample_size(len(mutants))
        rng = rng_stream(seed, self.name, *labels)
        chosen = rng.sample(mutants, count)
        return sorted(chosen, key=lambda m: m.mid)


@register_strategy
class ExhaustiveSampling:
    """The degenerate strategy: select the whole population.

    Used when a consumer wants the pipeline's test generation and
    validation machinery over every mutant (e.g. the validation-reuse
    experiment), with sampling effectively disabled.
    """

    name = "exhaustive"

    def sample_size(self, population: int) -> int:
        return population

    def sample(
        self, mutants: list[Mutant], seed: int, *labels: str
    ) -> list[Mutant]:
        return list(mutants)
