"""Mutation-adequate test data generation (the paper's validation data).

Candidate vectors come from a pluggable :mod:`repro.search` strategy
and are kept only when they kill live mutants ("selecting only input
data that are mutation adequate", section 2 of the paper).  The default
``random`` strategy reproduces the paper's blind pseudo-random draw
bit-for-bit; the coverage-guided strategies (``bitflip``, ``genetic``,
``anneal``) evolve new candidates from ones that already killed.

* Combinational designs: classic greedy set cover over candidate
  batches — each batch's kill sets are computed in one sweep, then the
  best vectors are taken until the batch stops contributing.  The
  per-vector kill counts are fed back to the strategy.
* Sequential designs: the test set is a single reset-started sequence,
  grown chunk by chunk; each round the strategy proposes several
  candidate chunks and the one killing the most live mutants is
  appended (state checkpoints avoid re-simulating the prefix).  Every
  candidate chunk's kill count is fed back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MutantRuntimeError, OscillationError
from repro.hdl.design import Design
from repro.mutation.execution import MutationEngine
from repro.mutation.mutant import Mutant
from repro.search import SearchBudget, SearchStrategy, build_search_strategy
from repro.sim.testbench import Testbench


@dataclass
class TestGenResult:
    """Outcome of a mutation-adequate generation run."""

    vectors: list[int]
    killed_mids: set[int]
    total_targets: int
    candidates_tried: int
    rounds: int = 0
    log: list[str] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.vectors)

    @property
    def kill_fraction(self) -> float:
        if self.total_targets == 0:
            return 1.0
        return len(self.killed_mids) / self.total_targets


class MutationTestGenerator:
    """Greedy mutation-adequate stimulus selection for one design."""

    def __init__(
        self,
        design: Design,
        seed: int = 1,
        engine: MutationEngine | None = None,
        batch_size: int = 64,
        chunk_length: int = 4,
        chunk_candidates: int = 6,
        stall_rounds: int = 4,
        max_vectors: int = 1024,
        strategy: str | SearchStrategy = "random",
        search_budget: SearchBudget | None = None,
        search_knobs: dict | None = None,
    ):
        self._design = design
        self._engine = engine or MutationEngine(design)
        self._seed = seed
        self._batch_size = batch_size
        self._chunk_length = chunk_length
        self._chunk_candidates = chunk_candidates
        self._stall_rounds = stall_rounds
        self._max_vectors = max_vectors
        self._strategy = strategy
        self._budget = search_budget or SearchBudget()
        self._search_knobs = search_knobs

    def _make_strategy(self, cycles: int = 1) -> SearchStrategy:
        """One fresh strategy per generation run.

        The stream labels match the pre-search random generator, so
        ``strategy="random"`` reproduces its vector sequence exactly.
        For sequential designs ``cycles = chunk_length`` makes the unit
        of search a whole multi-cycle chunk, so the guided strategies
        mutate input *sequences*, not single cycles.
        """
        encoder = self._engine.encoder
        if isinstance(self._strategy, SearchStrategy):
            expected = encoder.width * cycles
            # Wrapper subclasses that skip SearchStrategy.__init__ have
            # no width to check (the property raises AttributeError,
            # which getattr maps to None) — they opt out of this guard
            # and own their geometry.
            width = getattr(self._strategy, "width", None)
            if width is not None and width != expected:
                from repro.errors import SearchError

                raise SearchError(
                    f"supplied strategy proposes {width}-bit vectors but "
                    f"this design needs {expected} "
                    f"({encoder.width}-bit stimuli x {cycles} cycles); "
                    f"build it with cycles={cycles}"
                )
            return self._strategy
        return build_search_strategy(
            self._strategy,
            width=encoder.width,
            seed=self._seed,
            labels=(self._design.name, "mutation-testgen"),
            field_widths=encoder.field_widths,
            cycles=cycles,
            knobs=self._search_knobs,
        )

    def generate(self, mutants: list[Mutant]) -> TestGenResult:
        from repro.obs import metrics as _metrics

        if self._design.is_sequential:
            result = self._generate_sequential(mutants)
        else:
            result = self._generate_combinational(mutants)
        m = _metrics.active()
        if m.enabled:
            m.counter("search.generations")
            m.counter("search.candidates", result.candidates_tried)
            m.counter("search.rounds", result.rounds)
            m.counter("search.kills", len(result.killed_mids))
            m.gauge("search.corpus_size", len(result.vectors))
        return result

    # -- combinational ---------------------------------------------------------

    def _generate_combinational(self, mutants: list[Mutant]) -> TestGenResult:
        strategy = self._make_strategy()
        budget = self._budget
        live: dict[int, Mutant] = {m.mid: m for m in mutants}
        selected: list[int] = []
        killed: set[int] = set()
        tried = 0
        stall = 0
        rounds = 0
        while live and stall < self._stall_rounds and (
            len(selected) < self._max_vectors
        ) and not budget.exhausted(tried, stall):
            count = budget.clamp(self._batch_size, tried)
            if count < 1:
                break
            rounds += 1
            batch = strategy.propose(count)
            tried += len(batch)
            kill_sets = self._engine.comb_kill_sets(
                list(live.values()), batch
            )
            # Invert: vector index -> set of mids it kills.
            by_vector: dict[int, set[int]] = {}
            for mid, indexes in kill_sets.items():
                for index in indexes:
                    by_vector.setdefault(index, set()).add(mid)
            strategy.feedback(
                batch,
                [len(by_vector.get(i, ())) for i in range(len(batch))],
            )
            # Invariant: every kill set in by_vector is non-empty and
            # only contains live mids, so the winner's whole set is the
            # gain and the update is a subtraction — no per-iteration
            # reconstruction of the live-mid set.
            progress = False
            while by_vector and len(selected) < self._max_vectors:
                best_index = max(
                    by_vector, key=lambda i: (len(by_vector[i]), -i)
                )
                gained = by_vector.pop(best_index)
                selected.append(batch[best_index])
                killed.update(gained)
                for mid in gained:
                    live.pop(mid, None)
                progress = True
                by_vector = {
                    index: remaining
                    for index, mids in by_vector.items()
                    if (remaining := mids - gained)
                }
            stall = 0 if progress else stall + 1
        return TestGenResult(
            vectors=selected,
            killed_mids=killed,
            total_targets=len(mutants),
            candidates_tried=tried,
            rounds=rounds,
        )

    # -- sequential ---------------------------------------------------------------

    def _split_chunk(self, packed: int) -> list[int]:
        """Unpack a chunk proposal into per-cycle vectors (cycle 0 is
        in the most significant bits)."""
        width = self._engine.encoder.width
        mask = (1 << width) - 1
        length = self._chunk_length
        return [
            (packed >> (width * (length - 1 - cycle))) & mask
            for cycle in range(length)
        ]

    def _generate_sequential(self, mutants: list[Mutant]) -> TestGenResult:
        strategy = self._make_strategy(cycles=self._chunk_length)
        budget = self._budget
        decode = self._engine.encoder.decode
        reference = Testbench(self._design, backend="compiled")
        reference.reset()
        benches: dict[int, Testbench] = {}
        live: dict[int, Mutant] = {}
        killed: set[int] = set()
        for mutant in mutants:
            bench = Testbench(
                self._design, mutant.patch(), backend="compiled"
            )
            try:
                bench.reset()
            except (MutantRuntimeError, OscillationError):
                killed.add(mutant.mid)
                continue
            benches[mutant.mid] = bench
            live[mutant.mid] = mutant

        selected: list[int] = []
        tried = 0
        stall = 0
        rounds = 0
        while live and stall < self._stall_rounds and (
            len(selected) < self._max_vectors
        ) and not budget.exhausted(tried, stall):
            # Propose as many whole chunks as the candidate cap allows.
            n_chunks = min(
                self._chunk_candidates,
                budget.clamp(
                    self._chunk_candidates * self._chunk_length, tried
                ) // self._chunk_length,
            )
            if n_chunks < 1:
                break
            rounds += 1
            candidates = [
                (proposal, self._split_chunk(proposal))
                for proposal in strategy.propose(n_chunks)
            ]
            tried += self._chunk_length * n_chunks
            ref_state = reference.save_state()
            states = {mid: benches[mid].save_state() for mid in live}
            best: tuple[int, list[int], set[int]] | None = None
            for proposal, chunk in candidates:
                ref_outputs = []
                reference.restore_state(ref_state)
                for packed in chunk:
                    ref_outputs.append(reference.step(decode(packed)))
                kills: set[int] = set()
                for mid in live:
                    bench = benches[mid]
                    bench.restore_state(states[mid])
                    try:
                        for cycle, packed in enumerate(chunk):
                            if bench.step(decode(packed)) != ref_outputs[cycle]:
                                kills.add(mid)
                                break
                    except (MutantRuntimeError, OscillationError):
                        kills.add(mid)
                strategy.feedback([proposal], [len(kills)])
                if best is None or len(kills) > len(best[2]):
                    best = (len(kills), chunk, kills)
            assert best is not None
            _count, chunk, kills = best
            if not kills:
                reference.restore_state(ref_state)
                for mid in live:
                    benches[mid].restore_state(states[mid])
                stall += 1
                continue
            stall = 0
            # Commit the winning chunk on every live machine.
            reference.restore_state(ref_state)
            ref_outputs = [reference.step(decode(p)) for p in chunk]
            for mid in list(live):
                bench = benches[mid]
                bench.restore_state(states[mid])
                try:
                    for packed in chunk:
                        bench.step(decode(packed))
                except (MutantRuntimeError, OscillationError):
                    kills.add(mid)
            selected.extend(chunk)
            killed.update(kills)
            for mid in kills:
                live.pop(mid, None)
                benches.pop(mid, None)
        return TestGenResult(
            vectors=selected,
            killed_mids=killed,
            total_targets=len(mutants),
            candidates_tried=tried,
            rounds=rounds,
        )
