"""Mutation-adequate test data generation (the paper's validation data).

Vectors are drawn from a seeded pseudo-random source and kept only when
they kill live mutants ("selecting only input data that are mutation
adequate", section 2 of the paper).

* Combinational designs: classic greedy set cover over candidate
  batches — each batch's kill sets are computed in one sweep, then the
  best vectors are taken until the batch stops contributing.
* Sequential designs: the test set is a single reset-started sequence,
  grown chunk by chunk; each round proposes several candidate chunks
  and appends the one killing the most live mutants (state checkpoints
  avoid re-simulating the prefix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MutantRuntimeError, OscillationError
from repro.hdl.design import Design
from repro.mutation.execution import MutationEngine
from repro.mutation.mutant import Mutant
from repro.sim.testbench import Testbench
from repro.testgen.random_gen import RandomVectorGenerator


@dataclass
class TestGenResult:
    """Outcome of a mutation-adequate generation run."""

    vectors: list[int]
    killed_mids: set[int]
    total_targets: int
    candidates_tried: int
    rounds: int = 0
    log: list[str] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.vectors)

    @property
    def kill_fraction(self) -> float:
        if self.total_targets == 0:
            return 1.0
        return len(self.killed_mids) / self.total_targets


class MutationTestGenerator:
    """Greedy mutation-adequate stimulus selection for one design."""

    def __init__(
        self,
        design: Design,
        seed: int = 1,
        engine: MutationEngine | None = None,
        batch_size: int = 64,
        chunk_length: int = 4,
        chunk_candidates: int = 6,
        stall_rounds: int = 4,
        max_vectors: int = 1024,
    ):
        self._design = design
        self._engine = engine or MutationEngine(design)
        self._seed = seed
        self._batch_size = batch_size
        self._chunk_length = chunk_length
        self._chunk_candidates = chunk_candidates
        self._stall_rounds = stall_rounds
        self._max_vectors = max_vectors

    def generate(self, mutants: list[Mutant]) -> TestGenResult:
        if self._design.is_sequential:
            return self._generate_sequential(mutants)
        return self._generate_combinational(mutants)

    # -- combinational ---------------------------------------------------------

    def _generate_combinational(self, mutants: list[Mutant]) -> TestGenResult:
        gen = RandomVectorGenerator(
            self._engine.encoder.width, self._seed, self._design.name,
            "mutation-testgen",
        )
        live: dict[int, Mutant] = {m.mid: m for m in mutants}
        selected: list[int] = []
        killed: set[int] = set()
        tried = 0
        stall = 0
        rounds = 0
        while live and stall < self._stall_rounds and (
            len(selected) < self._max_vectors
        ):
            rounds += 1
            batch = gen.vectors(self._batch_size)
            tried += len(batch)
            kill_sets = self._engine.comb_kill_sets(
                list(live.values()), batch
            )
            # Invert: vector index -> set of mids it kills.
            by_vector: dict[int, set[int]] = {}
            for mid, indexes in kill_sets.items():
                for index in indexes:
                    by_vector.setdefault(index, set()).add(mid)
            # Invariant: every kill set in by_vector is non-empty and
            # only contains live mids, so the winner's whole set is the
            # gain and the update is a subtraction — no per-iteration
            # reconstruction of the live-mid set.
            progress = False
            while by_vector and len(selected) < self._max_vectors:
                best_index = max(
                    by_vector, key=lambda i: (len(by_vector[i]), -i)
                )
                gained = by_vector.pop(best_index)
                selected.append(batch[best_index])
                killed.update(gained)
                for mid in gained:
                    live.pop(mid, None)
                progress = True
                by_vector = {
                    index: remaining
                    for index, mids in by_vector.items()
                    if (remaining := mids - gained)
                }
            stall = 0 if progress else stall + 1
        return TestGenResult(
            vectors=selected,
            killed_mids=killed,
            total_targets=len(mutants),
            candidates_tried=tried,
            rounds=rounds,
        )

    # -- sequential ---------------------------------------------------------------

    def _generate_sequential(self, mutants: list[Mutant]) -> TestGenResult:
        gen = RandomVectorGenerator(
            self._engine.encoder.width, self._seed, self._design.name,
            "mutation-testgen",
        )
        decode = self._engine.encoder.decode
        reference = Testbench(self._design, backend="compiled")
        reference.reset()
        benches: dict[int, Testbench] = {}
        live: dict[int, Mutant] = {}
        killed: set[int] = set()
        for mutant in mutants:
            bench = Testbench(
                self._design, mutant.patch(), backend="compiled"
            )
            try:
                bench.reset()
            except (MutantRuntimeError, OscillationError):
                killed.add(mutant.mid)
                continue
            benches[mutant.mid] = bench
            live[mutant.mid] = mutant

        selected: list[int] = []
        tried = 0
        stall = 0
        rounds = 0
        while live and stall < self._stall_rounds and (
            len(selected) < self._max_vectors
        ):
            rounds += 1
            candidates = [
                gen.vectors(self._chunk_length)
                for _ in range(self._chunk_candidates)
            ]
            tried += self._chunk_length * self._chunk_candidates
            ref_state = reference.save_state()
            states = {mid: benches[mid].save_state() for mid in live}
            best: tuple[int, list[int], set[int]] | None = None
            for chunk in candidates:
                ref_outputs = []
                reference.restore_state(ref_state)
                for packed in chunk:
                    ref_outputs.append(reference.step(decode(packed)))
                kills: set[int] = set()
                for mid in live:
                    bench = benches[mid]
                    bench.restore_state(states[mid])
                    try:
                        for cycle, packed in enumerate(chunk):
                            if bench.step(decode(packed)) != ref_outputs[cycle]:
                                kills.add(mid)
                                break
                    except (MutantRuntimeError, OscillationError):
                        kills.add(mid)
                if best is None or len(kills) > len(best[2]):
                    best = (len(kills), chunk, kills)
            assert best is not None
            _count, chunk, kills = best
            if not kills:
                reference.restore_state(ref_state)
                for mid in live:
                    benches[mid].restore_state(states[mid])
                stall += 1
                continue
            stall = 0
            # Commit the winning chunk on every live machine.
            reference.restore_state(ref_state)
            ref_outputs = [reference.step(decode(p)) for p in chunk]
            for mid in list(live):
                bench = benches[mid]
                bench.restore_state(states[mid])
                try:
                    for packed in chunk:
                        bench.step(decode(packed))
                except (MutantRuntimeError, OscillationError):
                    kills.add(mid)
            selected.extend(chunk)
            killed.update(kills)
            for mid in kills:
                live.pop(mid, None)
                benches.pop(mid, None)
        return TestGenResult(
            vectors=selected,
            killed_mids=killed,
            total_targets=len(mutants),
            candidates_tried=tried,
            rounds=rounds,
        )
