"""PODEM — deterministic test pattern generation for stuck-at faults.

Classic five-valued PODEM (Goel 1981) over the combinational netlist:
objective / backtrace / imply with a decision stack and a backtrack
limit.  Used by the validation-data-reuse experiment to measure "ATPG
effort" (backtracks, decisions) with and without a preloaded test set,
and usable standalone as a coverage top-up.

Values are encoded as (good, faulty) bit pairs with ``None`` for X:
D = (1, 0), D' = (0, 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AtpgError
from repro.fault.model import StuckAtFault
from repro.netlist.cells import GateType
from repro.netlist.levelize import topo_gates
from repro.netlist.netlist import Gate, Netlist

_X = None


@dataclass
class AtpgFaultOutcome:
    fault: StuckAtFault
    status: str                # "detected" | "redundant" | "aborted"
    vector: int | None         # packed PI assignment (X bits filled with 0)
    decisions: int
    backtracks: int


@dataclass
class AtpgResult:
    outcomes: list[AtpgFaultOutcome] = field(default_factory=list)

    @property
    def detected(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "detected")

    @property
    def redundant(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "redundant")

    @property
    def aborted(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "aborted")

    @property
    def total_backtracks(self) -> int:
        return sum(o.backtracks for o in self.outcomes)

    @property
    def total_decisions(self) -> int:
        return sum(o.decisions for o in self.outcomes)

    @property
    def vectors(self) -> list[int]:
        return [
            o.vector for o in self.outcomes
            if o.status == "detected" and o.vector is not None
        ]


class Podem:
    """PODEM engine bound to one combinational netlist."""

    def __init__(self, netlist: Netlist, backtrack_limit: int = 2000):
        if netlist.dffs:
            raise AtpgError(
                "PODEM operates on combinational netlists only"
            )
        self._netlist = netlist
        self._order = topo_gates(netlist)
        self._fanout = netlist.fanout_map()
        self._inputs = netlist.input_bits
        self._outputs = set(netlist.output_bits)
        self._backtrack_limit = backtrack_limit
        self._drivers: dict[int, Gate] = {
            gate.output: gate for gate in netlist.gates
        }

    # -- public API ------------------------------------------------------------

    def generate(self, fault: StuckAtFault) -> AtpgFaultOutcome:
        """Find a vector detecting ``fault``, or prove it redundant."""
        state = _PodemState(fault)
        decisions = 0
        backtracks = 0
        stack: list[tuple[int, int, bool]] = []  # (pi net, value, flipped)
        while True:
            self._imply(state)
            if self._fault_detected(state):
                return AtpgFaultOutcome(
                    fault, "detected", self._pack_vector(state),
                    decisions, backtracks,
                )
            objective = self._objective(state)
            if objective is not None:
                pi, value = self._backtrace(state, *objective)
                stack.append((pi, value, False))
                state.assignments[pi] = value
                decisions += 1
                continue
            # No objective achievable: backtrack.
            while stack:
                pi, value, flipped = stack.pop()
                del state.assignments[pi]
                if not flipped:
                    backtracks += 1
                    if backtracks > self._backtrack_limit:
                        return AtpgFaultOutcome(
                            fault, "aborted", None, decisions, backtracks
                        )
                    stack.append((pi, value ^ 1, True))
                    state.assignments[pi] = value ^ 1
                    break
            else:
                return AtpgFaultOutcome(
                    fault, "redundant", None, decisions, backtracks
                )

    def run(self, faults: list[StuckAtFault]) -> AtpgResult:
        result = AtpgResult()
        for fault in faults:
            result.outcomes.append(self.generate(fault))
        return result

    # -- internals ------------------------------------------------------------

    def _imply(self, state: "_PodemState") -> None:
        good: dict[int, int | None] = {}
        faulty: dict[int, int | None] = {}
        for nid in self._inputs:
            value = state.assignments.get(nid, _X)
            good[nid] = value
            faulty[nid] = value
        fault = state.fault
        if fault.is_stem and fault.net in good:
            faulty[fault.net] = (
                fault.stuck if good[fault.net] is not _X else _X
            )
            if good[fault.net] is not _X:
                faulty[fault.net] = fault.stuck
        for gate in self._order:
            g_in = []
            f_in = []
            for pin, nid in enumerate(gate.inputs):
                g_val = good[nid]
                f_val = faulty[nid]
                if (
                    fault.gate is not None
                    and gate.gid == fault.gate
                    and pin == fault.pin
                ):
                    f_val = fault.stuck
                g_in.append(g_val)
                f_in.append(f_val)
            g_out = _eval3(gate.gate_type, g_in)
            f_out = _eval3(gate.gate_type, f_in)
            if fault.is_stem and gate.output == fault.net:
                f_out = fault.stuck
            good[gate.output] = g_out
            faulty[gate.output] = f_out
        if fault.is_stem and fault.net in self._inputs:
            faulty[fault.net] = fault.stuck
        state.good = good
        state.faulty = faulty

    def _fault_detected(self, state: "_PodemState") -> bool:
        return any(
            state.good[o] is not _X
            and state.faulty[o] is not _X
            and state.good[o] != state.faulty[o]
            for o in self._outputs
        )

    def _fault_activated(self, state: "_PodemState") -> bool:
        fault = state.fault
        site_good = state.good.get(fault.net)
        if fault.gate is not None or fault.dff is not None:
            return site_good is not _X and site_good != fault.stuck
        return site_good is not _X and site_good != fault.stuck

    def _objective(self, state: "_PodemState") -> tuple[int, int] | None:
        """Next (net, value) objective, or None when stuck."""
        fault = state.fault
        site = fault.net
        if state.good.get(site) is _X:
            return site, fault.stuck ^ 1
        if not self._fault_activated(state):
            return None  # site fixed at the stuck value: backtrack
        # Propagate: pick the lowest-level D-frontier gate and set one
        # of its X inputs to the non-controlling value.
        frontier = self._d_frontier(state)
        if not frontier:
            return None
        gate = frontier[0]
        for nid in gate.inputs:
            if state.good[nid] is _X:
                non_controlling = _non_controlling(gate.gate_type)
                return nid, non_controlling
        return None

    def _d_frontier(self, state: "_PodemState") -> list[Gate]:
        frontier = []
        for gate in self._order:
            out_g = state.good[gate.output]
            out_f = state.faulty[gate.output]
            # Resolved outputs (both machines known) need no help; the
            # half-known case (one machine pinned by a controlling value
            # on the faulty side only) still belongs to the frontier.
            if out_g is not _X and out_f is not _X:
                continue
            has_d_input = any(
                _differs(good_in, faulty_in)
                for good_in, faulty_in in self._input_views(state, gate)
            )
            if has_d_input and any(
                state.good[n] is _X for n in gate.inputs
            ):
                frontier.append(gate)
        return frontier

    def _input_views(self, state: "_PodemState", gate: Gate):
        """(good, faulty) input pairs as the gate itself sees them.

        Branch faults inject only into the faulted gate's view of its
        pin, so the net's global faulty value is not enough here.
        """
        fault = state.fault
        views = []
        for pin, nid in enumerate(gate.inputs):
            good_in = state.good[nid]
            faulty_in = state.faulty[nid]
            if (
                fault.gate is not None
                and gate.gid == fault.gate
                and pin == fault.pin
            ):
                faulty_in = fault.stuck
            views.append((good_in, faulty_in))
        return views

    def _backtrace(
        self, state: "_PodemState", net: int, value: int
    ) -> tuple[int, int]:
        """Walk the objective back to an unassigned primary input."""
        current, want = net, value
        guard = 0
        while current not in self._inputs:
            guard += 1
            if guard > 10 * len(self._order) + 10:
                raise AtpgError("backtrace did not reach a primary input")
            gate = self._drivers.get(current)
            if gate is None:
                raise AtpgError(
                    f"net {self._netlist.net_name(current)!r} has no driver"
                )
            if gate.gate_type.is_const:
                raise AtpgError("objective requires changing a constant")
            want = want ^ (1 if _inverts(gate.gate_type) else 0)
            x_inputs = [
                nid for nid in gate.inputs if state.good[nid] is _X
            ]
            if not x_inputs:
                # Shouldn't happen (objective net was X); pick input 0.
                x_inputs = [gate.inputs[0]]
            current = x_inputs[0]
        return current, want

    def _pack_vector(self, state: "_PodemState") -> int:
        packed = 0
        for nid in self._inputs:
            bit = state.assignments.get(nid, 0) or 0
            packed = (packed << 1) | bit
        return packed


class _PodemState:
    def __init__(self, fault: StuckAtFault):
        self.fault = fault
        self.assignments: dict[int, int] = {}
        self.good: dict[int, int | None] = {}
        self.faulty: dict[int, int | None] = {}


def _differs(good: int | None, faulty: int | None) -> bool:
    """Whether a line carries a (possibly partial) fault effect."""
    if good is _X and faulty is _X:
        return False
    if good is _X or faulty is _X:
        return True  # may still diverge: worth driving through
    return good != faulty


def _eval3(gate_type: GateType, inputs: list[int | None]) -> int | None:
    """Three-valued gate evaluation (X = None)."""
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return 1
    if gate_type in (GateType.NOT, GateType.BUF):
        value = inputs[0]
        if value is _X:
            return _X
        return value ^ 1 if gate_type is GateType.NOT else value
    if gate_type in (GateType.AND, GateType.NAND):
        if any(v == 0 for v in inputs):
            out = 0
        elif all(v == 1 for v in inputs):
            out = 1
        else:
            return _X
        return out ^ 1 if gate_type is GateType.NAND else out
    if gate_type in (GateType.OR, GateType.NOR):
        if any(v == 1 for v in inputs):
            out = 1
        elif all(v == 0 for v in inputs):
            out = 0
        else:
            return _X
        return out ^ 1 if gate_type is GateType.NOR else out
    # XOR / XNOR
    if any(v is _X for v in inputs):
        return _X
    parity = 0
    for v in inputs:
        parity ^= v
    return parity ^ 1 if gate_type is GateType.XNOR else parity


def _non_controlling(gate_type: GateType) -> int:
    if gate_type in (GateType.AND, GateType.NAND):
        return 1
    if gate_type in (GateType.OR, GateType.NOR):
        return 0
    return 1  # XOR-ish: either value can help; pick 1


def _inverts(gate_type: GateType) -> bool:
    return gate_type in (GateType.NAND, GateType.NOR, GateType.NOT,
                         GateType.XNOR)
