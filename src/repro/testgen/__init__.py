"""Test data generation.

* :mod:`repro.testgen.random_gen` — seeded uniform and LFSR-based
  pseudo-random vector generators (the paper's baseline test sets)
* :mod:`repro.testgen.mutation_gen` — mutation-adequate greedy
  selection: the paper's validation-data generator
* :mod:`repro.testgen.atpg` — PODEM deterministic ATPG (combinational),
  used for the validation-data-reuse experiment
* :mod:`repro.testgen.compaction` — reverse-order static compaction
"""

from repro.testgen.atpg import AtpgResult, Podem
from repro.testgen.compaction import reverse_order_compaction
from repro.testgen.mutation_gen import MutationTestGenerator, TestGenResult
from repro.testgen.random_gen import LfsrGenerator, RandomVectorGenerator

__all__ = [
    "AtpgResult",
    "LfsrGenerator",
    "MutationTestGenerator",
    "Podem",
    "RandomVectorGenerator",
    "TestGenResult",
    "reverse_order_compaction",
]
