"""Pseudo-random stimulus generators.

Two flavours: a seeded uniform generator (experiments) and a maximal-
length Fibonacci LFSR (the classic hardware pseudo-random TPG; useful
for reproducing "pseudo-random test sets generally used as initial test
sets" per the paper's section 3).
"""

from __future__ import annotations

from repro.errors import TestGenError
from repro.util.rng import rng_stream

#: Maximal-length LFSR feedback taps (XOR form, 1-based bit positions),
#: from the standard tables, for register lengths 2..41.
LFSR_TAPS: dict[int, tuple[int, ...]] = {
    2: (2, 1), 3: (3, 2), 4: (4, 3), 5: (5, 3), 6: (6, 5), 7: (7, 6),
    8: (8, 6, 5, 4), 9: (9, 5), 10: (10, 7), 11: (11, 9),
    12: (12, 11, 10, 4), 13: (13, 12, 11, 8), 14: (14, 13, 12, 2),
    15: (15, 14), 16: (16, 15, 13, 4), 17: (17, 14), 18: (18, 11),
    19: (19, 18, 17, 14), 20: (20, 17), 21: (21, 19), 22: (22, 21),
    23: (23, 18), 24: (24, 23, 22, 17), 25: (25, 22),
    26: (26, 25, 24, 20), 27: (27, 26, 25, 22), 28: (28, 25),
    29: (29, 27), 30: (30, 29, 28, 7), 31: (31, 28),
    32: (32, 30, 26, 25), 33: (33, 20), 34: (34, 31, 30, 10),
    35: (35, 33), 36: (36, 25), 37: (37, 36, 33, 31),
    38: (38, 37, 33, 32), 39: (39, 35), 40: (40, 37, 36, 35),
    41: (41, 38),
}


def _validate_taps(taps: dict[int, tuple[int, ...]]) -> None:
    """Sanity-check the tap table once, at import time.

    Guards the invariants the generator relies on: width coverage of at
    least 2..41 (so the wide-fold fallback register always exists) and,
    per width, distinct 1-based taps within range that include the
    register's top bit (necessary for a maximal-length sequence).
    """
    missing = set(range(2, 42)) - set(taps)
    if missing:
        raise TestGenError(
            f"LFSR_TAPS must cover every width in 2..41 (the wide-fold "
            f"fallback register); missing: {sorted(missing)}"
        )
    for width, positions in taps.items():
        if len(set(positions)) != len(positions):
            raise TestGenError(f"LFSR_TAPS[{width}] has duplicate taps")
        if not all(1 <= tap <= width for tap in positions):
            raise TestGenError(
                f"LFSR_TAPS[{width}] has taps outside 1..{width}: "
                f"{positions}"
            )
        if width not in positions:
            raise TestGenError(
                f"LFSR_TAPS[{width}] must include the top bit {width}"
            )


_validate_taps(LFSR_TAPS)


def _check_count(count: int) -> int:
    if count < 1:
        raise TestGenError(f"vector count must be >= 1, got {count}")
    return count


class RandomVectorGenerator:
    """Uniform random ``width``-bit vectors from a labelled seed."""

    def __init__(self, width: int, seed: int, *labels: str):
        if width < 1:
            raise TestGenError("vector width must be >= 1")
        self._width = width
        self._rng = rng_stream(seed, *(labels or ("random-vectors",)))

    @property
    def width(self) -> int:
        return self._width

    def vector(self) -> int:
        return self._rng.getrandbits(self._width)

    def vectors(self, count: int) -> list[int]:
        return [self.vector() for _ in range(_check_count(count))]


class LfsrGenerator:
    """Maximal-length Fibonacci LFSR producing ``width``-bit patterns.

    For widths with a known tap set the sequence has period
    ``2**width - 1`` (the all-zero state is unreachable); wider requests
    chain an inner LFSR and fold, which keeps determinism if not
    maximality.
    """

    def __init__(self, width: int, seed: int = 1):
        if width < 1:
            raise TestGenError("LFSR width must be >= 1")
        self._width = width
        self._reg_width = width if width in LFSR_TAPS else 41
        if width == 1:
            self._reg_width = 2
        self._taps = LFSR_TAPS[self._reg_width]
        mask = (1 << self._reg_width) - 1
        self._state = (seed & mask) or 1

    @property
    def width(self) -> int:
        return self._width

    def step(self) -> int:
        feedback = 0
        for tap in self._taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        self._state = ((self._state << 1) | feedback) & (
            (1 << self._reg_width) - 1
        )
        return self._state

    def vector(self) -> int:
        if self._width <= self._reg_width:
            return self.step() & ((1 << self._width) - 1)
        out = 0
        produced = 0
        while produced < self._width:
            out = (out << self._reg_width) | self.step()
            produced += self._reg_width
        return out & ((1 << self._width) - 1)

    def vectors(self, count: int) -> list[int]:
        return [self.vector() for _ in range(_check_count(count))]
