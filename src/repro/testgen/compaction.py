"""Static test-set compaction by reverse-order fault simulation.

The classic trick: simulate the vectors in reverse order against the
fault list and keep only those that detect a fault not already detected
by a later-kept vector.  Order of the kept vectors is preserved.
Combinational test sets only (each vector detects independently).
"""

from __future__ import annotations

from repro.errors import TestGenError
from repro.fault.comb_sim import CombFaultSimulator
from repro.fault.model import StuckAtFault
from repro.netlist.netlist import Netlist


def reverse_order_compaction(
    netlist: Netlist,
    vectors: list[int],
    faults: list[StuckAtFault] | None = None,
    engine=None,
) -> list[int]:
    """Drop vectors whose detected faults are covered by kept ones."""
    if netlist.dffs:
        raise TestGenError(
            "reverse-order compaction applies to combinational sets only"
        )
    if not vectors:
        return []
    simulator = CombFaultSimulator(netlist, faults, engine=engine)
    result = simulator.simulate(vectors)
    detects_by_vector: dict[int, set[int]] = {}
    for fault_index, first in enumerate(result.detection):
        if first is not None:
            detects_by_vector.setdefault(first, set()).add(fault_index)
    # First-detection indexes alone under-approximate per-vector detection;
    # walk in reverse and re-simulate kept coverage incrementally.
    covered: set[int] = set()
    kept_reversed: list[int] = []
    for index in range(len(vectors) - 1, -1, -1):
        single = simulator.simulate([vectors[index]])
        detected = {
            fi for fi, d in enumerate(single.detection) if d is not None
        }
        if detected - covered:
            kept_reversed.append(index)
            covered |= detected
    kept = sorted(kept_reversed)
    return [vectors[i] for i in kept]
