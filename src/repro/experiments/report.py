"""Text rendering of experiment results (paper-style tables)."""

from __future__ import annotations

import dataclasses
import json

from repro.errors import ConfigError
from repro.experiments.table1 import Table1Result
from repro.experiments.table2 import Table2Result
from repro.util.tables import render_table


def table1_text(result: Table1Result) -> str:
    rows = [
        [
            row.circuit,
            row.operator,
            row.mutants,
            row.test_length,
            round(row.dfc_pct, 2),
            round(row.dl_pct, 2),
            round(row.nlfce, 1),
        ]
        for row in result.rows
    ]
    return render_table(
        ["Circuit", "Operator", "Mutants", "Lm", "dFC%", "dL%", "NLFCE"],
        rows,
        title="Tab. 1: Operator Fault Coverage Efficiency",
    )


def table2_text(result: Table2Result) -> str:
    rows = [
        [
            row.circuit,
            row.strategy,
            row.selected,
            round(row.ms_pct, 2),
            round(row.nlfce, 1),
            row.never_activated,
            row.propagation_blocked,
            row.possibly_equivalent,
        ]
        for row in result.rows
    ]
    return render_table(
        ["Circuit", "Strategy", "Selected", "MS%", "NLFCE",
         "NA", "PB", "PE?"],
        rows,
        title="Tab. 2: Test-oriented sampling vs random sampling (10%)",
    )


def rows_text(rows, headers: list[str], fields: list[str], title: str) -> str:
    table = [
        [_fmt(getattr(row, name)) for name in fields] for row in rows
    ]
    return render_table(headers, table, title=title)


def _fmt(value):
    if isinstance(value, float):
        return round(value, 2)
    return value


def to_json(obj) -> str:
    """Serialize (nested) dataclass results for archiving."""
    def default(value):
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return dataclasses.asdict(value)
        if isinstance(value, set):
            return sorted(value)
        raise TypeError(f"cannot serialize {type(value).__name__}")

    return json.dumps(obj, default=default, indent=2, sort_keys=True)


def write_json(path: str, text: str) -> None:
    """Write a JSON payload produced by one of the serializers."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
            if not text.endswith("\n"):
                handle.write("\n")
    except OSError as exc:
        raise ConfigError(f"cannot write JSON result: {exc}") from exc


def campaign_text(result) -> str:
    """Human summary of a :class:`repro.campaign.CampaignResult`."""
    sections = []
    rows = [
        [
            c.circuit,
            "seq" if c.sequential else "comb",
            c.gates,
            c.dffs,
            c.faults,
            c.mutants,
            c.equivalents,
        ]
        for c in result.circuits
    ]
    sections.append(
        render_table(
            ["Circuit", "Style", "Gates", "DFFs", "Faults", "Mutants",
             "Equiv"],
            rows,
            title="Campaign: circuit inventory",
        )
    )
    if any(c.operators for c in result.circuits):
        sections.append(table1_text(result.table1()))
    if any(c.strategies for c in result.circuits):
        sections.append(table2_text(result.table2()))
    if result.cache_hits:
        sections.append(
            "cache hits: " + ", ".join(result.cache_hits)
        )
    return "\n\n".join(sections)
