"""Validation-data reuse vs. from-scratch ATPG (paper §1 motivation).

The paper's flow argument: validation data are "free" for structural
test, so running them first should cut the deterministic ATPG effort
and the number of extra deterministic vectors.  This experiment
quantifies that on the combinational benchmarks:

* ``atpg-only``    — PODEM targets every collapsed fault;
* ``reuse``        — the mutation-adequate validation data run first,
  PODEM only targets what they leave undetected.

Reported effort: PODEM decisions + backtracks, and the deterministic
vector count.

The validation data come from a campaign with the ``exhaustive``
sampling strategy and a truncated pipeline (no whole-population scoring
or NLFCE — only the vectors matter here); PODEM itself stays outside
the pipeline, consuming the campaign's vector artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.config import CampaignConfig
from repro.campaign.runner import Campaign
from repro.circuits import get_circuit
from repro.experiments.context import LabConfig, get_lab
from repro.testgen.atpg import Podem


@dataclass
class AtpgReuseRow:
    circuit: str
    mode: str
    preload_vectors: int
    preload_coverage_pct: float
    targeted_faults: int
    decisions: int
    backtracks: int
    atpg_vectors: int
    final_coverage_pct: float


def run_atpg_reuse(
    circuits: tuple[str, ...] = ("c17", "c432", "c499"),
    config: LabConfig | None = None,
    testgen_seed: int = 7,
    backtrack_limit: int = 500,
    max_vectors: int = 256,
    fault_stride: int = 1,
) -> list[AtpgReuseRow]:
    """Compare ATPG effort with and without validation-data preload.

    ``fault_stride`` deterministically subsamples the deterministic
    target lists (every n-th fault, applied identically to both modes)
    so quick runs stay a paired comparison.
    """
    config = config or LabConfig()
    comb = tuple(
        name for name in circuits if not get_circuit(name).sequential
    )  # PODEM is combinational
    if not comb:
        return []
    campaign_config = CampaignConfig.from_lab(
        config,
        operators=(),
        strategies=("exhaustive",),
        testgen_seed=testgen_seed,
        max_vectors=max_vectors,
        stages=("synth", "mutants", "sampling", "testgen"),
    )
    campaign = Campaign(campaign_config).run(comb)

    rows: list[AtpgReuseRow] = []
    for circuit in comb:
        lab = get_lab(circuit, config)
        podem = Podem(lab.netlist, backtrack_limit)

        # Mode 1: deterministic-only.
        scratch_targets = lab.faults[::fault_stride]
        atpg_all = podem.run(scratch_targets)
        only_vectors = atpg_all.vectors
        final = lab.fault_sim(only_vectors).coverage() if only_vectors else 0.0
        rows.append(
            AtpgReuseRow(
                circuit=circuit,
                mode="atpg-only",
                preload_vectors=0,
                preload_coverage_pct=0.0,
                targeted_faults=len(scratch_targets),
                decisions=atpg_all.total_decisions,
                backtracks=atpg_all.total_backtracks,
                atpg_vectors=len(only_vectors),
                final_coverage_pct=100.0 * final,
            )
        )

        # Mode 2: validation-data preload, ATPG top-up.
        validation = campaign.circuit(circuit).strategy("exhaustive").vectors
        preload_result = lab.fault_sim(validation)
        remaining = preload_result.undetected_faults()[::fault_stride]
        atpg_rest = podem.run(remaining)
        combined = validation + atpg_rest.vectors
        final = lab.fault_sim(combined).coverage() if combined else 0.0
        rows.append(
            AtpgReuseRow(
                circuit=circuit,
                mode="reuse",
                preload_vectors=len(validation),
                preload_coverage_pct=100.0 * preload_result.coverage(),
                targeted_faults=len(remaining),
                decisions=atpg_rest.total_decisions,
                backtracks=atpg_rest.total_backtracks,
                atpg_vectors=len(atpg_rest.vectors),
                final_coverage_pct=100.0 * final,
            )
        )
    return rows
