"""Table 2 — test-oriented vs. classical random mutant sampling.

Both strategies select the same fraction (10%) of the whole mutant
population; validation data are generated from the *sample* only, then:

* ``MS%`` is computed on the **entire** population (killed / (M - E),
  E from the lab's budgeted equivalence analysis), and
* ``NLFCE`` is computed on the synthesized netlist against the lab's
  pseudo-random baseline,

exactly the two quantities the paper reports per circuit and strategy.
The test-oriented sampler's weights are calibrated from a Table-1-style
run on the same circuit (falling back to the paper's published operator
ranking when calibration is disabled).

This module is a thin facade over the campaign pipeline
(:mod:`repro.campaign`): one default campaign run computes the
calibration pass and both strategies; :func:`run_table2` keeps the
historical signature and result type for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.config import CampaignConfig
from repro.campaign.runner import Campaign
from repro.experiments.context import LabConfig, PAPER_CIRCUITS, PAPER_OPERATORS


@dataclass
class Table2Row:
    circuit: str
    strategy: str
    population: int
    selected: int
    equivalents: int
    killed: int
    ms_pct: float
    test_length: int
    nlfce: float
    #: Survivor triage counts (see repro.mutation.execution).
    never_activated: int = 0
    propagation_blocked: int = 0
    possibly_equivalent: int = 0


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    def row(self, circuit: str, strategy: str) -> Table2Row:
        for row in self.rows:
            if row.circuit == circuit and row.strategy == strategy:
                return row
        raise KeyError(f"no row for {circuit}/{strategy}")

    def advantage(self, circuit: str) -> tuple[float, float]:
        """(MS delta, NLFCE delta): test-oriented minus random."""
        ours = self.row(circuit, "test-oriented")
        random_row = self.row(circuit, "random")
        return (
            ours.ms_pct - random_row.ms_pct,
            ours.nlfce - random_row.nlfce,
        )


def run_table2(
    circuits: tuple[str, ...] = PAPER_CIRCUITS,
    fraction: float = 0.10,
    config: LabConfig | None = None,
    sampling_seed: int = 13,
    testgen_seed: int = 7,
    max_vectors: int = 256,
    calibrate: bool = True,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> Table2Result:
    """Regenerate Table 2 (the default campaign pipeline)."""
    campaign_config = CampaignConfig.from_lab(
        config or LabConfig(),
        operators=PAPER_OPERATORS if calibrate else (),
        strategies=("random", "test-oriented"),
        fraction=fraction,
        weight_scheme="calibrated" if calibrate else "paper-ranks",
        sampling_seed=sampling_seed,
        testgen_seed=testgen_seed,
        max_vectors=max_vectors,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return Campaign(campaign_config).run(tuple(circuits)).table2()
