"""Table 2 — test-oriented vs. classical random mutant sampling.

Both strategies select the same fraction (10%) of the whole mutant
population; validation data are generated from the *sample* only, then:

* ``MS%`` is computed on the **entire** population (killed / (M - E),
  E from the lab's budgeted equivalence analysis), and
* ``NLFCE`` is computed on the synthesized netlist against the lab's
  pseudo-random baseline,

exactly the two quantities the paper reports per circuit and strategy.
The test-oriented sampler's weights are calibrated from a Table-1-style
run on the same circuit (falling back to the paper's published operator
ranking when calibration is disabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import LabConfig, PAPER_CIRCUITS, get_lab
from repro.experiments.table1 import run_table1
from repro.metrics.nlfce import nlfce_from_results
from repro.mutation.score import MutationScore
from repro.sampling.random_sampling import RandomSampling
from repro.sampling.weighted import (
    PAPER_RANK_WEIGHTS,
    TestOrientedSampling,
    weights_from_nlfce,
)
from repro.testgen.mutation_gen import MutationTestGenerator


@dataclass
class Table2Row:
    circuit: str
    strategy: str
    population: int
    selected: int
    equivalents: int
    killed: int
    ms_pct: float
    test_length: int
    nlfce: float


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    def row(self, circuit: str, strategy: str) -> Table2Row:
        for row in self.rows:
            if row.circuit == circuit and row.strategy == strategy:
                return row
        raise KeyError(f"no row for {circuit}/{strategy}")

    def advantage(self, circuit: str) -> tuple[float, float]:
        """(MS delta, NLFCE delta): test-oriented minus random."""
        ours = self.row(circuit, "test-oriented")
        random_row = self.row(circuit, "random")
        return (
            ours.ms_pct - random_row.ms_pct,
            ours.nlfce - random_row.nlfce,
        )


def run_table2(
    circuits: tuple[str, ...] = PAPER_CIRCUITS,
    fraction: float = 0.10,
    config: LabConfig | None = None,
    sampling_seed: int = 13,
    testgen_seed: int = 7,
    max_vectors: int = 256,
    calibrate: bool = True,
) -> Table2Result:
    """Regenerate Table 2."""
    config = config or LabConfig()
    result = Table2Result()
    calibration = (
        run_table1(
            circuits=circuits, config=config, testgen_seed=testgen_seed,
            max_vectors=max_vectors,
        )
        if calibrate
        else None
    )
    for circuit in circuits:
        lab = get_lab(circuit, config)
        population = lab.all_mutants
        equivalence = lab.equivalence
        if calibration is not None:
            measured = calibration.nlfce_by_operator(circuit)
            weights = (
                weights_from_nlfce(measured)
                if measured
                else dict(PAPER_RANK_WEIGHTS)
            )
            # Operators without a calibration row keep their paper rank
            # (scaled into the calibrated scale's [floor, 1] band).
            for op, rank in PAPER_RANK_WEIGHTS.items():
                weights.setdefault(op, rank / 4.0)
        else:
            weights = dict(PAPER_RANK_WEIGHTS)
        strategies = [
            RandomSampling(fraction),
            TestOrientedSampling(weights, fraction),
        ]
        for strategy in strategies:
            sample = strategy.sample(
                population, sampling_seed, circuit
            )
            generator = MutationTestGenerator(
                lab.design,
                seed=testgen_seed,
                engine=lab.engine,
                max_vectors=max_vectors,
            )
            testgen = generator.generate(sample)
            vectors = testgen.vectors
            # MS over the whole population; known-equivalent mutants are
            # excluded from both the runs and the denominator.
            targets = [
                m for m in population
                if m.mid not in equivalence.equivalent_mids
            ]
            killed = lab.engine.killed_mids(targets, vectors) if vectors else set()
            score = MutationScore(
                total=len(population),
                killed=len(killed),
                equivalents=equivalence.count,
            )
            if vectors:
                report = nlfce_from_results(
                    lab.fault_sim(vectors), lab.random_baseline
                )
                nlfce = report.nlfce
                length = report.mutation_length
            else:
                nlfce = 0.0
                length = 0
            result.rows.append(
                Table2Row(
                    circuit=circuit,
                    strategy=strategy.name,
                    population=len(population),
                    selected=len(sample),
                    equivalents=equivalence.count,
                    killed=len(killed),
                    ms_pct=score.percent,
                    test_length=length,
                    nlfce=nlfce,
                )
            )
    return result
