"""Shared per-circuit experiment state with caching.

Synthesis, fault collapsing, the random fault-coverage baseline, the
mutant population and the equivalence analysis are all deterministic
given (circuit, seed, budgets) — :func:`get_lab` memoizes them so Table
1, Table 2 and the ablations never recompute each other's inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.prune import split_untestable
from repro.circuits import get_circuit, load_circuit
from repro.engine import DEFAULT_ENGINE
from repro.fault.coverage import FaultSimResult
from repro.fault.models import DEFAULT_FAULT_MODEL, build_fault_model
from repro.hdl.design import Design
from repro.mutation.execution import MutationEngine
from repro.mutation.generator import generate_mutants
from repro.mutation.mutant import Mutant
from repro.mutation.score import EquivalenceAnalysis, estimate_equivalents
from repro.netlist.netlist import Netlist
from repro.sim.testbench import StimulusEncoder
from repro.synth import synthesize
from repro.testgen.random_gen import RandomVectorGenerator


@dataclass
class LabConfig:
    """Budgets and seeds shared by the experiments.

    This is the lab-level slice of the full campaign configuration; the
    pipeline derives one via :meth:`from_campaign` (see
    :class:`repro.campaign.CampaignConfig`, which callers should prefer
    as the single configuration object).
    """

    seed: int = 20050301
    random_budget_comb: int = 2048
    random_budget_seq: int = 1024
    equivalence_budget: int = 256
    fault_lanes: int = 256
    engine: str = DEFAULT_ENGINE
    fault_model: str = DEFAULT_FAULT_MODEL
    fault_model_knobs: dict | None = None
    #: Skip simulating provably untestable faults (repro.analyze.prune).
    #: Payloads stay bit-identical: pruned faults are still reported,
    #: as undetected, in every result.
    prune_untestable: bool = False

    def random_budget(self, sequential: bool) -> int:
        return (
            self.random_budget_seq if sequential else self.random_budget_comb
        )

    @classmethod
    def from_campaign(cls, config) -> "LabConfig":
        """The lab slice of a :class:`repro.campaign.CampaignConfig`."""
        return cls(
            seed=config.seed,
            random_budget_comb=config.random_budget_comb,
            random_budget_seq=config.random_budget_seq,
            equivalence_budget=config.equivalence_budget,
            fault_lanes=config.fault_lanes,
            engine=config.engine,
            fault_model=config.fault_model,
            fault_model_knobs=config.fault_model_knobs,
            prune_untestable=config.prune_untestable,
        )


class CircuitLab:
    """Everything the experiments need about one benchmark circuit."""

    def __init__(self, name: str, config: LabConfig | None = None):
        self.name = name
        self.info = get_circuit(name)
        self.config = config or LabConfig()
        self.design: Design = load_circuit(name)
        self.netlist: Netlist = synthesize(self.design)
        self.fault_model = build_fault_model(
            self.config.fault_model, self.config.fault_model_knobs
        )
        self.faults: list = self.fault_model.collapse(self.netlist)
        #: collapse order, minus provably untestable faults — the list
        #: actually simulated.  ``faults`` stays the full universe so
        #: coverage denominators and payloads are unchanged by pruning.
        self.sim_faults: list = self.faults
        #: [(pruned fault, reason)] in collapse order.
        self.pruned_faults: list[tuple[object, str]] = []
        if self.config.prune_untestable:
            self.sim_faults, self.pruned_faults = split_untestable(
                self.netlist, self.faults
            )
        self.encoder = StimulusEncoder(self.design)
        self.engine = MutationEngine(self.design)
        self._random_vectors: list[int] | None = None
        self._random_baseline: FaultSimResult | None = None
        self._mutants: list[Mutant] | None = None
        self._equivalence: EquivalenceAnalysis | None = None

    # -- random baseline -----------------------------------------------------

    @property
    def random_vectors(self) -> list[int]:
        """The pseudo-random baseline test set (fixed per lab)."""
        if self._random_vectors is None:
            budget = self.config.random_budget(self.design.is_sequential)
            gen = RandomVectorGenerator(
                self.encoder.width, self.config.seed, self.name,
                "random-baseline",
            )
            self._random_vectors = gen.vectors(budget)
        return self._random_vectors

    @property
    def random_baseline(self) -> FaultSimResult:
        """Fault-simulation of the random baseline (RFC curve)."""
        if self._random_baseline is None:
            self._random_baseline = self.fault_sim(self.random_vectors)
        return self._random_baseline

    def fault_sim(self, vectors: list[int]) -> FaultSimResult:
        result = self.fault_model.simulate(
            self.netlist, vectors, self.sim_faults, self.config.fault_lanes,
            engine=self.config.engine,
        )
        return self.expand_detection(result)

    def expand_detection(self, result: FaultSimResult) -> FaultSimResult:
        """Re-inflate a simulated-faults result to the full universe.

        Pruned faults re-enter at their collapse-order positions as
        undetected (``None``) — which is what simulating them would
        have produced, so payloads are bit-identical with pruning on
        or off.
        """
        if not self.pruned_faults:
            return result
        pruned = {id(fault) for fault, _ in self.pruned_faults}
        simulated = iter(result.detection)
        detection = [
            None if id(fault) in pruned else next(simulated)
            for fault in self.faults
        ]
        return FaultSimResult(
            list(self.faults), detection, result.num_patterns
        )

    @property
    def has_random_baseline(self) -> bool:
        """Whether the lazy baseline is already materialized."""
        return self._random_baseline is not None

    @property
    def has_equivalence(self) -> bool:
        """Whether the lazy equivalence analysis is already materialized."""
        return self._equivalence is not None

    def prime_random_baseline(self, result: FaultSimResult) -> None:
        """Seed the lazy baseline with an externally computed result.

        Used by the grid executor, whose sharded computation is
        bit-identical to the serial one by contract; a baseline that is
        already materialized wins (first computation sticks).
        """
        if self._random_baseline is None:
            self._random_baseline = result

    def prime_equivalence(self, analysis: "EquivalenceAnalysis") -> None:
        """Seed the lazy equivalence analysis (grid counterpart)."""
        if self._equivalence is None:
            self._equivalence = analysis

    # -- mutants ----------------------------------------------------------------

    @property
    def all_mutants(self) -> list[Mutant]:
        if self._mutants is None:
            self._mutants = generate_mutants(self.design)
        return self._mutants

    @property
    def equivalence(self) -> EquivalenceAnalysis:
        """Budgeted equivalent-mutant classification (cached)."""
        if self._equivalence is None:
            self._equivalence = estimate_equivalents(
                self.design,
                self.all_mutants,
                budget=self.config.equivalence_budget,
                seed=self.config.seed,
            )
        return self._equivalence


_LABS: dict[tuple, CircuitLab] = {}


def get_lab(name: str, config: LabConfig | None = None) -> CircuitLab:
    """Memoized :class:`CircuitLab` lookup."""
    config = config or LabConfig()
    knobs = config.fault_model_knobs
    key = (
        name, config.seed, config.random_budget_comb,
        config.random_budget_seq, config.equivalence_budget,
        config.fault_lanes, config.engine, config.fault_model,
        None if knobs is None else tuple(sorted(knobs.items())),
        config.prune_untestable,
    )
    if key not in _LABS:
        _LABS[key] = CircuitLab(name, config)
    return _LABS[key]


from repro.campaign.config import (  # noqa: E402  (single source of truth)
    DEFAULT_CIRCUITS,
    DEFAULT_OPERATORS,
)

#: The four circuits of the paper's evaluation.
PAPER_CIRCUITS = DEFAULT_CIRCUITS
#: The operators of Table 1.
PAPER_OPERATORS = DEFAULT_OPERATORS
