"""Table 1 — Operator Fault Coverage Efficiency.

For each (circuit, operator) pair: generate the operator's mutants,
derive mutation-adequate validation data from them, fault-simulate the
data on the synthesized gate-level netlist and compare against the
pseudo-random baseline via ΔFC%, ΔL% and NLFCE.

The paper notes operators only appear where they apply ("CR ... is only
used if the high level description includes a constant declaration");
pairs with no mutation sites are skipped the same way.

This module is a thin facade: the computation is the campaign
pipeline's calibration pass (:mod:`repro.campaign`) with sampling
disabled; :func:`run_table1` keeps the historical signature and result
type for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.config import CampaignConfig
from repro.campaign.runner import Campaign
from repro.experiments.context import LabConfig, PAPER_CIRCUITS, PAPER_OPERATORS
from repro.metrics.nlfce import NlfceReport


@dataclass
class Table1Row:
    circuit: str
    operator: str
    mutants: int
    test_length: int
    mfc_pct: float
    dfc_pct: float
    dl_pct: float
    nlfce: float
    reached_mfc: bool

    @classmethod
    def from_report(
        cls, circuit: str, operator: str, mutants: int,
        report: NlfceReport,
    ) -> "Table1Row":
        return cls(
            circuit=circuit,
            operator=operator,
            mutants=mutants,
            test_length=report.mutation_length,
            mfc_pct=100.0 * report.mfc,
            dfc_pct=report.delta_fc_pct,
            dl_pct=report.delta_l_pct,
            nlfce=report.nlfce,
            reached_mfc=report.reached_mfc,
        )


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    def nlfce_by_operator(self, circuit: str) -> dict[str, float]:
        """Calibration input for the test-oriented sampler."""
        return {
            row.operator: row.nlfce
            for row in self.rows
            if row.circuit == circuit
        }

    def operator_ranking(self, circuit: str) -> list[str]:
        pairs = sorted(
            self.nlfce_by_operator(circuit).items(), key=lambda kv: kv[1]
        )
        return [op for op, _ in pairs]


def run_table1(
    circuits: tuple[str, ...] = PAPER_CIRCUITS,
    operators: tuple[str, ...] = PAPER_OPERATORS,
    config: LabConfig | None = None,
    testgen_seed: int = 7,
    max_vectors: int = 256,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> Table1Result:
    """Regenerate Table 1 (a calibration-only campaign)."""
    campaign_config = CampaignConfig.from_lab(
        config or LabConfig(),
        operators=tuple(operators),
        strategies=(),
        testgen_seed=testgen_seed,
        max_vectors=max_vectors,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return Campaign(campaign_config).run(tuple(circuits)).table1()
