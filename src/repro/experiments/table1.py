"""Table 1 — Operator Fault Coverage Efficiency.

For each (circuit, operator) pair: generate the operator's mutants,
derive mutation-adequate validation data from them, fault-simulate the
data on the synthesized gate-level netlist and compare against the
pseudo-random baseline via ΔFC%, ΔL% and NLFCE.

The paper notes operators only appear where they apply ("CR ... is only
used if the high level description includes a constant declaration");
pairs with no mutation sites are skipped the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.context import (
    LabConfig,
    PAPER_CIRCUITS,
    PAPER_OPERATORS,
    get_lab,
)
from repro.metrics.nlfce import NlfceReport, nlfce_from_results
from repro.mutation.generator import generate_mutants
from repro.testgen.mutation_gen import MutationTestGenerator


@dataclass
class Table1Row:
    circuit: str
    operator: str
    mutants: int
    test_length: int
    mfc_pct: float
    dfc_pct: float
    dl_pct: float
    nlfce: float
    reached_mfc: bool

    @classmethod
    def from_report(
        cls, circuit: str, operator: str, mutants: int,
        report: NlfceReport,
    ) -> "Table1Row":
        return cls(
            circuit=circuit,
            operator=operator,
            mutants=mutants,
            test_length=report.mutation_length,
            mfc_pct=100.0 * report.mfc,
            dfc_pct=report.delta_fc_pct,
            dl_pct=report.delta_l_pct,
            nlfce=report.nlfce,
            reached_mfc=report.reached_mfc,
        )


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    def nlfce_by_operator(self, circuit: str) -> dict[str, float]:
        """Calibration input for the test-oriented sampler."""
        return {
            row.operator: row.nlfce
            for row in self.rows
            if row.circuit == circuit
        }

    def operator_ranking(self, circuit: str) -> list[str]:
        pairs = sorted(
            self.nlfce_by_operator(circuit).items(), key=lambda kv: kv[1]
        )
        return [op for op, _ in pairs]


def run_table1(
    circuits: tuple[str, ...] = PAPER_CIRCUITS,
    operators: tuple[str, ...] = PAPER_OPERATORS,
    config: LabConfig | None = None,
    testgen_seed: int = 7,
    max_vectors: int = 256,
) -> Table1Result:
    """Regenerate Table 1."""
    config = config or LabConfig()
    result = Table1Result()
    for circuit in circuits:
        lab = get_lab(circuit, config)
        baseline = lab.random_baseline
        for operator in operators:
            mutants = generate_mutants(lab.design, [operator])
            if not mutants:
                continue  # operator does not apply to this description
            generator = MutationTestGenerator(
                lab.design,
                seed=testgen_seed,
                engine=lab.engine,
                max_vectors=max_vectors,
            )
            testgen = generator.generate(mutants)
            if not testgen.vectors:
                continue  # nothing mutation-adequate found
            mutation_result = lab.fault_sim(testgen.vectors)
            report = nlfce_from_results(mutation_result, baseline)
            result.rows.append(
                Table1Row.from_report(
                    circuit, operator, len(mutants), report
                )
            )
    return result
