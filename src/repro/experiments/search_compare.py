"""Search-strategy comparison: kills per candidate at equal budget.

For each circuit every registered (or requested) :mod:`repro.search`
strategy runs the mutation-adequate generator against the same mutant
population, the same candidate budget and the same labelled seed; the
rows quantify kills-per-candidate versus the blind ``random`` baseline.
Fitness is evaluated through the lab's :class:`MutationEngine`, so the
compiled backend's speed directly buys search depth.

Caveat worth knowing when reading sequential rows: the generator grows
one greedy reset-started sequence, so on small sequential benches
(b01's two-bit stimulus) the committed prefix dominates — every
strategy converges to the same plateau once the remaining mutants'
machines have synchronized with the reference.  The combinational rows
are where corpus guidance buys the most.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.context import LabConfig, get_lab
from repro.search import SearchBudget, search_strategy_names
from repro.testgen.mutation_gen import MutationTestGenerator

#: The default evaluation pair: one ISCAS-85 combinational circuit and
#: one ITC'99 sequential bench (the paper's two families).
DEFAULT_SEARCH_CIRCUITS = ("c432", "b01")

#: Generator seed of the shipped comparison (and BENCH_search.json).
DEFAULT_SEARCH_SEED = 5


@dataclass
class SearchCompareRow:
    """One (circuit, strategy) evaluation at a fixed candidate budget."""

    circuit: str
    strategy: str
    budget: int
    candidates: int            #: candidates actually proposed
    vectors: int               #: mutation-adequate vectors selected
    killed: int
    targets: int
    seconds: float

    @property
    def kill_pct(self) -> float:
        if self.targets == 0:
            return 100.0
        return 100.0 * self.killed / self.targets

    @property
    def kills_per_1k(self) -> float:
        """Kills per 1000 proposed candidates (the efficiency metric)."""
        if self.candidates == 0:
            return 0.0
        return 1000.0 * self.killed / self.candidates


def run_search_compare(
    circuits: tuple[str, ...] = DEFAULT_SEARCH_CIRCUITS,
    strategies: tuple[str, ...] | None = None,
    budget: int = 512,
    config: LabConfig | None = None,
    testgen_seed: int = DEFAULT_SEARCH_SEED,
    max_vectors: int = 128,
) -> list[SearchCompareRow]:
    """Run every strategy on every circuit at an equal candidate budget."""
    config = config or LabConfig()
    names = tuple(strategies) if strategies else search_strategy_names()
    rows: list[SearchCompareRow] = []
    for circuit in circuits:
        lab = get_lab(circuit, config)
        mutants = lab.all_mutants
        for name in names:
            generator = MutationTestGenerator(
                lab.design,
                seed=testgen_seed,
                engine=lab.engine,
                max_vectors=max_vectors,
                strategy=name,
                search_budget=SearchBudget(max_candidates=budget),
            )
            started = time.monotonic()
            result = generator.generate(mutants)
            rows.append(
                SearchCompareRow(
                    circuit=circuit,
                    strategy=name,
                    budget=budget,
                    candidates=result.candidates_tried,
                    vectors=len(result.vectors),
                    killed=len(result.killed_mids),
                    targets=result.total_targets,
                    seconds=time.monotonic() - started,
                )
            )
    return rows
