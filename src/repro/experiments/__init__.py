"""Experiment harness regenerating the paper's evaluation.

* :mod:`repro.experiments.table1` — Table 1, operator fault-coverage
  efficiency (ΔFC%, ΔL%, NLFCE per circuit/operator)
* :mod:`repro.experiments.table2` — Table 2, test-oriented vs random
  10% mutant sampling (MS% and NLFCE per circuit)
* :mod:`repro.experiments.atpg_reuse` — the §1 claim: validation-data
  reuse reduces gate-level ATPG effort
* :mod:`repro.experiments.ablation` — sampling-rate and weight-scheme
  ablations
"""

from repro.experiments.context import CircuitLab, get_lab
from repro.experiments.table1 import Table1Result, Table1Row, run_table1
from repro.experiments.table2 import Table2Result, Table2Row, run_table2
from repro.experiments.atpg_reuse import AtpgReuseRow, run_atpg_reuse
from repro.experiments.ablation import run_rate_ablation, run_weight_ablation
from repro.experiments.report import table1_text, table2_text

__all__ = [
    "AtpgReuseRow",
    "CircuitLab",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "Table2Row",
    "get_lab",
    "run_atpg_reuse",
    "run_rate_ablation",
    "run_table1",
    "run_table2",
    "run_weight_ablation",
    "table1_text",
    "table2_text",
]
