"""Experiment harness regenerating the paper's evaluation.

Every experiment here is a thin consumer of the campaign pipeline
(:mod:`repro.campaign`) — the historical ``run_*`` entry points and
result types are kept as the stable facade:

* :mod:`repro.experiments.table1` — Table 1, operator fault-coverage
  efficiency (ΔFC%, ΔL%, NLFCE per circuit/operator)
* :mod:`repro.experiments.table2` — Table 2, test-oriented vs random
  10% mutant sampling (MS% and NLFCE per circuit)
* :mod:`repro.experiments.atpg_reuse` — the §1 claim: validation-data
  reuse reduces gate-level ATPG effort
* :mod:`repro.experiments.ablation` — sampling-rate and weight-scheme
  ablations
* :mod:`repro.experiments.search_compare` — search strategies compared
  at an equal candidate budget (kills per candidate vs. the blind
  baseline)
"""

from repro.experiments.context import CircuitLab, LabConfig, get_lab
from repro.experiments.table1 import Table1Result, Table1Row, run_table1
from repro.experiments.table2 import Table2Result, Table2Row, run_table2
from repro.experiments.atpg_reuse import AtpgReuseRow, run_atpg_reuse
from repro.experiments.ablation import run_rate_ablation, run_weight_ablation
from repro.experiments.search_compare import (
    SearchCompareRow,
    run_search_compare,
)
from repro.experiments.report import campaign_text, table1_text, table2_text

__all__ = [
    "AtpgReuseRow",
    "SearchCompareRow",
    "CircuitLab",
    "LabConfig",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "Table2Row",
    "campaign_text",
    "get_lab",
    "run_atpg_reuse",
    "run_rate_ablation",
    "run_search_compare",
    "run_table1",
    "run_table2",
    "run_weight_ablation",
    "table1_text",
    "table2_text",
]
