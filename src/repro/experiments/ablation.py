"""Ablations around the paper's design choices.

* sampling-rate sweep — does the test-oriented advantage persist at
  5/10/20/40% sampling?
* weight-scheme sweep — calibrated NLFCE weights vs. the paper's rank
  ordering vs. uniform weights (uniform reduces to stratified-random).

Both sweeps are thin consumers of the campaign pipeline: the operator
calibration runs once (a Table-1 campaign), then each variant is an
evaluation-only campaign with explicit weights, the variant's sampling
fraction, and the variant name mixed into the sampling stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.config import CampaignConfig
from repro.campaign.runner import Campaign
from repro.experiments.context import LabConfig
from repro.experiments.table1 import run_table1
from repro.sampling.weighted import PAPER_RANK_WEIGHTS, weights_from_nlfce


@dataclass
class AblationRow:
    circuit: str
    variant: str
    fraction: float
    selected: int
    ms_pct: float
    nlfce: float


def _calibrated_weights(
    circuit: str, config: LabConfig, testgen_seed: int, max_vectors: int
) -> dict[str, float]:
    calibration = run_table1(
        circuits=(circuit,), config=config, testgen_seed=testgen_seed,
        max_vectors=max_vectors,
    )
    measured = calibration.nlfce_by_operator(circuit)
    return (
        weights_from_nlfce(measured) if measured else dict(PAPER_RANK_WEIGHTS)
    )


def _evaluate(
    circuit: str,
    config: LabConfig,
    strategy: str,
    fraction: float,
    weights: dict[str, float],
    variant_label: str,
    sampling_seed: int,
    testgen_seed: int,
    max_vectors: int,
) -> "tuple[int, float, float]":
    """(selected, MS%, NLFCE) of one strategy/fraction/weights variant."""
    campaign_config = CampaignConfig.from_lab(
        config,
        operators=(),
        strategies=(strategy,),
        fraction=fraction,
        weights=weights,
        sample_labels=(variant_label,),
        sampling_seed=sampling_seed,
        testgen_seed=testgen_seed,
        max_vectors=max_vectors,
    )
    result = Campaign(campaign_config).run((circuit,))
    row = result.circuit(circuit).strategies[0]
    return row.selected, row.ms_pct, row.nlfce


def run_rate_ablation(
    circuit: str = "b01",
    rates: tuple[float, ...] = (0.05, 0.10, 0.20, 0.40),
    config: LabConfig | None = None,
    sampling_seed: int = 13,
    testgen_seed: int = 7,
    max_vectors: int = 256,
) -> list[AblationRow]:
    config = config or LabConfig()
    weights = _calibrated_weights(circuit, config, testgen_seed, max_vectors)
    rows: list[AblationRow] = []
    for rate in rates:
        for strategy in ("random", "test-oriented"):
            selected, ms_pct, nlfce = _evaluate(
                circuit, config, strategy, rate, weights, f"rate{rate}",
                sampling_seed, testgen_seed, max_vectors,
            )
            rows.append(
                AblationRow(
                    circuit=circuit,
                    variant=strategy,
                    fraction=rate,
                    selected=selected,
                    ms_pct=ms_pct,
                    nlfce=nlfce,
                )
            )
    return rows


def run_weight_ablation(
    circuit: str = "b01",
    fraction: float = 0.10,
    config: LabConfig | None = None,
    sampling_seed: int = 13,
    testgen_seed: int = 7,
    max_vectors: int = 256,
) -> list[AblationRow]:
    config = config or LabConfig()
    calibration = run_table1(
        circuits=(circuit,), config=config, testgen_seed=testgen_seed,
        max_vectors=max_vectors,
    )
    measured = calibration.nlfce_by_operator(circuit)
    schemes: dict[str, dict[str, float]] = {
        "paper-ranks": dict(PAPER_RANK_WEIGHTS),
        "uniform": {op: 1.0 for op in PAPER_RANK_WEIGHTS},
    }
    if measured:
        schemes["calibrated"] = weights_from_nlfce(measured)
    rows: list[AblationRow] = []
    for variant, weights in sorted(schemes.items()):
        selected, ms_pct, nlfce = _evaluate(
            circuit, config, "test-oriented", fraction, weights, variant,
            sampling_seed, testgen_seed, max_vectors,
        )
        rows.append(
            AblationRow(
                circuit=circuit,
                variant=variant,
                fraction=fraction,
                selected=selected,
                ms_pct=ms_pct,
                nlfce=nlfce,
            )
        )
    return rows
