"""Ablations around the paper's design choices.

* sampling-rate sweep — does the test-oriented advantage persist at
  5/10/20/40% sampling?
* weight-scheme sweep — calibrated NLFCE weights vs. the paper's rank
  ordering vs. uniform weights (uniform reduces to stratified-random).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import LabConfig, get_lab
from repro.experiments.table1 import run_table1
from repro.metrics.nlfce import nlfce_from_results
from repro.mutation.score import MutationScore
from repro.sampling.random_sampling import RandomSampling
from repro.sampling.weighted import (
    PAPER_RANK_WEIGHTS,
    TestOrientedSampling,
    weights_from_nlfce,
)
from repro.testgen.mutation_gen import MutationTestGenerator


@dataclass
class AblationRow:
    circuit: str
    variant: str
    fraction: float
    selected: int
    ms_pct: float
    nlfce: float


def _evaluate_sample(lab, sample, testgen_seed: int, max_vectors: int):
    generator = MutationTestGenerator(
        lab.design, seed=testgen_seed, engine=lab.engine,
        max_vectors=max_vectors,
    )
    vectors = generator.generate(sample).vectors
    equivalence = lab.equivalence
    targets = [
        m for m in lab.all_mutants
        if m.mid not in equivalence.equivalent_mids
    ]
    killed = lab.engine.killed_mids(targets, vectors) if vectors else set()
    score = MutationScore(
        total=len(lab.all_mutants),
        killed=len(killed),
        equivalents=equivalence.count,
    )
    if vectors:
        nlfce = nlfce_from_results(
            lab.fault_sim(vectors), lab.random_baseline
        ).nlfce
    else:
        nlfce = 0.0
    return score.percent, nlfce


def run_rate_ablation(
    circuit: str = "b01",
    rates: tuple[float, ...] = (0.05, 0.10, 0.20, 0.40),
    config: LabConfig | None = None,
    sampling_seed: int = 13,
    testgen_seed: int = 7,
    max_vectors: int = 256,
) -> list[AblationRow]:
    config = config or LabConfig()
    lab = get_lab(circuit, config)
    calibration = run_table1(
        circuits=(circuit,), config=config, testgen_seed=testgen_seed,
        max_vectors=max_vectors,
    )
    measured = calibration.nlfce_by_operator(circuit)
    weights = (
        weights_from_nlfce(measured) if measured else dict(PAPER_RANK_WEIGHTS)
    )
    rows: list[AblationRow] = []
    for rate in rates:
        for strategy in (
            RandomSampling(rate),
            TestOrientedSampling(weights, rate),
        ):
            sample = strategy.sample(
                lab.all_mutants, sampling_seed, circuit, f"rate{rate}"
            )
            ms_pct, nlfce = _evaluate_sample(
                lab, sample, testgen_seed, max_vectors
            )
            rows.append(
                AblationRow(
                    circuit=circuit,
                    variant=strategy.name,
                    fraction=rate,
                    selected=len(sample),
                    ms_pct=ms_pct,
                    nlfce=nlfce,
                )
            )
    return rows


def run_weight_ablation(
    circuit: str = "b01",
    fraction: float = 0.10,
    config: LabConfig | None = None,
    sampling_seed: int = 13,
    testgen_seed: int = 7,
    max_vectors: int = 256,
) -> list[AblationRow]:
    config = config or LabConfig()
    lab = get_lab(circuit, config)
    calibration = run_table1(
        circuits=(circuit,), config=config, testgen_seed=testgen_seed,
        max_vectors=max_vectors,
    )
    measured = calibration.nlfce_by_operator(circuit)
    schemes: dict[str, dict[str, float]] = {
        "paper-ranks": dict(PAPER_RANK_WEIGHTS),
        "uniform": {op: 1.0 for op in PAPER_RANK_WEIGHTS},
    }
    if measured:
        schemes["calibrated"] = weights_from_nlfce(measured)
    rows: list[AblationRow] = []
    for variant, weights in sorted(schemes.items()):
        strategy = TestOrientedSampling(weights, fraction)
        sample = strategy.sample(
            lab.all_mutants, sampling_seed, circuit, variant
        )
        ms_pct, nlfce = _evaluate_sample(
            lab, sample, testgen_seed, max_vectors
        )
        rows.append(
            AblationRow(
                circuit=circuit,
                variant=variant,
                fraction=fraction,
                selected=len(sample),
                ms_pct=ms_pct,
                nlfce=nlfce,
            )
        )
    return rows
