"""Bit-blasted word operations over builder net handles.

All functions take LSB-first bit lists whose elements are
:class:`repro.netlist.netlist.NetlistBuilder` net handles (real ids or
constant sentinels).  Widths are small (benchmark state registers), so
ripple structures are appropriate.
"""

from __future__ import annotations

from repro.errors import SynthesisError
from repro.netlist.netlist import CONST0, CONST1, NetlistBuilder

Bits = tuple[int, ...]


def const_bits(value: int, width: int) -> Bits:
    """Encode a non-negative integer as constant sentinel bits."""
    if value < 0:
        raise SynthesisError(f"cannot encode negative constant {value}")
    if width and value >> width:
        raise SynthesisError(f"constant {value} does not fit {width} bits")
    return tuple(
        CONST1 if (value >> i) & 1 else CONST0 for i in range(width)
    )


def zext(bits: Bits, width: int) -> Bits:
    """Zero-extend (or validate) to ``width`` bits."""
    if len(bits) > width:
        raise SynthesisError(
            f"cannot narrow {len(bits)} bits to {width} by extension"
        )
    return tuple(bits) + (CONST0,) * (width - len(bits))


def truncate(bits: Bits, width: int) -> Bits:
    return tuple(bits[:width])


def fit(bits: Bits, width: int) -> Bits:
    """Zero-extend or truncate to exactly ``width`` bits."""
    if len(bits) >= width:
        return truncate(bits, width)
    return zext(bits, width)


def bitwise_not(builder: NetlistBuilder, bits: Bits) -> Bits:
    return tuple(builder.g_not(b) for b in bits)


def full_adder(
    builder: NetlistBuilder, a: int, b: int, carry: int
) -> tuple[int, int]:
    axb = builder.g_xor(a, b)
    total = builder.g_xor(axb, carry)
    carry_out = builder.g_or(builder.g_and(a, b), builder.g_and(carry, axb))
    return total, carry_out


def add(builder: NetlistBuilder, a: Bits, b: Bits) -> Bits:
    """Unsigned ripple-carry addition; result is one bit wider."""
    width = max(len(a), len(b))
    a = zext(a, width)
    b = zext(b, width)
    carry = CONST0
    out = []
    for i in range(width):
        total, carry = full_adder(builder, a[i], b[i], carry)
        out.append(total)
    out.append(carry)
    return tuple(out)


def sub(builder: NetlistBuilder, a: Bits, b: Bits) -> Bits:
    """``a - b`` assuming ``a >= b`` (two's complement, carry dropped)."""
    width = max(len(a), len(b))
    a = zext(a, width)
    b = zext(b, width)
    carry = CONST1
    out = []
    for i in range(width):
        total, carry = full_adder(builder, a[i], builder.g_not(b[i]), carry)
        out.append(total)
    return tuple(out)


def mul(builder: NetlistBuilder, a: Bits, b: Bits) -> Bits:
    """Unsigned shift-and-add multiplication."""
    result: Bits = const_bits(0, len(a) + len(b))
    for j, b_bit in enumerate(b):
        partial = tuple(builder.g_and(a_bit, b_bit) for a_bit in a)
        shifted = const_bits(0, j) + partial
        result = fit(add(builder, result, shifted), len(a) + len(b))
    return result


def less_than(builder: NetlistBuilder, a: Bits, b: Bits) -> int:
    """Unsigned ``a < b`` via ripple borrow (majority form)."""
    width = max(len(a), len(b))
    a = zext(a, width)
    b = zext(b, width)
    borrow = CONST0
    for i in range(width):
        not_a = builder.g_not(a[i])
        borrow = builder.g_or(
            builder.g_and(not_a, b[i]),
            builder.g_and(builder.g_or(not_a, b[i]), borrow),
        )
    return borrow


def equal(builder: NetlistBuilder, a: Bits, b: Bits) -> int:
    width = max(len(a), len(b))
    a = zext(a, width)
    b = zext(b, width)
    matches = [builder.g_xnor(a[i], b[i]) for i in range(width)]
    return builder.reduce_tree_and(matches)


def mux_bits(builder: NetlistBuilder, sel: int, t: Bits, f: Bits) -> Bits:
    width = max(len(t), len(f))
    t = zext(t, width)
    f = zext(f, width)
    return tuple(builder.mux(sel, t[i], f[i]) for i in range(width))


def mod_const(builder: NetlistBuilder, a: Bits, modulus: int) -> Bits:
    """``a mod modulus`` for a constant positive modulus.

    Power-of-two moduli reduce to slicing; otherwise conditional
    subtraction (bounded because widths are small).
    """
    if modulus <= 0:
        raise SynthesisError(f"modulus must be positive, got {modulus}")
    if modulus & (modulus - 1) == 0:
        width = modulus.bit_length() - 1
        if width == 0:
            return const_bits(0, 1)
        return fit(a, width)
    result_width = (modulus - 1).bit_length()
    max_value = (1 << len(a)) - 1
    iterations = max_value // modulus
    if iterations > 64:
        raise SynthesisError(
            f"mod by {modulus} over {len(a)} bits needs {iterations} "
            "subtractions; widen the design types instead"
        )
    value = tuple(a)
    m_bits = const_bits(modulus, len(a) + 1)
    for _ in range(iterations):
        value_ext = zext(value, len(m_bits))
        ge = builder.g_not(less_than(builder, value_ext, m_bits))
        reduced = sub(builder, value_ext, m_bits)
        value = mux_bits(builder, ge, reduced, value_ext)
    return fit(value, result_width)
