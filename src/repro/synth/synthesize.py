"""Top-level synthesis: elaborated design -> gate-level netlist."""

from __future__ import annotations

from repro.errors import LatchInferenceError, SynthesisError
from repro.hdl.design import Design, Process, Symbol
from repro.netlist.netlist import CONST0, CONST1, Netlist, NetlistBuilder
from repro.synth.symexec import SymExec, SymVal, encode_const, type_kind, type_width


def synthesize(design: Design) -> Netlist:
    """Lower ``design`` to gates; see package docstring for the method."""
    builder = NetlistBuilder(design.name)
    env: dict[str, SymVal] = {}

    control = set(design.clocks) | set(design.resets)
    for port in design.input_ports:
        if port.name in control:
            continue  # clock/reset are implicit in the DFF model
        width = type_width(port.ty)
        msb_first = builder.add_input_port(port.name, width)
        env[port.name] = SymVal(type_kind(port.ty), tuple(reversed(msb_first)))

    clocked = [p for p in design.processes if p.is_clocked]
    combinational = [p for p in design.processes if not p.is_clocked]

    # 1. Flip-flop shells with reset values; their Q nets enter the env.
    dff_bits: dict[str, list[int]] = {}
    for process in clocked:
        resets = _reset_values(builder, design, process)
        for name in sorted(process.writes):
            symbol = design.symbols[name]
            width = type_width(symbol.ty)
            q_bits = [
                builder.add_dff(_reg_name(name, i, width), resets[name][i])
                for i in range(width)
            ]
            dff_bits[name] = q_bits
            env[name] = SymVal(type_kind(symbol.ty), tuple(q_bits))

    # 2. Combinational processes in dependency order.
    _synth_combinational(builder, design, combinational, env)

    # 3. Clocked next-state logic.
    for process in clocked:
        read_env = dict(env)
        write_seed = {name: env[name] for name in process.writes}
        executor = SymExec(builder, read_env, write_seed, process.variables)
        executor.exec_body(process.sync_body)
        for name in sorted(process.writes):
            next_val = executor.write_env[name]
            if any(bit is None for bit in next_val.bits):
                raise SynthesisError(
                    f"registered signal {name!r} has an undefined next "
                    f"value in process {process.label!r}"
                )
            for q, d in zip(dff_bits[name], next_val.bits):
                builder.connect_dff(q, d)

    # 4. Output ports.
    for port in design.output_ports:
        value = env.get(port.name)
        if value is None:
            raise SynthesisError(
                f"output port {port.name!r} is never driven"
            )
        builder.set_output_port(port.name, list(reversed(value.bits)))

    netlist = builder.finish()
    # Record where each behavioural signal ended up, MSB first, so the
    # analyze layer can report net facts in source terms.  Bits folded
    # to constant sentinels are dropped — materializing nets just for
    # the map would perturb the netlist.
    netlist.signal_map = {
        name: [bit for bit in reversed(value.bits) if bit >= 0]
        for name, value in sorted(env.items())
    }
    return netlist


def _reg_name(signal: str, lsb_offset: int, width: int) -> str:
    if width == 1:
        return f"{signal}_reg"
    return f"{signal}_reg[{lsb_offset}]"


def _reset_values(
    builder: NetlistBuilder, design: Design, process: Process
) -> dict[str, list[int]]:
    """Per-signal, per-bit reset values (0/1) for a clocked process.

    Signals the reset body does not assign fall back to their declared
    initial value (the behavioural simulator's pre-reset state).
    """
    seed = {}
    for name in process.writes:
        symbol = design.symbols[name]
        seed[name] = encode_const(symbol.init, symbol.ty)
    executor = SymExec(
        builder, read_env={}, write_seed=seed,
        variables=process.variables, const_only=True,
    )
    executor.exec_body(process.reset_body)
    resets: dict[str, list[int]] = {}
    for name in process.writes:
        bits = executor.write_env[name].bits
        values = []
        for bit in bits:
            if bit == CONST1:
                values.append(1)
            elif bit == CONST0:
                values.append(0)
            else:
                raise SynthesisError(
                    f"reset value of {name!r} in process "
                    f"{process.label!r} is not constant"
                )
        resets[name] = values
    return resets


def _synth_combinational(
    builder: NetlistBuilder,
    design: Design,
    processes: list[Process],
    env: dict[str, SymVal],
) -> None:
    pending = list(processes)
    while pending:
        progressed = False
        remaining: list[Process] = []
        for process in pending:
            external_reads = process.reads - process.writes
            if all(name in env for name in external_reads):
                _synth_one_comb(builder, design, process, env)
                progressed = True
            else:
                remaining.append(process)
        if not progressed:
            labels = [p.label for p in remaining]
            raise SynthesisError(
                f"combinational processes {labels} form a dependency "
                "cycle or read undriven signals"
            )
        pending = remaining


def _synth_one_comb(
    builder: NetlistBuilder,
    design: Design,
    process: Process,
    env: dict[str, SymVal],
) -> None:
    read_env = {
        name: value
        for name, value in env.items()
        if name not in process.writes
    }
    executor = SymExec(builder, read_env, {}, process.variables)
    executor.exec_body(process.body)
    for name in sorted(process.writes):
        value = executor.write_env.get(name)
        symbol: Symbol = design.symbols[name]
        if value is None or any(bit is None for bit in value.bits):
            raise LatchInferenceError(
                f"combinational process {process.label!r} does not assign "
                f"{name!r} on every path (latch inferred)"
            )
        if value.width != type_width(symbol.ty):
            raise SynthesisError(
                f"signal {name!r} synthesized to {value.width} bits, "
                f"expected {type_width(symbol.ty)}"
            )
        env[name] = value


_ = CONST0  # re-exported sentinels are part of this module's contract
