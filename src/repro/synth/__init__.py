"""Behavioural-to-gate synthesis.

``synthesize(design)`` lowers an elaborated design to a
:class:`repro.netlist.netlist.Netlist`:

* clocked processes (async-reset template) become per-bit D flip-flops
  whose reset values come from the reset body;
* process bodies are symbolically executed into gate DAGs — if/case
  become mux trees, for-loops unroll, integer arithmetic is bit-blasted
  (ripple adders/subtractors, shift-and-add multipliers, borrow
  comparators);
* combinational processes are synthesized in dependency order; reading
  an output the process itself drives (a latch) is rejected.
"""

from repro.synth.synthesize import synthesize

__all__ = ["synthesize"]
